#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== ia-lint (determinism & invariant gate, timed against its 2 s budget)"
# Build first so only the scan itself is timed; timestamps come from the
# $EPOCHREALTIME builtin (no `date` forks), as in bench_snapshot.sh.
cargo build -q -p ia-lint
now_ms() {
    local t=$EPOCHREALTIME
    echo $(( ${t%.*} * 1000 + 10#${t#*.} / 1000 ))
}
lint_start_ms="$(now_ms)"
target/debug/ia-lint --check
lint_ms=$(( $(now_ms) - lint_start_ms ))
echo "ia-lint --check: ${lint_ms} ms"
if [ "$lint_ms" -ge 2000 ]; then
    echo "ia-lint --check blew its 2 s wall budget (${lint_ms} ms)"; exit 1
fi
# Fold the lint wall time into BENCH_WALL.json as its own row, replacing
# any previous ia_lint_check entry and keeping the suite rows intact
# (bench_snapshot.sh owns the file and rewrites it wholesale on its runs).
wall="BENCH_WALL.json"
wall_rows=()
if [ -f "$wall" ]; then
    while IFS=' ' read -r bin ms; do
        [ "$bin" = "ia_lint_check" ] && continue
        wall_rows+=("$bin $ms")
    done < <(sed -n 's/.*"bin": "\([^"]*\)", "wall_ms": \([0-9]*\).*/\1 \2/p' "$wall")
fi
wall_rows+=("ia_lint_check $lint_ms")
{
    echo "["
    sep=""
    for r in "${wall_rows[@]}"; do
        printf '%s  {"bin": "%s", "wall_ms": %d}' "$sep" "${r% *}" "${r#* }"
        sep=",
"
    done
    echo ""
    echo "]"
} > "$wall.tmp"
mv "$wall.tmp" "$wall"

echo "== cargo test"
cargo test -q --workspace

echo "== parallel determinism (--threads 1 vs --threads 4 byte-identity)"
cargo test -q --test parallel_determinism

echo "== --threads 2 smoke run (exercises the multi-worker pool on any host)"
cargo run -q -p ia-bench --bin exp05_scheduler_suite -- --quick --threads 2 > /dev/null

echo "== trace smoke (--trace output byte-identical across --threads)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q -p ia-bench --bin exp05_scheduler_suite -- \
    --quick --threads 1 --trace "$trace_dir/t1.json" > /dev/null
cargo run -q -p ia-bench --bin exp05_scheduler_suite -- \
    --quick --threads 4 --trace "$trace_dir/t4.json" > /dev/null
diff "$trace_dir/t1.json" "$trace_dir/t4.json"

echo "== fault-injection campaign (detect -> correct -> degrade loop)"
cargo run -q -p ia-bench --bin exp24_fault_injection -- --quick > /dev/null

echo "== fuzz smoke (64 fixed-seed cases, 7 schedulers x 3 ladders, 4 oracles)"
fuzz_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$fuzz_dir"' EXIT
cargo run -q -p ia-bench --bin fuzz_stack -- \
    --cases 64 --repro-dir "$fuzz_dir" > /dev/null

echo "== fuzz self-test (injected miscorrection is caught and minimized)"
if cargo run -q -p ia-bench --bin fuzz_stack -- \
    --cases 1 --inject-violation --repro-dir "$fuzz_dir" > "$fuzz_dir/inject.txt"; then
    echo "fuzz self-test: injected violation was NOT caught"; exit 1
fi
grep -q "no-silent-corruption" "$fuzz_dir/inject.txt" \
    || { echo "fuzz self-test: wrong oracle"; cat "$fuzz_dir/inject.txt"; exit 1; }
test -f "$fuzz_dir"/fuzz-case0000.trace \
    || { echo "fuzz self-test: repro artifact missing"; exit 1; }

echo "== record/replay determinism (replayed exp05 byte-identical to recorded run)"
cargo run -q -p ia-bench --bin exp05_scheduler_suite -- \
    --quick --record-trace "$fuzz_dir/e5.trace" > "$fuzz_dir/rec.txt"
cargo run -q -p ia-bench --bin exp05_scheduler_suite -- \
    --quick --replay-trace "$fuzz_dir/e5.trace" > "$fuzz_dir/rep.txt"
diff "$fuzz_dir/rec.txt" "$fuzz_dir/rep.txt"

echo "== SimLoop watchdog (stalled components become structured errors)"
cargo test -q -p ia-sim watchdog

echo "== event wheel vs per-cycle scan (order-equivalence property)"
cargo test -q -p ia-sim --test wheel_equivalence

echo "== indexed ready-lists vs linear scan (scheduler pick equivalence)"
cargo test -q -p ia-memctrl --test scheduler_queue_equivalence

echo "== microbench smoke (--iters 1 run + JSON schema check)"
micro_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$fuzz_dir" "$micro_dir"' EXIT
cargo run -q -p ia-microbench --bin microbench -- \
    --iters 1 --k 2 --json "$micro_dir/micro.json" > /dev/null
# Schema: a non-empty array of {bench, iters, ops, checksum} objects.
for key in bench iters ops checksum; do
    grep -q "\"$key\":" "$micro_dir/micro.json" \
        || { echo "BENCH_MICRO schema: missing key $key"; exit 1; }
done

echo "== warm-fork vs cold construction (snapshot bit-identity)"
cargo test -q -p ia-memctrl --test snapshot_fork
fork_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$fuzz_dir" "$micro_dir" "$fork_dir"' EXIT
# The warm-forked exp05 must emit byte-identical reports on back-to-back
# runs (fork determinism is what makes the sweep's memoization sound).
cargo run -q -p ia-bench --bin exp05_scheduler_suite -- \
    --quick --json "$fork_dir/a.json" > /dev/null
cargo run -q -p ia-bench --bin exp05_scheduler_suite -- \
    --quick --json "$fork_dir/b.json" > /dev/null
diff "$fork_dir/a.json" "$fork_dir/b.json"

echo "CI gate passed."
