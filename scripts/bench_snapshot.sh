#!/usr/bin/env bash
# Runs every experiment binary in quick mode with --json and concatenates
# the per-experiment reports into one JSON array, BENCH_PR.json, at the
# repo root. Attach that file to a PR to snapshot the benchmark state.
#
# The binaries are independent (each writes its own report file), so they
# run concurrently; the concatenation order is still the sorted source
# order, so the output is byte-identical to a serial run.
#
# Usage: scripts/bench_snapshot.sh [output-path]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo_root/BENCH_PR.json}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

cd "$repo_root"
cargo build --release -q -p ia-bench

bins=()
for src in crates/bench/src/bin/exp*.rs; do
    bins+=("$(basename "$src" .rs)")
done

jobs="$(nproc 2>/dev/null || echo 4)"
running=0
for bin in "${bins[@]}"; do
    echo "running $bin --quick" >&2
    "target/release/$bin" --quick --json "$tmpdir/$bin.json" > /dev/null &
    running=$((running + 1))
    if [ "$running" -ge "$jobs" ]; then
        wait -n
        running=$((running - 1))
    fi
done
wait

echo "[" > "$out.tmp"
first=1
for bin in "${bins[@]}"; do
    if [ "$first" -eq 0 ]; then
        echo "," >> "$out.tmp"
    fi
    first=0
    # Each report is a single JSON object terminated by a newline.
    printf '%s' "$(cat "$tmpdir/$bin.json")" >> "$out.tmp"
done
echo "" >> "$out.tmp"
echo "]" >> "$out.tmp"
mv "$out.tmp" "$out"

echo "wrote $out (${#bins[@]} experiments)" >&2
