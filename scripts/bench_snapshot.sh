#!/usr/bin/env bash
# Runs every experiment binary in quick mode with --json and concatenates
# the per-experiment reports into one JSON array, BENCH_PR.json, at the
# repo root. Attach that file to a PR to snapshot the benchmark state.
#
# Parallelism lives *inside* each binary now (the ia-par worker pool,
# exposed as --threads): the binaries run one at a time, each using every
# core, and the report bytes are identical at any thread count — so the
# output is byte-identical to a fully serial run. Each binary's exit code
# is checked individually: one crashing experiment fails the whole script
# instead of silently truncating the snapshot.
#
# Per-binary wall-clock goes into a *separate* side file, BENCH_WALL.json
# next to the output: timing is host-dependent and must never contaminate
# the canonical, byte-stable BENCH_PR.json.
#
# Usage: scripts/bench_snapshot.sh [output-path]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo_root/BENCH_PR.json}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

cd "$repo_root"
cargo build --release -q -p ia-bench

bins=()
for src in crates/bench/src/bin/exp*.rs; do
    bins+=("$(basename "$src" .rs)")
done

threads="$(nproc 2>/dev/null || echo 1)"
wall="$(dirname "$out")/BENCH_WALL.json"
failed=()
wall_entries=()
suite_start_ms="$(date +%s%3N)"
for bin in "${bins[@]}"; do
    echo "running $bin --quick --threads $threads" >&2
    start_ms="$(date +%s%3N)"
    if ! "target/release/$bin" --quick --threads "$threads" \
            --json "$tmpdir/$bin.json" > /dev/null; then
        echo "FAILED: $bin" >&2
        failed+=("$bin")
    fi
    end_ms="$(date +%s%3N)"
    wall_entries+=("  {\"bin\": \"$bin\", \"wall_ms\": $((end_ms - start_ms))}")
done
# The headline row perf work optimizes against: one number for the whole
# suite, same units and file as the per-binary rows.
suite_end_ms="$(date +%s%3N)"
wall_entries+=("  {\"bin\": \"suite_total\", \"wall_ms\": $((suite_end_ms - suite_start_ms))}")
if [ "${#failed[@]}" -gt 0 ]; then
    echo "aborting: ${#failed[@]} experiment(s) failed: ${failed[*]}" >&2
    exit 1
fi

echo "[" > "$out.tmp"
first=1
for bin in "${bins[@]}"; do
    if [ "$first" -eq 0 ]; then
        echo "," >> "$out.tmp"
    fi
    first=0
    # Each report is a single JSON object terminated by a newline.
    printf '%s' "$(cat "$tmpdir/$bin.json")" >> "$out.tmp"
done
echo "" >> "$out.tmp"
echo "]" >> "$out.tmp"
mv "$out.tmp" "$out"

# Wall-clock side file: nondeterministic by nature, so it is written
# separately and must never be folded into BENCH_PR.json.
{
    echo "["
    sep=""
    for entry in "${wall_entries[@]}"; do
        printf '%s%s' "$sep" "$entry"
        sep=",
"
    done
    echo ""
    echo "]"
} > "$wall.tmp"
mv "$wall.tmp" "$wall"

echo "wrote $out (${#bins[@]} experiments, --threads $threads)" >&2
echo "wrote $wall (per-binary wall-clock, host-dependent)" >&2
