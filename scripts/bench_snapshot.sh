#!/usr/bin/env bash
# Runs every experiment in quick mode via the single-process bench_suite
# runner and concatenates the per-experiment reports into one JSON array,
# BENCH_PR.json, at the repo root. Attach that file to a PR to snapshot
# the benchmark state.
#
# One process instead of one per experiment: fork+exec costs ~2 ms per
# binary on a loaded host, ~50 ms of pure churn across the suite. The
# runner writes byte-for-byte the same per-experiment JSON the
# standalone exp* binaries write (runtime diagnostics never enter the
# report), so the concatenated snapshot is unchanged. Parallelism lives
# *inside* the run (the ia-par worker pool, exposed as --threads) and
# the report bytes are identical at any thread count — byte-identical
# to a fully serial run.
#
# Per-binary wall-clock goes into a *separate* side file, BENCH_WALL.json
# next to the output: timing is host-dependent and must never contaminate
# the canonical, byte-stable BENCH_PR.json. Timestamps come from bash's
# $EPOCHREALTIME builtin — forking `date` twice per bin used to charge
# the suite ~150 ms of measurement overhead on a loaded host.
#
# The wall trajectory is self-auditing: each run prints a per-bin delta
# column against the *previous* BENCH_WALL.json and exits non-zero with
# a warning list if any bin regressed by more than 25% (bins below a
# 5 ms absolute delta are exempt — at 2-4 ms per bin, scheduler jitter
# alone crosses any percentage threshold).
#
# The per-op microbenchmarks ride along: after the suite, the
# ia-microbench harness writes its byte-stable BENCH_MICRO.json next to
# the output (deterministic checksums only — its wall numbers stay in
# its stdout table). Its wall time is recorded as its own row, after
# suite_total, so the suite number stays comparable across PRs.
#
# Usage: scripts/bench_snapshot.sh [output-path]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo_root/BENCH_PR.json}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

cd "$repo_root"
cargo build --release -q -p ia-bench -p ia-microbench

# Millisecond timestamp from the shell builtin: no fork, ~30 µs.
now_ms() {
    local t=$EPOCHREALTIME
    echo $(( ${t%.*} * 1000 + 10#${t#*.} / 1000 ))
}

bins=()
for src in crates/bench/src/bin/exp*.rs; do
    bins+=("$(basename "$src" .rs)")
done

threads="$(nproc 2>/dev/null || echo 1)"
wall="$(dirname "$out")/BENCH_WALL.json"
micro="$(dirname "$out")/BENCH_MICRO.json"

# Previous per-bin walls, for the delta column (missing file = no deltas).
declare -A prev_wall=()
if [ -f "$wall" ]; then
    while IFS=' ' read -r bin ms; do
        prev_wall["$bin"]="$ms"
    done < <(sed -n 's/.*"bin": "\([^"]*\)", "wall_ms": \([0-9]*\).*/\1 \2/p' "$wall")
fi

failed=()
regressed=()
names=()
walls=()

record() {
    local bin="$1" ms="$2"
    names+=("$bin")
    walls+=("$ms")
    local prev="${prev_wall[$bin]:-}"
    local delta="n/a"
    if [ -n "$prev" ] && [ "$prev" -gt 0 ]; then
        # Pure-builtin percent (tenths, truncated): record() runs inside
        # the timed suite window, so it must not fork.
        local dt=$(( (ms - prev) * 1000 / prev )) sign="+"
        if [ "$dt" -lt 0 ]; then sign="-"; dt=$(( -dt )); fi
        delta="${sign}$(( dt / 10 )).$(( dt % 10 ))%"
        if [ "$ms" -gt $(( prev + prev / 4 )) ] && [ $(( ms - prev )) -ge 5 ]; then
            regressed+=("$bin: ${prev} ms -> ${ms} ms ($delta)")
        fi
    fi
    printf '%-28s %5d ms   %s\n' "$bin" "$ms" "$delta" >&2
}

suite_start_ms="$(now_ms)"
if ! target/release/bench_suite --quick --threads "$threads" \
        --json-dir "$tmpdir" > "$tmpdir/walls.txt"; then
    echo "FAILED: bench_suite" >&2
    failed+=("bench_suite")
fi
suite_end_ms="$(now_ms)"
# Per-experiment rows come from the runner's own stopwatch (fork-free);
# they are recorded here, outside the timed window.
while IFS=' ' read -r bin ms; do
    record "$bin" "$ms"
done < "$tmpdir/walls.txt"
# The headline row perf work optimizes against: one number for the whole
# suite, same units and file as the per-experiment rows.
record "suite_total" $(( suite_end_ms - suite_start_ms ))

# Per-op microbenches: byte-stable JSON (checksums, no timing) to
# BENCH_MICRO.json; the ns/op table goes to stderr for humans.
micro_start_ms="$(now_ms)"
if ! target/release/microbench --iters 4096 --k 5 --json "$micro.tmp" >&2; then
    echo "FAILED: microbench" >&2
    failed+=("microbench")
else
    mv "$micro.tmp" "$micro"
fi
micro_end_ms="$(now_ms)"
record "microbench" $(( micro_end_ms - micro_start_ms ))

if [ "${#failed[@]}" -gt 0 ]; then
    echo "aborting: ${#failed[@]} step(s) failed: ${failed[*]}" >&2
    exit 1
fi

echo "[" > "$out.tmp"
first=1
for bin in "${bins[@]}"; do
    if [ "$first" -eq 0 ]; then
        echo "," >> "$out.tmp"
    fi
    first=0
    # Each report is a single JSON object terminated by a newline.
    printf '%s' "$(cat "$tmpdir/$bin.json")" >> "$out.tmp"
done
echo "" >> "$out.tmp"
echo "]" >> "$out.tmp"
mv "$out.tmp" "$out"

# Wall-clock side file: nondeterministic by nature, so it is written
# separately and must never be folded into BENCH_PR.json.
{
    echo "["
    sep=""
    for i in "${!names[@]}"; do
        printf '%s  {"bin": "%s", "wall_ms": %d}' "$sep" "${names[$i]}" "${walls[$i]}"
        sep=",
"
    done
    echo ""
    echo "]"
} > "$wall.tmp"
mv "$wall.tmp" "$wall"

echo "wrote $out (${#bins[@]} experiments, --threads $threads)" >&2
echo "wrote $wall (per-binary wall-clock, host-dependent)" >&2
echo "wrote $micro (deterministic per-op checksums)" >&2

if [ "${#regressed[@]}" -gt 0 ]; then
    echo "" >&2
    echo "WALL REGRESSION: ${#regressed[@]} bin(s) regressed >25% vs the previous BENCH_WALL.json:" >&2
    for r in "${regressed[@]}"; do
        echo "  $r" >&2
    done
    exit 1
fi
