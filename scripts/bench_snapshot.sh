#!/usr/bin/env bash
# Runs every experiment binary in quick mode with --json and concatenates
# the per-experiment reports into one JSON array, BENCH_PR.json, at the
# repo root. Attach that file to a PR to snapshot the benchmark state.
#
# Parallelism lives *inside* each binary now (the ia-par worker pool,
# exposed as --threads): the binaries run one at a time, each using every
# core, and the report bytes are identical at any thread count — so the
# output is byte-identical to a fully serial run. Each binary's exit code
# is checked individually: one crashing experiment fails the whole script
# instead of silently truncating the snapshot.
#
# Usage: scripts/bench_snapshot.sh [output-path]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo_root/BENCH_PR.json}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

cd "$repo_root"
cargo build --release -q -p ia-bench

bins=()
for src in crates/bench/src/bin/exp*.rs; do
    bins+=("$(basename "$src" .rs)")
done

threads="$(nproc 2>/dev/null || echo 1)"
failed=()
for bin in "${bins[@]}"; do
    echo "running $bin --quick --threads $threads" >&2
    if ! "target/release/$bin" --quick --threads "$threads" \
            --json "$tmpdir/$bin.json" > /dev/null; then
        echo "FAILED: $bin" >&2
        failed+=("$bin")
    fi
done
if [ "${#failed[@]}" -gt 0 ]; then
    echo "aborting: ${#failed[@]} experiment(s) failed: ${failed[*]}" >&2
    exit 1
fi

echo "[" > "$out.tmp"
first=1
for bin in "${bins[@]}"; do
    if [ "$first" -eq 0 ]; then
        echo "," >> "$out.tmp"
    fi
    first=0
    # Each report is a single JSON object terminated by a newline.
    printf '%s' "$(cat "$tmpdir/$bin.json")" >> "$out.tmp"
done
echo "" >> "$out.tmp"
echo "]" >> "$out.tmp"
mv "$out.tmp" "$out"

echo "wrote $out (${#bins[@]} experiments, --threads $threads)" >&2
