//! Watch the self-optimizing (Q-learning) memory controller learn: the
//! same agent schedules consecutive workload segments, and its throughput
//! is compared against the fixed FCFS and FR-FCFS policies.
//!
//! Run with: `cargo run --release --example self_optimizing_memctrl`

use intelligent_arch::core::Table;
use intelligent_arch::dram::DramConfig;
use intelligent_arch::memctrl::{
    run_closed_loop, Fcfs, FrFcfs, MemRequest, RlScheduler, RlSchedulerConfig, Scheduler,
};
use intelligent_arch::workloads::{PointerChaseGen, RandomGen, StreamGen, TraceGenerator, ZipfGen};
use rand::SeedableRng;

fn mix(per_thread: usize, seed: u64) -> Vec<Vec<MemRequest>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let region: u64 = 64 << 20;
    let to_reqs = |trace: Vec<intelligent_arch::workloads::TraceRequest>, t: usize| {
        trace
            .iter()
            .map(|r| match r.op {
                intelligent_arch::workloads::Op::Read => MemRequest::read(r.addr, t),
                intelligent_arch::workloads::Op::Write => MemRequest::write(r.addr, t),
            })
            .collect::<Vec<_>>()
    };
    let stream = StreamGen::new(0, 64, 1 << 20, 0.1)
        .expect("static")
        .generate(per_thread, &mut rng);
    let random = RandomGen::new(region, 32 << 20, 64, 0.3)
        .expect("static")
        .generate(per_thread, &mut rng);
    let zipf = ZipfGen::new(2 * region, 4096, 4096, 1.2, 0.2)
        .expect("static")
        .generate(per_thread, &mut rng);
    let mut chase = PointerChaseGen::new(3 * region, 64 * 1024, 64, &mut rng).expect("static");
    let chase = chase.generate(per_thread, &mut rng);
    vec![
        to_reqs(stream, 0),
        to_reqs(random, 1),
        to_reqs(zipf, 2),
        to_reqs(chase, 3),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let per_thread = 2000;

    let mut summary = Table::new(&[
        "scheduler",
        "req/kcycle",
        "avg latency (cy)",
        "row-hit rate",
    ]);
    for (name, sched) in [
        (
            "FCFS (strict in-order)",
            Box::new(Fcfs::new()) as Box<dyn Scheduler>,
        ),
        ("FR-FCFS", Box::new(FrFcfs::new())),
        (
            "RL (self-optimizing)",
            Box::new(RlScheduler::new(RlSchedulerConfig::default())),
        ),
    ] {
        let report = run_closed_loop(
            DramConfig::ddr3_1600(),
            sched,
            &mix(per_thread, 7),
            8,
            500_000_000,
        )?;
        summary.row(&[
            name.to_owned(),
            format!("{:.1}", report.throughput_rpkc()),
            format!("{:.1}", report.stats.avg_latency()),
            format!("{:.1}%", report.row_hit_rate * 100.0),
        ]);
    }
    println!("{summary}\n");

    // Learning curve: share one agent across segments. `Arc<Mutex>`
    // because `Scheduler` is `Send` (runs are serial, never contended),
    // and `clone_box` shares the same live agent — that is the point.
    use std::sync::{Arc, Mutex};
    #[derive(Debug)]
    struct Shared(Arc<Mutex<RlScheduler>>);
    impl Scheduler for Shared {
        fn name(&self) -> &'static str {
            "RL"
        }
        fn clone_box(&self) -> Box<dyn Scheduler> {
            Box::new(Shared(self.0.clone()))
        }
        fn view_mode(&self) -> intelligent_arch::memctrl::ViewMode {
            self.0.lock().expect("uncontended").view_mode()
        }
        fn select(
            &mut self,
            q: &intelligent_arch::memctrl::RequestQueue,
            view: &intelligent_arch::memctrl::IssueView,
        ) -> Option<intelligent_arch::memctrl::ReqId> {
            self.0.lock().expect("uncontended").select(q, view)
        }
        fn on_issue(&mut self, c: bool, now: intelligent_arch::dram::Cycle) {
            self.0.lock().expect("uncontended").on_issue(c, now);
        }
        fn on_complete(
            &mut self,
            completed: &intelligent_arch::memctrl::Completed,
            now: intelligent_arch::dram::Cycle,
        ) {
            self.0
                .lock()
                .expect("uncontended")
                .on_complete(completed, now);
        }
        fn on_tick(&mut self, now: intelligent_arch::dram::Cycle) {
            self.0.lock().expect("uncontended").on_tick(now);
        }
        fn on_advance(
            &mut self,
            from: intelligent_arch::dram::Cycle,
            to: intelligent_arch::dram::Cycle,
        ) {
            self.0.lock().expect("uncontended").on_advance(from, to);
        }
    }
    let agent = Arc::new(Mutex::new(RlScheduler::new(RlSchedulerConfig::default())));
    let mut curve = Table::new(&["segment", "req/kcycle", "agent decisions"]);
    for seg in 0..6u64 {
        let report = run_closed_loop(
            DramConfig::ddr3_1600(),
            Box::new(Shared(agent.clone())),
            &mix(per_thread / 2, 100 + seg),
            8,
            500_000_000,
        )?;
        curve.row(&[
            seg.to_string(),
            format!("{:.1}", report.throughput_rpkc()),
            agent.lock().expect("uncontended").decisions().to_string(),
        ]);
    }
    println!("learning curve (same agent across segments):\n{curve}");
    Ok(())
}
