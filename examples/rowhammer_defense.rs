//! Mount double-sided RowHammer attacks against three device generations
//! and evaluate the PARA and counter-TRR defenses — the "bottom-up push"
//! for intelligent memory controllers.
//!
//! Run with: `cargo run --release --example rowhammer_defense`

use intelligent_arch::core::Table;
use intelligent_arch::reliability::{
    double_sided_pattern, run_attack, CounterTrr, DeviceGeneration, Para, RowHammerModel,
};
use rand::SeedableRng;

fn main() {
    let rows = 1u64 << 14;
    let hammers = 1_000_000;
    let victim = 8000;
    let pattern = double_sided_pattern(victim, hammers);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(13);

    let mut table = Table::new(&[
        "device",
        "HC_first",
        "no defense",
        "PARA p=0.001",
        "PARA p=0.01",
        "counter-TRR",
    ]);
    for gen in DeviceGeneration::all() {
        let unprotected = {
            let mut m = RowHammerModel::new(gen, rows);
            run_attack(&mut m, None, pattern.clone(), &mut rng).0
        };
        let para_weak = {
            let mut m = RowHammerModel::new(gen, rows);
            let mut d = Para::with_probability(0.001);
            run_attack(&mut m, Some(&mut d), pattern.clone(), &mut rng).0
        };
        let para_strong = {
            let mut m = RowHammerModel::new(gen, rows);
            let mut d = Para::with_probability(0.01);
            run_attack(&mut m, Some(&mut d), pattern.clone(), &mut rng).0
        };
        let trr = {
            let mut m = RowHammerModel::new(gen, rows);
            let mut d = CounterTrr::new(32, gen.hc_first() / 2);
            run_attack(&mut m, Some(&mut d), pattern.clone(), &mut rng).0
        };
        table.row(&[
            gen.label().to_owned(),
            gen.hc_first().to_string(),
            format!("{unprotected} flips"),
            format!("{para_weak} flips"),
            format!("{para_strong} flips"),
            format!("{trr} flips"),
        ]);
    }
    println!("double-sided RowHammer, {hammers} activations in one refresh window:\n{table}");
    println!(
        "\nnote the generational collapse of HC_first (139k -> 4.8k): the same access\n\
         pattern that was harmless on 2013 devices is catastrophic on 2020 devices\n\
         without an intelligent controller-level defense."
    );
}
