//! Quickstart: build the intelligent system, run a data-intensive trace,
//! and compare the processor-centric baseline against the full
//! data-centric + data-driven + data-aware configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use intelligent_arch::core::{IntelligentSystem, PrincipleSet, SystemConfig, Table};
use intelligent_arch::workloads::{StreamGen, TraceGenerator, TraceRequest, ZipfGen};
use intelligent_arch::xmem::{AtomRegistry, Criticality, DataAttributes, Locality};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2021);

    // A mixed workload: a hot, latency-critical index structure being
    // probed while a scan streams past it.
    let hot_bytes = 64 * 1024;
    let mut hot = ZipfGen::new(0, hot_bytes / 4096, 4096, 1.1, 0.2)?;
    let mut scan = StreamGen::new(1 << 26, 64, 1 << 22, 0.1)?;
    let trace: Vec<TraceRequest> = (0..30_000)
        .map(|i| {
            if i % 3 == 0 {
                hot.next_request(&mut rng)
            } else {
                scan.next_request(&mut rng).on_thread(1)
            }
        })
        .collect();

    // Tell the hardware what the data is (the X-Mem interface).
    let mut registry = AtomRegistry::new();
    registry.register(
        0..hot_bytes as u64,
        DataAttributes::new()
            .criticality(Criticality::Critical)
            .locality(Locality::Reuse),
    )?;
    registry.register(
        (1 << 26)..(1 << 26) + (1 << 22),
        DataAttributes::new().locality(Locality::Streaming),
    )?;

    let mut table = Table::new(&[
        "system",
        "cycles",
        "LLC hit rate",
        "DRAM row-hit rate",
        "speedup",
    ]);
    let baseline = IntelligentSystem::new(SystemConfig::default()).run(&trace)?;
    let intelligent = IntelligentSystem::new(SystemConfig {
        principles: PrincipleSet::all(),
        ..SystemConfig::default()
    })
    .with_registry(registry)
    .run(&trace)?;

    for (name, r) in [
        ("processor-centric", &baseline),
        ("intelligent (all 3 principles)", &intelligent),
    ] {
        table.row(&[
            name.to_owned(),
            r.cycles().to_string(),
            format!("{:.1}%", r.llc_hit_rate * 100.0),
            format!("{:.1}%", r.memory.row_hit_rate * 100.0),
            format!(
                "{:.2}x",
                baseline.cycles() as f64 / r.cycles().max(1) as f64
            ),
        ]);
    }
    println!("{table}");
    println!(
        "\nmemory requests: {} -> {} ({}% less off-chip traffic)",
        baseline.memory_requests,
        intelligent.memory_requests,
        100 - 100 * intelligent.memory_requests / baseline.memory_requests.max(1)
    );
    Ok(())
}
