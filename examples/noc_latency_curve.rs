//! The classic latency-vs-load curve: buffered XY mesh vs bufferless
//! deflection routing, under uniform and hotspot traffic.
//!
//! Run with: `cargo run --release --example noc_latency_curve`

use intelligent_arch::core::Table;
use intelligent_arch::noc::{simulate, MeshConfig, RouterKind, Traffic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = MeshConfig::new(8, 8)?;
    let cycles = 20_000;

    for (label, traffic) in [
        ("uniform random", Traffic::UniformRandom),
        (
            "hotspot (30% to node 27)",
            Traffic::Hotspot {
                node: 27,
                fraction: 0.3,
            },
        ),
    ] {
        let mut table = Table::new(&[
            "inj. rate",
            "buffered lat",
            "bufferless lat",
            "deflections/pkt",
            "bufferless delivered",
        ]);
        for rate in [0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40] {
            let b = simulate(RouterKind::Buffered, mesh, traffic, rate, cycles, 3)?;
            let d = simulate(
                RouterKind::BufferlessDeflection,
                mesh,
                traffic,
                rate,
                cycles,
                3,
            )?;
            table.row(&[
                format!("{rate:.2}"),
                format!("{:.1}", b.avg_latency),
                format!("{:.1}", d.avg_latency),
                format!("{:.2}", d.deflections as f64 / d.delivered.max(1) as f64),
                format!(
                    "{:.0}%",
                    100.0 * d.delivered as f64 / d.injected.max(1) as f64
                ),
            ]);
        }
        println!("8x8 mesh, {label}, {cycles} cycles:\n{table}\n");
    }
    println!(
        "the bufferless router needs no buffers at all (the dominant router cost),\n\
         and matches the buffered design until the network approaches saturation."
    );
    Ok(())
}
