//! Drive the whole prefetcher lineage against four workload classes and
//! print the coverage/accuracy matrix, plus a runahead-execution
//! comparison on the same dependence spectrum.
//!
//! Run with: `cargo run --release --example prefetcher_shootout`

use intelligent_arch::core::Table;
use intelligent_arch::prefetch::runahead::{build_trace, execute, CoreModel};
use intelligent_arch::prefetch::{
    FeedbackDirected, GhbPrefetcher, NextLinePrefetcher, PerceptronFilter, PrefetchHarness,
    Prefetcher, StridePrefetcher,
};
use intelligent_arch::workloads::{PointerChaseGen, StreamGen, TraceGenerator, ZipfGen};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
    let n = 20_000;

    let workloads: Vec<(&str, Vec<u64>)> = vec![
        (
            "stream",
            StreamGen::new(0, 64, 4 << 20, 0.0)?
                .generate(n, &mut rng)
                .iter()
                .map(|r| r.addr)
                .collect(),
        ),
        (
            "strided(320B)",
            StreamGen::new(1 << 26, 320, 4 << 20, 0.0)?
                .generate(n, &mut rng)
                .iter()
                .map(|r| r.addr)
                .collect(),
        ),
        (
            "zipf",
            ZipfGen::new(2 << 26, 8192, 4096, 1.0, 0.0)?
                .generate(n, &mut rng)
                .iter()
                .map(|r| r.addr)
                .collect(),
        ),
        (
            "pointer-chase",
            PointerChaseGen::new(3 << 26, 128 * 1024, 64, &mut rng)?
                .generate(n, &mut rng)
                .iter()
                .map(|r| r.addr)
                .collect(),
        ),
    ];

    let mut table = Table::new(&["workload", "prefetcher", "coverage", "accuracy"]);
    for (wname, addrs) in &workloads {
        let prefetchers: Vec<Box<dyn Prefetcher>> = vec![
            Box::new(NextLinePrefetcher::new(2)),
            Box::new(StridePrefetcher::new(4)),
            Box::new(GhbPrefetcher::new(256, 4)),
            Box::new(FeedbackDirected::new(4)),
            Box::new(PerceptronFilter::new(StridePrefetcher::new(4))),
        ];
        for p in prefetchers {
            let name = p.name();
            let mut h = PrefetchHarness::new(64 * 1024, 64, 8, p)?;
            for &a in addrs {
                h.demand(a);
            }
            table.row(&[
                (*wname).to_owned(),
                name.to_owned(),
                format!("{:.1}%", h.metrics().coverage() * 100.0),
                format!("{:.1}%", h.metrics().accuracy() * 100.0),
            ]);
        }
    }
    println!("{table}\n");

    // Where prefetching ends, runahead begins — and where runahead ends,
    // PIM begins.
    let mut ra = Table::new(&[
        "dependent loads",
        "stall core (kcy)",
        "runahead-64 (kcy)",
        "speedup",
    ]);
    for dep in [0u32, 250, 500, 750, 1000] {
        let trace = build_trace(2000, 5, dep);
        let stall = execute(
            &trace,
            CoreModel {
                miss_latency: 200,
                runahead_window: 0,
            },
        );
        let run = execute(
            &trace,
            CoreModel {
                miss_latency: 200,
                runahead_window: 64,
            },
        );
        ra.row(&[
            format!("{:.0}%", f64::from(dep) / 10.0),
            format!("{:.0}", stall as f64 / 1000.0),
            format!("{:.0}", run as f64 / 1000.0),
            format!("{:.2}x", stall as f64 / run as f64),
        ]);
    }
    println!("runahead execution across the dependence spectrum:\n{ra}");
    Ok(())
}
