//! PageRank on a power-law graph, executed by a Tesseract-style
//! near-memory graph engine, swept across vault counts and validated
//! against the host reference implementation.
//!
//! Run with: `cargo run --release --example graph_pnm`

use intelligent_arch::core::Table;
use intelligent_arch::pnm::{host_pagerank_ns, PnmGraphEngine, StackConfig};
use intelligent_arch::workloads::Graph;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let graph = Graph::rmat(8192, 128 * 1024, &mut rng)?;
    let iterations = 20;

    // Functional check: near-memory execution returns identical ranks.
    let reference = graph.pagerank(0.85, iterations);
    let engine = PnmGraphEngine::new(StackConfig::hmc_like(), &graph)?;
    let (ranks, _) = engine.pagerank(0.85, iterations);
    let max_err = ranks
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "graph: {} vertices, {} edges | rank agreement vs host: max |Δ| = {max_err:.2e}\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    let mut table = Table::new(&[
        "vaults",
        "internal GB/s",
        "PNM (us)",
        "host (us)",
        "speedup",
    ]);
    for vaults in [1usize, 2, 4, 8, 16, 32] {
        let stack = StackConfig::hmc_like().with_vaults(vaults)?;
        let engine = PnmGraphEngine::new(stack, &graph)?;
        let (_, report) = engine.pagerank(0.85, iterations);
        let host = host_pagerank_ns(&stack, &graph, iterations);
        table.row(&[
            vaults.to_string(),
            format!("{:.0}", stack.internal_gbps_total()),
            format!("{:.1}", report.total_ns / 1000.0),
            format!("{:.1}", host / 1000.0),
            format!("{:.2}x", host / report.total_ns),
        ]);
    }
    println!("{table}");

    // BFS as a second kernel.
    let (dist, report) = PnmGraphEngine::new(StackConfig::hmc_like(), &graph)?.bfs(0);
    let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "\nBFS from vertex 0: reached {reached} vertices in {} frontier supersteps ({:.1} us near-memory)",
        report.supersteps,
        report.total_ns / 1000.0
    );
    Ok(())
}
