//! Map synthetic sequencing reads against a reference genome, using the
//! GRIM-Filter (in-DRAM bitvector AND via the Ambit engine) to discard
//! false candidate locations before paying for banded edit-distance
//! verification — the paper's flagship genomics use case.
//!
//! Run with: `cargo run --release --example genome_seed_filter`

use intelligent_arch::core::Table;
use intelligent_arch::dram::DramConfig;
use intelligent_arch::pum::{AmbitEngine, BitwiseOp};
use intelligent_arch::workloads::{
    edit_distance_banded, random_genome, sample_reads, GrimIndex, SeedIndex,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let genome = random_genome(256 * 1024, &mut rng);
    let reads = sample_reads(&genome, 100, 100, 0.02, &mut rng)?;
    let seeds = SeedIndex::build(&genome, 8)?;
    let grim = GrimIndex::build(&genome, 8, 4096)?;

    // Load the per-bin token bitvectors into DRAM rows once.
    let mut engine = AmbitEngine::new(&DramConfig::ddr3_1600());
    let words = engine.row_words();
    let pad = |bv: &[u64]| {
        let mut row = bv.to_vec();
        row.resize(words, 0);
        row
    };
    for bin in 0..grim.bin_count() {
        engine.write_row(bin as u64, pad(grim.bin_bitvector(bin)))?;
    }
    let (read_row, and_row) = (grim.bin_count() as u64, grim.bin_count() as u64 + 1);

    let mut verifications_without = 0u64;
    let mut verifications_with = 0u64;
    let mut mapped = 0u64;
    for read in &reads {
        let candidates = seeds.candidates(&read.seq, 4);
        verifications_without += candidates.len() as u64;
        engine.write_row(read_row, pad(&grim.read_bitvector(&read.seq)))?;
        let mut found = false;
        for &cand in &candidates {
            // Score every bin the read's span touches with one in-DRAM AND.
            let first = cand as usize / grim.bin_size();
            let last =
                ((cand as usize + read.seq.len() - 1) / grim.bin_size()).min(grim.bin_count() - 1);
            let mut score = 0u32;
            for bin in first..=last {
                engine.execute(BitwiseOp::And, and_row, bin as u64, Some(read_row))?;
                score += engine
                    .read_row(and_row)
                    .expect("AND result present")
                    .iter()
                    .map(|w| w.count_ones())
                    .sum::<u32>();
            }
            if score < 45 {
                continue; // filtered: skip the expensive verification
            }
            verifications_with += 1;
            let s = cand as usize;
            if s + read.seq.len() <= genome.len()
                && edit_distance_banded(&read.seq, &genome[s..s + read.seq.len()], 5).is_some()
            {
                found = true;
            }
        }
        if found {
            mapped += 1;
        }
    }

    let mut table = Table::new(&["metric", "value"]);
    table.row(&["reads mapped", &format!("{mapped}/{}", reads.len())]);
    table.row(&[
        "verifications without filter",
        &verifications_without.to_string(),
    ]);
    table.row(&[
        "verifications with GRIM-Filter",
        &verifications_with.to_string(),
    ]);
    table.row(&[
        "candidates eliminated",
        &format!(
            "{:.1}%",
            100.0 * (1.0 - verifications_with as f64 / verifications_without.max(1) as f64)
        ),
    ]);
    table.row(&[
        "in-DRAM filter work",
        &format!(
            "{} AAP primitives, {:.1} us",
            engine.stats().aaps,
            engine.stats().cycles as f64 * 1.25 / 1000.0
        ),
    ]);
    println!("{table}");
    Ok(())
}
