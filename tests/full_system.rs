//! Cross-crate integration tests: the full pipeline from workload
//! generation through cache, controller, and DRAM, exercised through the
//! `intelligent-arch` facade.

use intelligent_arch::core::{
    run_ablation, IntelligentSystem, Principle, PrincipleSet, SystemConfig,
};
use intelligent_arch::workloads::{StreamGen, TraceGenerator, TraceRequest, ZipfGen};
use intelligent_arch::xmem::{AtomRegistry, Criticality, DataAttributes, Locality};
use rand::SeedableRng;

fn mixed_trace(n: usize) -> Vec<TraceRequest> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let mut hot = ZipfGen::new(0, 16, 4096, 1.1, 0.2).expect("valid");
    let mut scan = StreamGen::new(1 << 26, 64, 1 << 21, 0.1).expect("valid");
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                hot.next_request(&mut rng)
            } else {
                scan.next_request(&mut rng).on_thread(1)
            }
        })
        .collect()
}

fn registry() -> AtomRegistry {
    let mut reg = AtomRegistry::new();
    reg.register(
        0..64 * 1024,
        DataAttributes::new()
            .criticality(Criticality::Critical)
            .locality(Locality::Reuse),
    )
    .expect("disjoint");
    reg.register(
        (1 << 26)..(1 << 26) + (1 << 21),
        DataAttributes::new().locality(Locality::Streaming),
    )
    .expect("disjoint");
    reg
}

#[test]
fn baseline_system_completes_every_memory_request() {
    let trace = mixed_trace(4000);
    let report = IntelligentSystem::new(SystemConfig::default())
        .run(&trace)
        .expect("runs");
    assert_eq!(
        report.memory.stats.completed, report.memory_requests,
        "every miss and writeback must retire"
    );
    assert!(report.cycles() > 0);
}

#[test]
fn intelligent_system_beats_or_ties_baseline_end_to_end() {
    let trace = mixed_trace(5000);
    let baseline = IntelligentSystem::new(SystemConfig::default())
        .run(&trace)
        .expect("runs");
    let smart = IntelligentSystem::new(SystemConfig {
        principles: PrincipleSet::all(),
        ..SystemConfig::default()
    })
    .with_registry(registry())
    .run(&trace)
    .expect("runs");
    // The RL scheduler keeps exploring (ε > 0), so allow a sliver of noise
    // around a tie; a regression beyond 2% would be a real composition bug.
    assert!(
        (smart.cycles() as f64) <= baseline.cycles() as f64 * 1.02,
        "intelligent {} vs baseline {}",
        smart.cycles(),
        baseline.cycles()
    );
    assert!(smart.llc_hit_rate >= baseline.llc_hit_rate);
}

#[test]
fn data_awareness_reduces_offchip_traffic() {
    let trace = mixed_trace(5000);
    let oblivious = IntelligentSystem::new(SystemConfig::default())
        .run(&trace)
        .expect("runs");
    let aware = IntelligentSystem::new(SystemConfig {
        principles: PrincipleSet::none().with(Principle::DataAware),
        ..SystemConfig::default()
    })
    .with_registry(registry())
    .run(&trace)
    .expect("runs");
    // On this mix the awareness win is a handful of requests, so (like the
    // RL test above) allow a sliver of generator noise around a tie; a
    // regression beyond 0.5% would be a real composition bug.
    assert!(
        (aware.memory_requests as f64) <= oblivious.memory_requests as f64 * 1.005,
        "aware {} vs oblivious {}",
        aware.memory_requests,
        oblivious.memory_requests
    );
    assert!(aware.movement_energy_pj() <= oblivious.movement_energy_pj() * 1.005);
}

#[test]
fn ablation_ladder_runs_through_the_facade() {
    let trace = mixed_trace(2500);
    let rows = run_ablation(&SystemConfig::default(), &registry(), &trace).expect("ladder runs");
    assert_eq!(rows.len(), 4);
    assert!((rows[0].speedup - 1.0).abs() < 1e-12);
    for row in &rows {
        assert!(row.report.memory.stats.completed > 0);
    }
}

#[test]
fn single_request_trace_works() {
    let trace = vec![TraceRequest::read(0x4000)];
    let report = IntelligentSystem::new(SystemConfig::default())
        .run(&trace)
        .expect("runs");
    assert_eq!(report.llc_hit_rate, 0.0, "one access cannot hit");
    assert!(report.memory.stats.completed >= 1);
}

#[test]
fn write_heavy_trace_generates_writebacks() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
    let trace = ZipfGen::new(0, 4096, 4096, 1.0, 0.9)
        .expect("valid")
        .generate(4000, &mut rng);
    let report = IntelligentSystem::new(SystemConfig::default())
        .run(&trace)
        .expect("runs");
    // Misses + dirty evictions: memory traffic exceeds pure miss count
    // would without writebacks; at minimum everything completes.
    assert_eq!(report.memory.stats.completed, report.memory_requests);
}
