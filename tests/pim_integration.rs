//! Integration tests spanning the PIM crates: RowClone/Ambit over the
//! DRAM substrate, the PNM engines over the workload substrate, and the
//! functional equivalence of in-memory and host execution.

use intelligent_arch::dram::{DramConfig, DramModule, PhysAddr};
use intelligent_arch::pnm::{
    traverse_host, traverse_pnm, LinkedChain, PnmGraphEngine, StackConfig,
};
use intelligent_arch::pum::{bulk_copy, AmbitEngine, BitwiseOp, CopyMode};
use intelligent_arch::workloads::Graph;
use rand::SeedableRng;

#[test]
fn copy_mechanism_hierarchy_holds_across_sizes() {
    // FPM < LISA < PSM < CPU in latency, at every size.
    let stride = {
        let d = DramModule::new(DramConfig::ddr3_1600()).expect("valid");
        let g = d.config().geometry;
        g.row_bytes * (g.banks_per_group * g.bank_groups * g.ranks * g.channels) as u64
    };
    for bytes in [8 << 10, 128 << 10, 1 << 20] {
        let mut d = DramModule::new(DramConfig::ddr3_1600()).expect("valid");
        let fpm = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            bytes,
            CopyMode::Fpm,
        )
        .expect("fpm");
        let lisa = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(512 * 4 * stride),
            bytes,
            CopyMode::Lisa,
        )
        .expect("lisa");
        let psm = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(8192),
            bytes,
            CopyMode::Psm,
        )
        .expect("psm");
        let mut d2 = DramModule::new(DramConfig::ddr3_1600()).expect("valid");
        let cpu = bulk_copy(
            &mut d2,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            bytes,
            CopyMode::Cpu,
        )
        .expect("cpu");
        assert!(
            fpm.ns < lisa.ns,
            "{bytes}: FPM {} vs LISA {}",
            fpm.ns,
            lisa.ns
        );
        assert!(
            lisa.ns < cpu.ns,
            "{bytes}: LISA {} vs CPU {}",
            lisa.ns,
            cpu.ns
        );
        assert!(psm.ns < cpu.ns, "{bytes}: PSM {} vs CPU {}", psm.ns, cpu.ns);
    }
}

#[test]
fn ambit_composition_computes_a_real_predicate() {
    // Compute (a AND b) OR (NOT c) entirely in DRAM and check bit-exactly.
    let mut e = AmbitEngine::new(&DramConfig::ddr3_1600());
    let w = e.row_words();
    let a = 0xF0F0_F0F0_F0F0_F0F0u64;
    let b = 0xFF00_FF00_FF00_FF00u64;
    let c = 0xAAAA_AAAA_AAAA_AAAAu64;
    e.write_row(0, vec![a; w]).expect("row a");
    e.write_row(1, vec![b; w]).expect("row b");
    e.write_row(2, vec![c; w]).expect("row c");
    e.execute(BitwiseOp::And, 10, 0, Some(1)).expect("and");
    e.execute(BitwiseOp::Not, 11, 2, None).expect("not");
    e.execute(BitwiseOp::Or, 12, 10, Some(11)).expect("or");
    let expected = (a & b) | !c;
    assert!(e
        .read_row(12)
        .expect("result")
        .iter()
        .all(|&x| x == expected));
    // The composition was costed: 4 + 2 + 4 AAPs.
    assert_eq!(e.stats().aaps, 10);
}

#[test]
fn pnm_graph_engine_agrees_with_host_on_every_kernel() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(33);
    let g = Graph::rmat(512, 4096, &mut rng).expect("valid graph");
    let engine = PnmGraphEngine::new(StackConfig::hmc_like(), &g).expect("valid stack");
    let (pr, _) = engine.pagerank(0.85, 15);
    let host_pr = g.pagerank(0.85, 15);
    assert_eq!(pr, host_pr, "pagerank must be bit-identical");
    let (bfs, _) = engine.bfs(3);
    assert_eq!(bfs, g.bfs(3), "bfs must be identical");
}

#[test]
fn pointer_chasing_is_functionally_identical_and_faster_in_memory() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(34);
    let chain = LinkedChain::random_cycle(4096, &mut rng).expect("valid chain");
    let stack = StackConfig::hmc_like();
    for (start, hops) in [(0u32, 100u64), (17, 4096), (100, 10_000)] {
        let h = traverse_host(&chain, &stack, start, hops);
        let p = traverse_pnm(&chain, &stack, start, hops);
        assert_eq!(h.end, p.end);
        assert!(p.ns < h.ns);
    }
}

#[test]
fn in_dram_copy_charges_energy_on_the_shared_module() {
    let mut d = DramModule::new(DramConfig::ddr3_1600()).expect("valid");
    let before = d.energy().dynamic_pj();
    let stride = {
        let g = d.config().geometry;
        g.row_bytes * (g.banks_per_group * g.bank_groups * g.ranks * g.channels) as u64
    };
    bulk_copy(
        &mut d,
        PhysAddr::new(0),
        PhysAddr::new(stride),
        64 << 10,
        CopyMode::Fpm,
    )
    .expect("fpm");
    assert!(
        d.energy().dynamic_pj() > before,
        "copies must show up in module energy"
    );
    assert_eq!(
        d.energy().io_pj,
        0.0,
        "in-DRAM copy crosses no chip boundary"
    );
}
