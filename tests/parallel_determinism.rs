//! The `ia-par` determinism contract, end to end: a representative
//! experiment's machine-readable report must be **byte-identical**
//! between `--threads 1` (the exact serial path) and `--threads 4`
//! (multi-worker pool on any host, including single-core CI).
//!
//! The thread count is process-global (`ia_par::set_threads`), so each
//! test holds a lock while it flips the setting; the lock also keeps
//! the comparison honest — no other thread can change the worker count
//! between the two runs.

use std::sync::Mutex;

static THREADS_GUARD: Mutex<()> = Mutex::new(());

/// Renders `report(quick)` at `--threads 1` and `--threads 4` and
/// asserts the JSON bytes match.
fn assert_byte_identical(name: &str, report: impl Fn(bool) -> ia_bench::report::ExperimentReport) {
    let _guard = THREADS_GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ia_par::set_threads(1);
    let serial = report(true).to_json().render();
    ia_par::set_threads(4);
    let parallel = report(true).to_json().render();
    ia_par::set_threads(0);
    assert_eq!(
        serial, parallel,
        "{name}: report bytes differ between --threads 1 and --threads 4"
    );
}

#[test]
fn exp05_scheduler_suite_is_thread_count_invariant() {
    assert_byte_identical("exp05", ia_bench::exp05_scheduler_suite::report);
}

#[test]
fn exp17_prefetchers_is_thread_count_invariant() {
    assert_byte_identical("exp17", ia_bench::exp17_prefetchers::report);
}

#[test]
fn exp18_noc_is_thread_count_invariant() {
    assert_byte_identical("exp18", ia_bench::exp18_noc::report);
}

#[test]
fn exp24_fault_injection_is_thread_count_invariant() {
    assert_byte_identical("exp24", ia_bench::exp24_fault_injection::report);
}

/// The same contract for the `ia-trace` session: parallel sweeps carry
/// each task's trace back to the submitting thread and submit in input
/// order, so the rendered Chrome trace must be byte-identical between
/// the exact serial path and a multi-worker pool.
#[test]
fn exp05_trace_is_thread_count_invariant() {
    let _guard = THREADS_GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let render = |threads: usize| {
        ia_par::set_threads(threads);
        let _ = ia_trace::session::take();
        ia_trace::set_capture(true);
        let rows = ia_bench::exp05_scheduler_suite::rows(true);
        ia_trace::set_capture(false);
        let log = ia_trace::session::take();
        (rows, ia_trace::chrome::render_chrome(&log))
    };
    let (serial_rows, serial) = render(1);
    let (parallel_rows, parallel) = render(4);
    ia_par::set_threads(0);
    assert_eq!(serial_rows, parallel_rows);
    assert_eq!(
        serial, parallel,
        "exp05: trace bytes differ between --threads 1 and --threads 4"
    );
    assert!(serial.starts_with("{\"traceEvents\":["));
}
