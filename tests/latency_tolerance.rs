//! Cross-crate integration: the paper's latency-tolerance story end to
//! end — runahead helps exactly where prefetchers help (independent
//! misses), and the near-memory walkers take over exactly where both
//! fail (dependent chains).

use intelligent_arch::dram::{serve_stream, BankOrganization, DramConfig, SalpBank};
use intelligent_arch::memctrl::{standard_points, MemScaleGovernor};
use intelligent_arch::pnm::{traverse_host, traverse_pnm, LinkedChain, StackConfig};
use intelligent_arch::prefetch::runahead::{build_trace, execute, CoreModel};
use intelligent_arch::prefetch::{PrefetchHarness, StridePrefetcher};
use intelligent_arch::xmem::{BlockSize, DataAttributes, VblTable};
use rand::SeedableRng;

#[test]
fn the_latency_tolerance_handoff() {
    // 1. Streaming misses: a prefetcher covers them.
    let mut h = PrefetchHarness::new(32 * 1024, 64, 8, Box::new(StridePrefetcher::new(4)))
        .expect("valid harness");
    for i in 0..5000u64 {
        h.demand(i * 64);
    }
    assert!(
        h.metrics().coverage() > 0.9,
        "streams belong to the prefetcher"
    );

    // 2. Independent random misses: runahead overlaps them.
    let independent = build_trace(1000, 5, 0);
    let stall = execute(
        &independent,
        CoreModel {
            miss_latency: 200,
            runahead_window: 0,
        },
    );
    let runahead = execute(
        &independent,
        CoreModel {
            miss_latency: 200,
            runahead_window: 64,
        },
    );
    assert!(
        stall as f64 / runahead as f64 > 4.0,
        "independent misses belong to runahead"
    );

    // 3. Dependent chains: both core-side techniques fail...
    let dependent = build_trace(1000, 5, 1000);
    let stall_dep = execute(
        &dependent,
        CoreModel {
            miss_latency: 200,
            runahead_window: 0,
        },
    );
    let runahead_dep = execute(
        &dependent,
        CoreModel {
            miss_latency: 200,
            runahead_window: 64,
        },
    );
    assert_eq!(
        stall_dep, runahead_dep,
        "runahead cannot touch dependent chains"
    );

    // ...and the near-memory walker picks them up.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let chain = LinkedChain::random_cycle(4096, &mut rng).expect("valid chain");
    let stack = StackConfig::hmc_like();
    let host = traverse_host(&chain, &stack, 0, 10_000);
    let pnm = traverse_pnm(&chain, &stack, 0, 10_000);
    assert!(
        host.ns / pnm.ns > 2.0,
        "dependent chains belong to the memory-side walker"
    );
}

#[test]
fn salp_and_memscale_compose_in_the_same_story() {
    // SALP removes conflict serialization inside a bank...
    let timing = DramConfig::ddr3_1600().timing;
    let stream: Vec<u64> = (0..2000)
        .map(|i| if i % 2 == 0 { 0 } else { 512 })
        .collect();
    let mut conv = SalpBank::new(BankOrganization::Conventional, timing, 8, 512);
    let mut salp = SalpBank::new(BankOrganization::Salp, timing, 8, 512);
    let conv_cy = serve_stream(&mut conv, &stream);
    let salp_cy = serve_stream(&mut salp, &stream);
    assert!(salp_cy < conv_cy);

    // ...and the freed bandwidth headroom is exactly what MemScale can
    // convert into energy savings on low-demand epochs.
    let mut governor = MemScaleGovernor::new(standard_points().to_vec(), 0.10).expect("valid");
    let low_demand: Vec<f64> = vec![0.1; 50];
    let outcome = governor.run(&low_demand).expect("runs");
    assert!(outcome.energy < 0.6);
    assert!(outcome.slowdown <= 1.10 + 1e-9);
}

#[test]
fn vbi_blocks_feed_the_data_aware_hierarchy() {
    // Allocate blocks through the Virtual Block Interface with different
    // vulnerability attributes and check the end-to-end invariants: tier
    // placement honours attributes and translation stays injective.
    let mut vbl = VblTable::new(1 << 26);
    let critical = vbl
        .allocate(
            BlockSize::Medium,
            DataAttributes::new().error_vulnerability(90),
        )
        .expect("capacity");
    let bulk = vbl
        .allocate(
            BlockSize::Medium,
            DataAttributes::new().error_vulnerability(5),
        )
        .expect("capacity");
    let cb = vbl.block(critical).expect("present").clone();
    let bb = vbl.block(bulk).expect("present").clone();
    assert!(cb.tier < bb.tier, "critical data in the stronger tier");
    // Each tier is its own physical device: translation is exact within
    // the block, and a second block in the same tier never collides.
    assert_eq!(
        vbl.translate(critical, 4096).expect("in range"),
        cb.phys_base + 4096
    );
    let bulk2 = vbl
        .allocate(
            BlockSize::Medium,
            DataAttributes::new().error_vulnerability(5),
        )
        .expect("capacity");
    let b2 = vbl.block(bulk2).expect("present");
    assert_eq!(b2.tier, bb.tier);
    assert!(
        b2.phys_base >= bb.phys_base + bb.size.bytes(),
        "same-tier blocks are disjoint"
    );
}
