//! Smoke tests for the experiment harness: every experiment's quick mode
//! must produce its table. The quantitative shape assertions live in each
//! experiment module's own tests; these guard the binary entry points.

macro_rules! smoke {
    ($name:ident, $module:ident, $marker:literal) => {
        #[test]
        fn $name() {
            let out = ia_bench::$module::run(true);
            assert!(out.contains($marker), "missing `{}` in:\n{out}", $marker);
            assert!(out.lines().count() >= 5, "table too short:\n{out}");
        }
    };
}

smoke!(e01_renders, exp01_data_movement, "movement share");
smoke!(e02_renders, exp02_rowclone, "FPM");
smoke!(e03_renders, exp03_ambit, "geomean");
smoke!(e04_renders, exp04_rl_memctrl, "RL");
smoke!(e05_renders, exp05_scheduler_suite, "max slowdown");
smoke!(e06_renders, exp06_raidr, "refresh reduction");
smoke!(e07_renders, exp07_bdi, "compression ratio");
smoke!(e08_renders, exp08_pnm_graph, "vaults");
smoke!(e09_renders, exp09_pointer_chase, "streams");
smoke!(e10_renders, exp10_rowhammer, "HC_first");
smoke!(e11_renders, exp11_grim_filter, "eliminated");
smoke!(e12_renders, exp12_xmem, "retention");
smoke!(e13_renders, exp13_low_latency_dram, "ChargeCache");
smoke!(e14_renders, exp14_hybrid_memory, "RBLA");
smoke!(e15_renders, exp15_perceptron, "perceptron");
smoke!(e16_renders, exp16_ablation, "baseline");
smoke!(e17_renders, exp17_prefetchers, "coverage");
smoke!(e18_renders, exp18_noc, "deflections");
smoke!(e19_renders, exp19_salp, "SALP");
smoke!(e20_renders, exp20_eden, "refresh savings");
smoke!(e21_renders, exp21_memscale, "energy saved");
smoke!(e22_renders, exp22_runahead, "runahead");
smoke!(e23_renders, exp23_gsdram, "traffic cut");
smoke!(e24_renders, exp24_fault_injection, "uncorrected rate");
