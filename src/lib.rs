//! # intelligent-arch
//!
//! A from-scratch Rust reproduction of the system ecosystem described in
//! *"Intelligent Architectures for Intelligent Computing Systems"*
//! (O. Mutlu, DATE 2021): a cycle-level DRAM substrate, processing-using-
//! memory and processing-near-memory engines, classical and learning
//! memory controllers, reliability models, a data-aware (X-Mem) interface,
//! and a full-system composition of the paper's three principles —
//! **data-centric**, **data-driven**, **data-aware**.
//!
//! This crate is a facade: each subsystem lives in its own crate under
//! `crates/`, re-exported here under a stable module name.
//!
//! ## Quick start
//!
//! ```
//! use intelligent_arch::core::{IntelligentSystem, PrincipleSet, SystemConfig};
//! use intelligent_arch::workloads::{TraceGenerator, ZipfGen};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let trace = ZipfGen::new(0, 1024, 4096, 1.1, 0.25)?.generate(2000, &mut rng);
//!
//! let baseline = IntelligentSystem::new(SystemConfig::default()).run(&trace)?;
//! let intelligent = IntelligentSystem::new(SystemConfig {
//!     principles: PrincipleSet::all(),
//!     ..SystemConfig::default()
//! })
//! .run(&trace)?;
//!
//! assert!(intelligent.cycles() <= baseline.cycles());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cycle-level DRAM timing and energy simulation ([`ia_dram`]).
pub use ia_dram as dram;

/// Online-learning substrate: Q-learning, perceptrons, bandits
/// ([`ia_learn`]).
pub use ia_learn as learn;

/// DRAM reliability: RowHammer, retention/RAIDR, ECC, HRM
/// ([`ia_reliability`]).
pub use ia_reliability as reliability;

/// Synthetic data-intensive workloads ([`ia_workloads`]).
pub use ia_workloads as workloads;

/// Cache substrate with compression, filtering, partitioning
/// ([`ia_cache`]).
pub use ia_cache as cache;

/// Expressive Memory: the data-aware interface ([`ia_xmem`]).
pub use ia_xmem as xmem;

/// Memory controllers, fixed and learning ([`ia_memctrl`]).
pub use ia_memctrl as memctrl;

/// Processing using memory: RowClone, Ambit, D-RaNGe ([`ia_pum`]).
pub use ia_pum as pum;

/// Processing near memory: 3D stacks, graph engine, PEI ([`ia_pnm`]).
pub use ia_pnm as pnm;

/// Hardware prefetchers, fixed and adaptive ([`ia_prefetch`]).
pub use ia_prefetch as prefetch;

/// On-chip network models ([`ia_noc`]).
pub use ia_noc as noc;

/// The composed intelligent architecture ([`ia_core`]).
pub use ia_core as core;
