//! Property tests proving the event-wheel path is observationally
//! identical to the naive min-over-components scan.
//!
//! Two properties:
//!
//! 1. **Wheel order** — draining an [`EventWheel`] yields exactly the
//!    stable (cycle, insertion-order) sort of what was scheduled.
//! 2. **Group equivalence** — a [`SimGroup`] driven by the cycle-skipping
//!    [`SimLoop`] produces the same completion stream as a per-cycle
//!    reference loop that ticks every member in index order each cycle,
//!    on random `Clocked` populations.

use ia_sim::{Clocked, CompletionSink, Cycle, EventWheel, RunOutcome, SimGroup, SimLoop};
use proptest::prelude::*;

/// A periodic emitter decoded from one seed word: random phase, period,
/// and burst count. Small numbers keep the reference loop fast while
/// still exercising ties, bursts, and long-idle members.
#[derive(Debug)]
struct Pulse {
    id: u32,
    now: Cycle,
    period: u64,
    next_fire: Cycle,
    remaining: u32,
}

impl Pulse {
    fn from_seed(id: u32, seed: u64) -> Self {
        Pulse {
            id,
            now: Cycle::ZERO,
            period: 1 + (seed & 0x3f),                 // 1..=64
            next_fire: Cycle::new((seed >> 6) & 0xff), // phase 0..=255
            remaining: ((seed >> 14) & 0x7) as u32,    // 0..=7 events
        }
    }
}

impl Clocked for Pulse {
    type Completion = (u32, u64);

    fn now(&self) -> Cycle {
        self.now
    }

    fn tick_into(&mut self, sink: &mut dyn CompletionSink<(u32, u64)>) {
        if self.remaining > 0 && self.now >= self.next_fire {
            sink.complete((self.id, self.now.as_u64()));
            self.remaining -= 1;
            self.next_fire = self.now + self.period;
        }
        self.now += 1;
    }

    fn next_event_at(&self) -> Option<Cycle> {
        (self.remaining > 0).then(|| self.next_fire.max(self.now))
    }

    fn skip_to(&mut self, target: Cycle) {
        if target > self.now {
            self.now = target;
        }
    }
}

/// The per-cycle oracle: tick every member, in index order, every cycle.
fn scan_reference(mut members: Vec<Pulse>) -> Vec<(u32, u64)> {
    let mut done = Vec::new();
    while members.iter().any(|m| m.next_event_at().is_some()) {
        for m in &mut members {
            m.tick_into(&mut done);
        }
    }
    done
}

proptest! {
    /// Scheduling arbitrary (cycle, id) pairs and draining the wheel
    /// yields the stable sort by cycle — same order a scan over a
    /// per-cycle timeline would observe them.
    #[test]
    fn wheel_drains_in_stable_cycle_order(
        cycles in prop::collection::vec(0u64..5_000, 0..64),
        slots_pow in 1u32..8,
    ) {
        let mut wheel = EventWheel::new(1 << slots_pow);
        for (id, &c) in cycles.iter().enumerate() {
            wheel.schedule(Cycle::new(c), id as u32);
        }
        prop_assert_eq!(wheel.len(), cycles.len());

        let mut expected: Vec<(u64, u32)> = cycles
            .iter()
            .enumerate()
            .map(|(id, &c)| (c, id as u32))
            .collect();
        // Stable by cycle: insertion order breaks ties, exactly the
        // wheel's FIFO-within-cycle guarantee.
        expected.sort_by_key(|&(c, _)| c);

        let mut got = Vec::new();
        let mut bucket = Vec::new();
        while let Some(t) = wheel.next_event_at() {
            bucket.clear();
            wheel.take_due(t, &mut bucket);
            prop_assert!(!bucket.is_empty(), "next_event_at promised work at {t}");
            got.extend(bucket.iter().map(|&id| (t.as_u64(), id)));
        }
        prop_assert!(wheel.is_empty());
        prop_assert_eq!(got, expected);
    }

    /// A wheel-scheduled SimGroup under the cycle-skipping engine emits
    /// the same completion stream as the per-cycle scan reference, for
    /// random populations and wheel sizes (including wheels far smaller
    /// than the event horizon, forcing overflow rotation).
    #[test]
    fn group_matches_per_cycle_scan(
        seeds in prop::collection::vec(0u64.., 0..24),
        slots_pow in 1u32..8,
    ) {
        let build = || -> Vec<Pulse> {
            seeds
                .iter()
                .enumerate()
                .map(|(i, &s)| Pulse::from_seed(i as u32, s))
                .collect()
        };
        let expected = scan_reference(build());

        let mut group = SimGroup::with_wheel_slots(build(), 1 << slots_pow);
        let mut engine = SimLoop::new();
        let mut got: Vec<(u32, u64)> = Vec::new();
        let out = engine.run_while(&mut group, &mut got, Cycle::new(1_000_000), |_| true);
        prop_assert_eq!(out, RunOutcome::Drained);
        prop_assert_eq!(got, expected);
    }
}
