//! Completion sinks: where a clocked component delivers finished work.
//!
//! A sink is caller-owned storage (or a callback), so the steady-state
//! tick path performs no heap allocation: the driver hands the same
//! scratch buffer to every tick and drains it between ticks.

/// Receives the items a component completes during one tick.
///
/// Implemented for `Vec<T>` (caller-owned scratch buffer, capacity reused
/// across ticks) and, via [`FnSink`], for closures.
pub trait CompletionSink<T> {
    /// Accepts one completed item.
    fn complete(&mut self, item: T);
}

impl<T> CompletionSink<T> for Vec<T> {
    fn complete(&mut self, item: T) {
        self.push(item);
    }
}

/// Adapts a closure into a [`CompletionSink`].
///
/// # Examples
///
/// ```
/// use ia_sim::{CompletionSink, FnSink};
/// let mut total = 0u64;
/// let mut sink = FnSink(|latency: u64| total += latency);
/// sink.complete(3);
/// sink.complete(4);
/// drop(sink);
/// assert_eq!(total, 7);
/// ```
#[derive(Debug)]
pub struct FnSink<F>(pub F);

impl<T, F: FnMut(T)> CompletionSink<T> for FnSink<F> {
    fn complete(&mut self, item: T) {
        (self.0)(item);
    }
}

/// Sink used while fast-forwarding over idle cycles: a component that
/// completes work during a skip has a broken
/// [`next_event_at`](crate::Clocked::next_event_at) contract, so this
/// sink panics loudly instead of losing the completion.
#[derive(Debug, Default)]
pub struct DenyCompletions;

impl<T> CompletionSink<T> for DenyCompletions {
    fn complete(&mut self, _item: T) {
        // lint: allow(P002, deliberate contract-violation detector — losing a completion silently would corrupt results)
        panic!(
            "component completed work during a cycle skip: its next_event_at() \
             promised no events before the skip target"
        );
    }
}

/// Counts deliveries on the way into an inner sink (the engine uses this
/// to track the sink high-water mark).
pub(crate) struct CountingSink<'a, T> {
    pub(crate) inner: &'a mut dyn CompletionSink<T>,
    pub(crate) delivered: u64,
}

impl<T> CompletionSink<T> for CountingSink<'_, T> {
    fn complete(&mut self, item: T) {
        self.delivered += 1;
        self.inner.complete(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut v: Vec<u32> = Vec::new();
        v.complete(1);
        v.complete(2);
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "next_event_at")]
    fn deny_sink_panics() {
        DenyCompletions.complete(0u8);
    }

    #[test]
    fn counting_sink_counts_and_forwards() {
        let mut v: Vec<u32> = Vec::new();
        let mut c = CountingSink {
            inner: &mut v,
            delivered: 0,
        };
        c.complete(9);
        c.complete(8);
        assert_eq!(c.delivered, 2);
        assert_eq!(v, vec![9, 8]);
    }
}
