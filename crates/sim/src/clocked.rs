//! The clocked-component contract.

use crate::cycle::Cycle;
use crate::sink::{CompletionSink, DenyCompletions};

/// A cycle-accurate component the [`SimLoop`](crate::SimLoop) can drive.
///
/// The contract, which the engine relies on for *exact* equivalence with a
/// per-cycle polling loop:
///
/// 1. [`tick_into`](Clocked::tick_into) simulates exactly the cycle
///    [`now`](Clocked::now) and then advances `now` by one. Completions of
///    that cycle go to the sink, in the same order a per-cycle loop would
///    observe them.
/// 2. [`next_event_at`](Clocked::next_event_at) returns the earliest cycle
///    `>= now` at which *anything observable* can happen — a completion
///    retiring, a command becoming issuable, a refresh falling due. It may
///    be conservative (too early is only slower, never wrong); returning a
///    cycle later than the true next event is a contract violation.
///    `None` means the component is drained: no future event will ever
///    occur without external input.
/// 3. [`skip_to`](Clocked::skip_to) advances `now` to `target`, applying
///    the same per-cycle bookkeeping (histogram samples, epoch
///    housekeeping) the skipped idle ticks would have performed — in bulk,
///    without per-cycle work. The engine only calls it with
///    `target <= next_event_at()`, so no completions can occur inside the
///    skipped range.
pub trait Clocked {
    /// What the component delivers when a unit of work finishes.
    type Completion;

    /// The current cycle: the next cycle [`tick_into`](Clocked::tick_into)
    /// will simulate.
    fn now(&self) -> Cycle;

    /// Simulates one cycle, delivering any completions into `sink`.
    fn tick_into(&mut self, sink: &mut dyn CompletionSink<Self::Completion>);

    /// Earliest cycle `>= now` at which work may happen, or `None` if the
    /// component is drained.
    fn next_event_at(&self) -> Option<Cycle>;

    /// Fast-forwards to `target` (a cycle `<= next_event_at()`), applying
    /// skipped-cycle bookkeeping in bulk. No-op if `target <= now`.
    ///
    /// The default implementation ticks cycle-by-cycle (correct for any
    /// component, no faster than polling); components with idle spans
    /// should override it with an O(1) jump.
    fn skip_to(&mut self, target: Cycle) {
        let mut deny = DenyCompletions;
        while self.now() < target {
            self.tick_into(&mut deny);
        }
    }
}
