//! A calendar-queue event wheel: O(1) next-event lookup for a
//! population of scheduled events.
//!
//! The classic way to drive many clocked components is a min-scan —
//! every step, ask each component for its next event and take the
//! minimum, O(n) per step. [`EventWheel`] replaces the scan with the
//! calendar-queue structure of fast discrete-event simulators: events
//! within a near-future *horizon* live in a ring of single-cycle
//! buckets, so finding the next event is a word-scan of an occupancy
//! bitmap (constant for any fixed wheel size) and popping is O(1)
//! amortized. Events beyond the horizon wait in an overflow list (with
//! a cached minimum) and are re-bucketed in bulk when the wheel rotates
//! past them.
//!
//! Determinism: entries scheduled for the same cycle pop in insertion
//! (FIFO) order — ties never depend on hashing or pointer identity, so
//! a driver built on the wheel replays byte-identically.

use crate::cycle::Cycle;

/// Default number of single-cycle buckets (must be a power of two).
///
/// The horizon should cover the common inter-event gap of the workload:
/// DRAM timing parameters are tens of cycles and refresh intervals a
/// few thousand, so 4 KiC keeps virtually every reschedule inside the
/// ring (the overflow path stays correct either way).
pub const DEFAULT_WHEEL_SLOTS: usize = 4096;

/// A scheduled entry: the event cycle and the caller's id for it.
type Entry = (Cycle, u32);

/// A calendar-queue priority queue of `(cycle, id)` events with O(1)
/// next-event lookup and FIFO ordering within a cycle.
///
/// The wheel tracks a monotone *floor*: popping events at cycle `t`
/// raises the floor to `t`, and scheduling below the floor is clamped
/// up to it (a conservative-early event is legal for the engine, an
/// event in the unreachable past is not).
///
/// # Examples
///
/// ```
/// use ia_sim::{Cycle, EventWheel};
/// let mut wheel = EventWheel::new(16);
/// wheel.schedule(Cycle::new(40), 1);
/// wheel.schedule(Cycle::new(7), 0);
/// wheel.schedule(Cycle::new(7), 2);
/// assert_eq!(wheel.next_event_at(), Some(Cycle::new(7)));
/// let mut due = Vec::new();
/// wheel.take_due(Cycle::new(7), &mut due);
/// assert_eq!(due, vec![0, 2], "same-cycle events pop in FIFO order");
/// assert_eq!(wheel.next_event_at(), Some(Cycle::new(40)));
/// ```
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// Ring of single-cycle buckets; `slots[t & mask]` holds every
    /// pending entry at cycle `t` for `t` within the horizon
    /// `[floor, floor + slots.len())`. Within the horizon a slot maps
    /// to exactly one cycle, so a bucket never mixes cycles.
    slots: Vec<Vec<Entry>>,
    /// `slots.len() - 1`; the length is a power of two.
    mask: u64,
    /// One bit per slot: set iff the slot is non-empty. The next-event
    /// query scans words, not buckets.
    occupied: Vec<u64>,
    /// Entries at or beyond `floor + slots.len()`.
    overflow: Vec<Entry>,
    /// Cached minimum cycle in `overflow` (`Cycle::MAX`-like sentinel
    /// when empty), kept on push and rebuilt on rotation.
    overflow_min: Option<Cycle>,
    /// Lower bound on every pending event; advances as events pop.
    floor: Cycle,
    /// Total pending entries.
    len: usize,
}

impl EventWheel {
    /// Creates a wheel with at least `slots` single-cycle buckets
    /// (rounded up to a power of two, minimum 2).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let n = slots.max(2).next_power_of_two();
        EventWheel {
            slots: vec![Vec::new(); n],
            mask: (n - 1) as u64,
            occupied: vec![0; n.div_ceil(64)],
            overflow: Vec::new(),
            overflow_min: None,
            floor: Cycle::ZERO,
            len: 0,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's monotone lower bound on pending events.
    #[must_use]
    pub fn floor(&self) -> Cycle {
        self.floor
    }

    /// Schedules `id` at cycle `at`. Scheduling below the current floor
    /// clamps to the floor: the past is unreachable, and "due
    /// immediately" is the closest legal meaning.
    pub fn schedule(&mut self, at: Cycle, id: u32) {
        let at = at.max(self.floor);
        self.len += 1;
        if at - self.floor < self.slots.len() as u64 {
            let slot = (at.as_u64() & self.mask) as usize;
            self.slots[slot].push((at, id));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow_min = Some(match self.overflow_min {
                Some(m) => m.min(at),
                None => at,
            });
            self.overflow.push((at, id));
        }
    }

    /// The earliest pending event cycle, or `None` when empty. O(1):
    /// a word-scan of the occupancy bitmap, never a walk of the events.
    #[must_use]
    pub fn next_event_at(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        match self.scan_ring() {
            Some(slot) => Some(self.slot_cycle(slot)),
            None => self.overflow_min,
        }
    }

    /// Pops every entry scheduled at exactly `at` into `out` (appending,
    /// FIFO order) and raises the floor to `at`.
    ///
    /// `at` must not be *beyond* the earliest pending event (the same
    /// shape as the engine's skip contract: jumping over an event would
    /// strand it behind the floor). Callers drive the wheel with
    /// `take_due(next_event_at())`; calling it for a cycle with no
    /// entries is legal and appends nothing.
    pub fn take_due(&mut self, at: Cycle, out: &mut Vec<u32>) {
        if at < self.floor {
            return;
        }
        debug_assert!(
            self.next_event_at().is_none_or(|t| at <= t),
            "take_due({at}) would jump past the earliest pending event"
        );
        self.rotate_to(at);
        self.floor = at;
        let slot = (at.as_u64() & self.mask) as usize;
        let bucket = &mut self.slots[slot];
        if bucket.is_empty() {
            return;
        }
        // Within the horizon a bucket holds a single cycle, which after
        // the rotation above can only be `at` itself.
        debug_assert!(bucket.iter().all(|&(t, _)| t == at));
        self.len -= bucket.len();
        out.extend(bucket.drain(..).map(|(_, id)| id));
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// Moves the floor's horizon forward to cover `at`, re-bucketing any
    /// overflow entries that fall inside the new horizon.
    fn rotate_to(&mut self, at: Cycle) {
        let horizon = self.slots.len() as u64;
        if self.overflow.is_empty() {
            return;
        }
        // Only rotate when the new horizon can actually admit overflow
        // entries; rebuilding the cached minimum then costs one pass.
        match self.overflow_min {
            Some(m) if m - at < horizon => {}
            _ => return,
        }
        let mut kept = Vec::with_capacity(self.overflow.len());
        let mut kept_min: Option<Cycle> = None;
        for (t, id) in std::mem::take(&mut self.overflow) {
            if t - at < horizon {
                let slot = (t.as_u64() & self.mask) as usize;
                self.slots[slot].push((t, id));
                self.occupied[slot / 64] |= 1 << (slot % 64);
            } else {
                kept_min = Some(match kept_min {
                    Some(m) => m.min(t),
                    None => t,
                });
                kept.push((t, id));
            }
        }
        self.overflow = kept;
        self.overflow_min = kept_min;
    }

    /// Index of the first occupied slot at or after the floor (wrapping
    /// once around the ring), or `None` if the ring is empty.
    fn scan_ring(&self) -> Option<usize> {
        let start = (self.floor.as_u64() & self.mask) as usize;
        let words = self.occupied.len();
        // First word: mask off bits before the floor's slot.
        let mut idx = start / 64;
        let mut word = self.occupied[idx] & !((1u64 << (start % 64)) - 1);
        for step in 0..=words {
            if word != 0 {
                let slot = idx * 64 + word.trailing_zeros() as usize;
                return Some(slot);
            }
            idx = (idx + 1) % words;
            word = self.occupied[idx];
            // After wrapping past the start word once, restrict it to the
            // bits *before* the floor to avoid double-visiting.
            if step == words - 1 {
                word &= (1u64 << (start % 64)) - 1;
            }
        }
        None
    }

    /// The cycle a (non-empty) slot currently represents: the unique
    /// `t >= floor` within the horizon with `t & mask == slot`.
    fn slot_cycle(&self, slot: usize) -> Cycle {
        let base = self.floor.as_u64() & !self.mask;
        let f = self.floor.as_u64() & self.mask;
        let t = if (slot as u64) >= f {
            base + slot as u64
        } else {
            base + self.mask + 1 + slot as u64
        };
        Cycle::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut w = EventWheel::new(8);
        w.schedule(Cycle::new(5), 10);
        w.schedule(Cycle::new(3), 20);
        w.schedule(Cycle::new(5), 30);
        w.schedule(Cycle::new(3), 40);
        assert_eq!(w.len(), 4);
        let mut out = Vec::new();
        let t = w.next_event_at().unwrap();
        assert_eq!(t, Cycle::new(3));
        w.take_due(t, &mut out);
        assert_eq!(out, vec![20, 40]);
        out.clear();
        let t = w.next_event_at().unwrap();
        assert_eq!(t, Cycle::new(5));
        w.take_due(t, &mut out);
        assert_eq!(out, vec![10, 30]);
        assert!(w.is_empty());
        assert_eq!(w.next_event_at(), None);
    }

    #[test]
    fn overflow_entries_surface_after_rotation() {
        let mut w = EventWheel::new(4);
        // Far beyond the 4-cycle horizon.
        w.schedule(Cycle::new(1000), 1);
        w.schedule(Cycle::new(1002), 2);
        w.schedule(Cycle::new(2), 3);
        assert_eq!(w.next_event_at(), Some(Cycle::new(2)));
        let mut out = Vec::new();
        w.take_due(Cycle::new(2), &mut out);
        assert_eq!(out, vec![3]);
        // Ring now empty; the overflow minimum is the next event.
        assert_eq!(w.next_event_at(), Some(Cycle::new(1000)));
        out.clear();
        w.take_due(Cycle::new(1000), &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(w.next_event_at(), Some(Cycle::new(1002)));
        out.clear();
        w.take_due(Cycle::new(1002), &mut out);
        assert_eq!(out, vec![2]);
        assert!(w.is_empty());
    }

    #[test]
    fn floor_clamps_past_schedules() {
        let mut w = EventWheel::new(8);
        w.schedule(Cycle::new(6), 1);
        let mut out = Vec::new();
        w.take_due(Cycle::new(6), &mut out);
        assert_eq!(w.floor(), Cycle::new(6));
        // Scheduling "in the past" becomes "due at the floor".
        w.schedule(Cycle::new(2), 9);
        assert_eq!(w.next_event_at(), Some(Cycle::new(6)));
        out.clear();
        w.take_due(Cycle::new(6), &mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn take_due_on_empty_cycle_is_a_no_op() {
        let mut w = EventWheel::new(8);
        w.schedule(Cycle::new(9), 1);
        let mut out = Vec::new();
        w.take_due(Cycle::new(4), &mut out);
        assert!(out.is_empty());
        assert_eq!(w.next_event_at(), Some(Cycle::new(9)));
    }

    #[test]
    fn wrap_around_keeps_cycle_mapping_unique() {
        let mut w = EventWheel::new(4);
        let mut out = Vec::new();
        // Drive the floor around the ring several times.
        for lap in 0u64..10 {
            let t = Cycle::new(3 + lap * 3);
            w.schedule(t, lap as u32);
            assert_eq!(w.next_event_at(), Some(t), "lap {lap}");
            out.clear();
            w.take_due(t, &mut out);
            assert_eq!(out, vec![lap as u32]);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_horizon_and_overflow_stay_ordered() {
        let mut w = EventWheel::new(8);
        for (t, id) in [(100u64, 1u32), (3, 2), (9, 3), (4, 4), (101, 5), (4, 6)] {
            w.schedule(Cycle::new(t), id);
        }
        let mut popped = Vec::new();
        while let Some(t) = w.next_event_at() {
            let mut out = Vec::new();
            w.take_due(t, &mut out);
            popped.extend(out.into_iter().map(|id| (t.as_u64(), id)));
        }
        assert_eq!(
            popped,
            vec![(3, 2), (4, 4), (4, 6), (9, 3), (100, 1), (101, 5)]
        );
    }
}
