//! # ia-sim — the event-driven simulation engine
//!
//! Every cycle-accurate model in this workspace (the memory controller,
//! the DRAM hierarchy behind it, the NoC routers) used to advance time the
//! same way: a `for now in 0..cycles` loop calling a `tick()` that usually
//! did nothing, and allocating a fresh `Vec` of completions per cycle.
//! That is simple but wasteful — a refresh-dominated controller spends
//! well over 90% of its ticks idle, and the allocator churn shows up
//! directly in wall-clock time.
//!
//! This crate replaces that pattern with the classic event-driven
//! formulation used by fast architecture simulators: components declare
//! *when something can next happen*, and the driver jumps the clock
//! straight there. The results are **numerically identical** to per-cycle
//! polling — same command sequences, same cycle counts, same statistics —
//! because skipped cycles are, by contract, cycles in which nothing
//! observable occurs.
//!
//! ## The three-part contract
//!
//! A component implements [`Clocked`]:
//!
//! 1. **[`tick_into`](Clocked::tick_into)** simulates exactly cycle
//!    [`now()`](Clocked::now), delivers any completions into the
//!    caller-provided [`CompletionSink`], and advances `now` by one.
//! 2. **[`next_event_at`](Clocked::next_event_at)** returns the earliest
//!    cycle `>= now` at which anything observable may happen. Too early is
//!    merely slower; too late is a correctness bug (and [`DenyCompletions`]
//!    will panic if a completion fires mid-skip). `None` means drained.
//! 3. **[`skip_to`](Clocked::skip_to)** fast-forwards `now` to a target
//!    `<= next_event_at()`, applying whatever bulk bookkeeping the skipped
//!    idle ticks would have done (histogram samples, scheduler epoch
//!    decay). The default implementation just ticks through — correct for
//!    any component, fast for none.
//!
//! [`SimLoop`] drives a `Clocked` component: [`SimLoop::step`] processes
//! exactly one event (skipping idle time first) and returns control, which
//! is what lets closed-loop harnesses inject new work in response to
//! completions; [`SimLoop::run_while`] loops until a predicate, a
//! deadline, or drain. The engine's own effort — events processed, cycles
//! skipped, sink high-water mark — is tracked in [`EngineStats`] and
//! exported through `ia-telemetry`.
//!
//! A no-progress **watchdog** guards against components that violate the
//! contract by reporting an imminent event while never advancing their
//! clock: after [`DEFAULT_WATCHDOG_BOUND`] consecutive frozen ticks
//! (configurable via [`SimLoop::with_watchdog`]), the engine returns a
//! structured [`StallReport`] — [`StepOutcome::Stalled`] /
//! [`RunOutcome::Stalled`] — instead of spinning silently forever.
//!
//! ## Completion sinks instead of returned Vecs
//!
//! `tick_into` writes completions into a sink owned by the caller rather
//! than returning a `Vec`. A `Vec<T>` *is* a sink, so the typical driver
//! allocates one scratch buffer, passes it to every tick, and `clear()`s
//! it between ticks — zero allocation in steady state. [`FnSink`] adapts a
//! closure when the caller wants to consume completions on the fly.
//!
//! ## How to port a component
//!
//! Starting from a per-cycle `fn tick(&mut self) -> Vec<Completed>`:
//!
//! 1. Change the signature to
//!    `fn tick_into(&mut self, sink: &mut dyn CompletionSink<Completed>)`
//!    and replace every `done.push(x)` with `sink.complete(x)`. Keep the
//!    body otherwise byte-for-byte identical — that is what guarantees
//!    equivalence.
//! 2. Implement `next_event_at` by taking the minimum over every source of
//!    future work the component tracks: in-flight operations' ready times,
//!    the next refresh slot, the earliest cycle a queued command could
//!    issue. Clamp to `now` (a stale timestamp in the past means "ready
//!    now"). Return `None` only when no internal state can ever produce an
//!    event again.
//! 3. Override `skip_to` with the bulk form of whatever per-cycle
//!    bookkeeping the old loop did on idle cycles: sample a histogram `n`
//!    times with `record_n`, bump an idle counter by `n`, advance epoch
//!    counters by their closed form. If a piece of bookkeeping has no
//!    closed form, keep it per-cycle inside `skip_to` — correctness first.
//! 4. Keep a thin `tick()` compatibility wrapper if external callers want
//!    the old shape, and add a differential test: run the same seeded
//!    workload through a per-cycle loop and through [`SimLoop`], and
//!    assert the reports are equal.
//!
//! The memory controller in `ia-memctrl` is the reference port: see its
//! `Clocked` impl for a worked example of all four steps, including exact
//! scheduler-epoch fast-forwarding.

#![forbid(unsafe_code)]

mod clocked;
mod cycle;
mod engine;
mod group;
mod sink;
mod snapshot;
mod wheel;

pub use clocked::Clocked;
pub use cycle::Cycle;
pub use engine::{
    EngineStats, RunOutcome, SimLoop, StallKind, StallReport, StepOutcome, DEFAULT_WATCHDOG_BOUND,
};
pub use group::SimGroup;
pub use sink::{CompletionSink, DenyCompletions, FnSink};
pub use snapshot::SnapshotState;
pub use wheel::{EventWheel, DEFAULT_WHEEL_SLOTS};
