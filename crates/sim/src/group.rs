//! Driving a population of clocked components as one component.
//!
//! [`SimGroup`] owns a set of [`Clocked`] components and implements
//! `Clocked` itself, so one [`SimLoop`](crate::SimLoop) drives them all.
//! The classic way to find the group's next event is a min-scan over
//! every member — O(n) per step, and the dominant cost once populations
//! grow. The group instead keeps each member's next event in an
//! [`EventWheel`] calendar queue, making `next_event_at` O(1): members
//! are re-scheduled only when they are ticked (or explicitly refreshed
//! after external input), never polled.
//!
//! Equivalence: the group's completion stream is identical to a
//! per-cycle reference loop that ticks every due member in index order
//! each cycle — same completions, same order, same final clocks. The
//! property test in `tests/wheel_equivalence.rs` drives randomized
//! populations through both and asserts exactly that.

use crate::clocked::Clocked;
use crate::cycle::Cycle;
use crate::sink::CompletionSink;
use crate::wheel::EventWheel;

/// A population of [`Clocked`] components driven on one shared clock.
///
/// Members lag the group clock while idle and are fast-forwarded (via
/// their own [`Clocked::skip_to`] bulk bookkeeping) immediately before
/// each tick, so per-member skip work is done exactly once per event
/// rather than once per group step.
///
/// After mutating a member from outside (injecting work between engine
/// steps), call [`SimGroup::refresh`] so the wheel learns the member's
/// new next event.
#[derive(Debug)]
pub struct SimGroup<C: Clocked> {
    members: Vec<C>,
    wheel: EventWheel,
    now: Cycle,
    /// Scratch buffer of member ids due at the current cycle.
    due: Vec<u32>,
}

impl<C: Clocked> SimGroup<C> {
    /// Creates a group over `members`, all expected to start at the same
    /// clock (cycle zero for freshly built components). Initial events
    /// are scheduled immediately.
    #[must_use]
    pub fn new(members: Vec<C>) -> Self {
        Self::with_wheel_slots(members, crate::wheel::DEFAULT_WHEEL_SLOTS)
    }

    /// Creates a group with an explicit wheel size (power of two;
    /// smaller wheels rotate more, larger wheels scan more words).
    #[must_use]
    pub fn with_wheel_slots(members: Vec<C>, slots: usize) -> Self {
        let mut group = SimGroup {
            wheel: EventWheel::new(slots),
            now: members.first().map_or(Cycle::ZERO, Clocked::now),
            members,
            due: Vec::new(),
        };
        for i in 0..group.members.len() {
            group.refresh(i);
        }
        group
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the group has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Shared view of a member.
    #[must_use]
    pub fn member(&self, i: usize) -> &C {
        &self.members[i]
    }

    /// Mutable access to a member. After mutating it in a way that can
    /// change its next event (injecting a request, closing a queue),
    /// call [`SimGroup::refresh`]`(i)`.
    pub fn member_mut(&mut self, i: usize) -> &mut C {
        &mut self.members[i]
    }

    /// Consumes the group, returning the members (e.g. to collect final
    /// per-member reports).
    #[must_use]
    pub fn into_members(self) -> Vec<C> {
        self.members
    }

    /// Re-reads member `i`'s `next_event_at` and schedules it on the
    /// wheel. A stale earlier entry may remain; it pops as a harmless
    /// conservative-early wake-up (the member simply has nothing to do
    /// that cycle), which the `Clocked` contract explicitly permits.
    pub fn refresh(&mut self, i: usize) {
        if let Some(event) = self.members[i].next_event_at() {
            // Clamp: a member's event can never be behind the group
            // clock it is driven on.
            self.wheel.schedule(event.max(self.now), i as u32);
        }
    }
}

impl<C: Clocked> Clocked for SimGroup<C> {
    type Completion = C::Completion;

    fn now(&self) -> Cycle {
        self.now
    }

    fn tick_into(&mut self, sink: &mut dyn CompletionSink<Self::Completion>) {
        let t = self.now;
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        self.wheel.take_due(t, &mut due);
        // Tick due members in ascending index order — the order a
        // per-cycle reference loop visits them — not wheel insertion
        // order, so the completion stream is scan-identical.
        due.sort_unstable();
        for &id in &due {
            let member = &mut self.members[id as usize];
            // Dedup: `refresh` may have scheduled this member at `t`
            // while an earlier wake-up already ticked it past `t`.
            if member.now() > t {
                continue;
            }
            if member.now() < t {
                member.skip_to(t);
            }
            member.tick_into(sink);
            if let Some(event) = member.next_event_at() {
                self.wheel.schedule(event.max(member.now()), id);
            }
        }
        due.clear();
        self.due = due;
        self.now = t + 1;
    }

    fn next_event_at(&self) -> Option<Cycle> {
        self.wheel.next_event_at().map(|t| t.max(self.now))
    }

    fn skip_to(&mut self, target: Cycle) {
        // Members are fast-forwarded lazily at their next tick; the
        // group clock alone jumps now. Members that never tick again
        // are synced when the group is torn down via `into_members` —
        // callers needing exact final member clocks should drive the
        // group to its deadline (the engine's DeadlineReached step does
        // exactly this).
        if target > self.now {
            self.now = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunOutcome, SimLoop};

    /// Emits `(id, cycle)` every `period` cycles, `count` times.
    #[derive(Debug)]
    struct Pulse {
        id: u32,
        now: Cycle,
        period: u64,
        next_fire: Cycle,
        remaining: u32,
    }

    impl Pulse {
        fn new(id: u32, period: u64, phase: u64, count: u32) -> Self {
            Pulse {
                id,
                now: Cycle::ZERO,
                period,
                next_fire: Cycle::new(phase),
                remaining: count,
            }
        }
    }

    impl Clocked for Pulse {
        type Completion = (u32, Cycle);

        fn now(&self) -> Cycle {
            self.now
        }

        fn tick_into(&mut self, sink: &mut dyn CompletionSink<(u32, Cycle)>) {
            if self.remaining > 0 && self.now >= self.next_fire {
                sink.complete((self.id, self.now));
                self.remaining -= 1;
                self.next_fire = self.now + self.period;
            }
            self.now += 1;
        }

        fn next_event_at(&self) -> Option<Cycle> {
            (self.remaining > 0).then(|| self.next_fire.max(self.now))
        }

        fn skip_to(&mut self, target: Cycle) {
            if target > self.now {
                self.now = target;
            }
        }
    }

    /// The reference the wheel must match: tick every member in index
    /// order, every cycle, until all are drained.
    fn scan_reference(mut members: Vec<Pulse>) -> Vec<(u32, Cycle)> {
        let mut done = Vec::new();
        while members.iter().any(|m| m.next_event_at().is_some()) {
            for m in &mut members {
                m.tick_into(&mut done);
            }
        }
        done
    }

    #[test]
    fn group_matches_scan_reference_on_a_fixed_population() {
        let build = || {
            vec![
                Pulse::new(0, 7, 3, 5),
                Pulse::new(1, 100, 0, 2),
                Pulse::new(2, 7, 3, 5), // identical twin of 0: exercises ties
                Pulse::new(3, 1, 50, 10),
            ]
        };
        let expected = scan_reference(build());

        let mut group = SimGroup::with_wheel_slots(build(), 16);
        let mut engine = SimLoop::new();
        let mut got: Vec<(u32, Cycle)> = Vec::new();
        let out = engine.run_while(&mut group, &mut got, Cycle::new(100_000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(got, expected);
        // The wheel-driven engine processed far fewer ticks than the
        // reference's cycles x members.
        assert!(engine.stats().cycles_skipped > 0);
    }

    #[test]
    fn refresh_picks_up_externally_injected_work() {
        let mut group = SimGroup::new(vec![Pulse::new(0, 10, 5, 1), Pulse::new(1, 10, 9, 0)]);
        let mut engine = SimLoop::new();
        let mut got: Vec<(u32, Cycle)> = Vec::new();
        // Drain the initial event.
        let out = engine.run_while(&mut group, &mut got, Cycle::new(1_000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(got, vec![(0, Cycle::new(5))]);
        // Inject new work into the idle member 1, then refresh it.
        let now = group.now();
        let m = group.member_mut(1);
        m.remaining = 1;
        m.next_fire = now + 7;
        group.refresh(1);
        got.clear();
        let out = engine.run_while(&mut group, &mut got, Cycle::new(1_000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(got, vec![(1, now + 7)]);
    }

    #[test]
    fn stale_wheel_entries_are_harmless() {
        // Schedule member 0, then refresh it twice more: duplicates at
        // the same or later cycles pop as no-op wake-ups.
        let mut group = SimGroup::new(vec![Pulse::new(0, 4, 2, 3)]);
        group.refresh(0);
        group.refresh(0);
        let mut engine = SimLoop::new();
        let mut got: Vec<(u32, Cycle)> = Vec::new();
        let out = engine.run_while(&mut group, &mut got, Cycle::new(1_000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(
            got,
            vec![(0, Cycle::new(2)), (0, Cycle::new(6)), (0, Cycle::new(10))]
        );
    }

    #[test]
    fn empty_group_is_drained_immediately() {
        let mut group: SimGroup<Pulse> = SimGroup::new(Vec::new());
        assert!(group.is_empty());
        assert_eq!(group.next_event_at(), None);
        let mut engine = SimLoop::new();
        let mut got: Vec<(u32, Cycle)> = Vec::new();
        assert_eq!(
            engine.run_while(&mut group, &mut got, Cycle::new(10), |_| true),
            RunOutcome::Drained
        );
    }

    #[test]
    fn members_are_recoverable_with_final_state() {
        let mut group = SimGroup::new(vec![Pulse::new(0, 3, 0, 4)]);
        let mut engine = SimLoop::new();
        let mut got: Vec<(u32, Cycle)> = Vec::new();
        engine.run_while(&mut group, &mut got, Cycle::new(1_000), |_| true);
        assert_eq!(group.len(), 1);
        assert_eq!(group.member(0).remaining, 0);
        let members = group.into_members();
        assert_eq!(members[0].remaining, 0);
    }
}
