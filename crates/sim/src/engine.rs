//! The event-driven driver: cycle-skips to the next scheduled event
//! instead of polling idle cycles.

use std::fmt;

use ia_telemetry::{MetricSource, Scope};
use ia_trace::{ComponentTrace, Tracer};

use crate::clocked::Clocked;
use crate::cycle::Cycle;
use crate::sink::{CompletionSink, CountingSink};

/// Counters describing how much work the engine did and how much it
/// avoided. Exported through `ia-telemetry` so the cycle-skipping payoff
/// is observable in experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Ticks actually executed (events processed).
    pub events_processed: u64,
    /// Idle cycles bypassed via [`Clocked::skip_to`].
    pub cycles_skipped: u64,
    /// Number of skip jumps performed.
    pub skips: u64,
    /// Sink high-water mark: most completions delivered by a single tick.
    pub sink_high_water: u64,
}

impl EngineStats {
    /// Merges another engine's counters into this one (e.g. to aggregate
    /// several runs of one experiment).
    pub fn merge(&mut self, other: &EngineStats) {
        self.events_processed += other.events_processed;
        self.cycles_skipped += other.cycles_skipped;
        self.skips += other.skips;
        self.sink_high_water = self.sink_high_water.max(other.sink_high_water);
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} cycles skipped in {} jumps, sink high-water {}",
            self.events_processed, self.cycles_skipped, self.skips, self.sink_high_water
        )
    }
}

impl MetricSource for EngineStats {
    fn export_into(&self, scope: &mut Scope<'_>) {
        scope.set_counter("events_processed", self.events_processed);
        scope.set_counter("cycles_skipped", self.cycles_skipped);
        scope.set_counter("skips", self.skips);
        scope.set_counter("sink_high_water", self.sink_high_water);
    }
}

/// Which [`Clocked`] contract violation the engine detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The component kept claiming an imminent event while its clock
    /// never advanced (the watchdog bound was exceeded).
    NoProgress,
    /// `next_event_at()` returned a cycle *behind* the component's own
    /// clock — an event in the past the engine can never reach.
    TimeTravel {
        /// The past cycle the component promised an event at.
        event: Cycle,
    },
}

/// Structured evidence of a [`Clocked`] contract violation: either a
/// no-progress spin (the component kept claiming a next event while its
/// clock never advanced) or a time-traveling `next_event_at()` (an
/// event promised behind the clock). Both used to be silent — an
/// infinite spin and a `debug_assert!` compiled out of release builds —
/// and are now data a harness can report and exit on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// The detected violation.
    pub kind: StallKind,
    /// The cycle the component's clock was at when the violation was
    /// detected.
    pub at: Cycle,
    /// Consecutive ticks executed without the clock advancing (zero for
    /// [`StallKind::TimeTravel`], which is detected immediately).
    pub stuck_steps: u64,
    /// The configured watchdog bound.
    pub bound: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            StallKind::NoProgress => write!(
                f,
                "component stalled at cycle {}: {} consecutive ticks without progress (watchdog bound {})",
                self.at, self.stuck_steps, self.bound
            ),
            StallKind::TimeTravel { event } => write!(
                f,
                "component time-traveled at cycle {}: next_event_at() returned {event}, which is in the past",
                self.at
            ),
        }
    }
}

impl std::error::Error for StallReport {}

/// What one [`SimLoop::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One tick was executed (possibly after a skip).
    Ticked,
    /// The next event lies at or beyond the deadline; the clock was
    /// advanced to the deadline and nothing was executed.
    DeadlineReached,
    /// `next_event_at()` returned `None`: the component is drained and the
    /// clock was left untouched.
    Drained,
    /// The no-progress watchdog fired: the component kept reporting an
    /// imminent event but its clock has not advanced for the configured
    /// number of ticks.
    Stalled(StallReport),
}

/// Why a [`SimLoop::run_while`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate turned false.
    Stopped,
    /// The component reported no further events.
    Drained,
    /// The deadline was reached.
    DeadlineReached,
    /// The no-progress watchdog fired (see [`StallReport`]).
    Stalled(StallReport),
}

impl RunOutcome {
    /// Converts the outcome into a `Result`, turning a watchdog trip into
    /// the structured [`StallReport`] error.
    ///
    /// # Errors
    ///
    /// Returns the [`StallReport`] if the run stalled.
    pub fn into_result(self) -> Result<RunOutcome, StallReport> {
        match self {
            RunOutcome::Stalled(report) => Err(report),
            other => Ok(other),
        }
    }
}

/// The event-driven simulation driver.
///
/// `SimLoop` never executes an idle cycle: before each tick it asks the
/// component for its next event and jumps the clock straight there via
/// [`Clocked::skip_to`]. Results are bit-identical to a per-cycle polling
/// loop as long as the component honors the [`Clocked`] contract.
#[derive(Debug, Clone)]
pub struct SimLoop {
    stats: EngineStats,
    /// No-progress watchdog bound: the maximum number of consecutive
    /// ticks the component may execute without `now()` advancing before
    /// [`StepOutcome::Stalled`] is reported.
    watchdog_bound: u64,
    /// Consecutive ticks observed with a frozen clock, and the cycle the
    /// clock froze at.
    stuck_steps: u64,
    stuck_at: Cycle,
    /// Trace recorder for engine-level events (`engine.skip` instants).
    /// Disabled by default: each trace point costs one branch.
    tracer: Tracer,
}

impl Default for SimLoop {
    fn default() -> Self {
        SimLoop::new()
    }
}

/// Default watchdog bound. A correct [`Clocked`] component advances its
/// clock on *every* tick, so any value > 0 would do; the default leaves
/// generous headroom for exotic-but-legal implementations while still
/// tripping in well under a millisecond of wall time.
pub const DEFAULT_WATCHDOG_BOUND: u64 = 10_000;

impl SimLoop {
    /// Creates an engine with zeroed counters and the default no-progress
    /// watchdog ([`DEFAULT_WATCHDOG_BOUND`] ticks).
    #[must_use]
    pub fn new() -> Self {
        SimLoop::with_watchdog(DEFAULT_WATCHDOG_BOUND)
    }

    /// Creates an engine whose watchdog trips after `bound` consecutive
    /// ticks without clock progress. `bound == 0` disables the watchdog
    /// (restoring the historical spin-forever behavior).
    #[must_use]
    pub fn with_watchdog(bound: u64) -> Self {
        SimLoop {
            stats: EngineStats::default(),
            watchdog_bound: bound,
            stuck_steps: 0,
            stuck_at: Cycle::ZERO,
            tracer: Tracer::disabled(),
        }
    }

    /// The engine's work/savings counters.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Enables trace recording of engine events (`engine.skip` instants
    /// whose value is the number of cycles jumped) on track `"engine"`,
    /// ringing at most `capacity` events.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Tracer::new("engine", capacity);
    }

    /// The engine's tracer — the harness uses it to wrap a run in a
    /// `"run"` span (`begin`/`end` with the component's clock).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Drains the engine's trace (empty if tracing was never enabled).
    #[must_use]
    pub fn take_trace(&mut self) -> ComponentTrace {
        self.tracer.take()
    }

    /// Advances the component by exactly one *processed* tick: skips idle
    /// cycles up to the next event (never past `deadline`), then ticks.
    ///
    /// The caller regains control after every tick, which is what lets a
    /// closed-loop harness feed new work in response to completions.
    pub fn step<C: Clocked + ?Sized>(
        &mut self,
        component: &mut C,
        sink: &mut dyn CompletionSink<C::Completion>,
        deadline: Cycle,
    ) -> StepOutcome {
        let Some(event) = component.next_event_at() else {
            return StepOutcome::Drained;
        };
        if event < component.now() {
            // An event promised in the past can never be reached: ticking
            // would simulate the wrong cycle and skipping goes backwards.
            // This used to be a debug_assert! (silent in release builds);
            // it is the same class of contract violation as a no-progress
            // spin, so it reports through the watchdog's stall path.
            return StepOutcome::Stalled(StallReport {
                kind: StallKind::TimeTravel { event },
                at: component.now(),
                stuck_steps: 0,
                bound: self.watchdog_bound,
            });
        }
        if event >= deadline {
            // A per-cycle loop would idle-tick up to the deadline; jump
            // there so time-bounded runs report identical final clocks.
            let now = component.now();
            if now < deadline {
                component.skip_to(deadline);
                self.stats.skips += 1;
                self.stats.cycles_skipped += deadline - now;
                self.tracer
                    .instant_value("engine.skip", now.as_u64(), (deadline - now) as f64);
            }
            return StepOutcome::DeadlineReached;
        }
        let now = component.now();
        if event > now {
            component.skip_to(event);
            self.stats.skips += 1;
            self.stats.cycles_skipped += event - now;
            self.tracer
                .instant_value("engine.skip", now.as_u64(), (event - now) as f64);
        }
        let mut counting = CountingSink {
            inner: sink,
            delivered: 0,
        };
        let before = component.now();
        component.tick_into(&mut counting);
        self.stats.sink_high_water = self.stats.sink_high_water.max(counting.delivered);
        self.stats.events_processed += 1;
        if self.watchdog_bound > 0 {
            // A tick that leaves the clock where it was makes no forward
            // progress; enough of them in a row is a stall, not a
            // simulation. (A healthy component resets the streak on every
            // tick, so this costs one comparison in the common case.)
            if component.now() > before {
                self.stuck_steps = 0;
            } else {
                if self.stuck_steps == 0 {
                    self.stuck_at = before;
                }
                self.stuck_steps += 1;
                if self.stuck_steps >= self.watchdog_bound {
                    let report = StallReport {
                        kind: StallKind::NoProgress,
                        at: self.stuck_at,
                        stuck_steps: self.stuck_steps,
                        bound: self.watchdog_bound,
                    };
                    self.stuck_steps = 0;
                    return StepOutcome::Stalled(report);
                }
            }
        }
        StepOutcome::Ticked
    }

    /// Steps until `keep_going` turns false, the component drains, or the
    /// deadline is reached. The predicate is checked before every step.
    pub fn run_while<C: Clocked + ?Sized>(
        &mut self,
        component: &mut C,
        sink: &mut dyn CompletionSink<C::Completion>,
        deadline: Cycle,
        mut keep_going: impl FnMut(&C) -> bool,
    ) -> RunOutcome {
        loop {
            if !keep_going(component) {
                return RunOutcome::Stopped;
            }
            match self.step(component, sink, deadline) {
                StepOutcome::Ticked => {}
                StepOutcome::Drained => return RunOutcome::Drained,
                StepOutcome::DeadlineReached => return RunOutcome::DeadlineReached,
                StepOutcome::Stalled(report) => return RunOutcome::Stalled(report),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy component: a delay line that completes one item every `period`
    /// cycles until `remaining` hits zero.
    #[derive(Debug)]
    struct Pulse {
        now: Cycle,
        period: u64,
        next_fire: Cycle,
        remaining: u32,
        ticked: u64,
    }

    impl Pulse {
        fn new(period: u64, count: u32) -> Self {
            Pulse {
                now: Cycle::ZERO,
                period,
                next_fire: Cycle::new(period),
                remaining: count,
                ticked: 0,
            }
        }
    }

    impl Clocked for Pulse {
        type Completion = Cycle;

        fn now(&self) -> Cycle {
            self.now
        }

        fn tick_into(&mut self, sink: &mut dyn CompletionSink<Cycle>) {
            self.ticked += 1;
            if self.remaining > 0 && self.now >= self.next_fire {
                sink.complete(self.now);
                self.remaining -= 1;
                self.next_fire = self.now + self.period;
            }
            self.now += 1;
        }

        fn next_event_at(&self) -> Option<Cycle> {
            (self.remaining > 0).then(|| self.next_fire.max(self.now))
        }

        fn skip_to(&mut self, target: Cycle) {
            if target > self.now {
                self.now = target;
            }
        }
    }

    #[test]
    fn engine_skips_idle_cycles_and_preserves_event_times() {
        let mut engine = SimLoop::new();
        let mut done: Vec<Cycle> = Vec::new();
        let mut pulse = Pulse::new(100, 3);
        let out = engine.run_while(&mut pulse, &mut done, Cycle::new(10_000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(
            done,
            vec![Cycle::new(100), Cycle::new(200), Cycle::new(300)]
        );
        assert_eq!(pulse.ticked, 3, "only event cycles were executed");
        let s = engine.stats();
        assert_eq!(s.events_processed, 3);
        assert_eq!(
            s.cycles_skipped, 298,
            "100-cycle lead-in plus two 99-cycle idle gaps"
        );
        assert_eq!(s.sink_high_water, 1);
    }

    #[test]
    fn engine_matches_per_cycle_polling() {
        // Event-driven run.
        let mut engine = SimLoop::new();
        let mut fast: Vec<Cycle> = Vec::new();
        let mut p1 = Pulse::new(7, 5);
        engine.run_while(&mut p1, &mut fast, Cycle::new(1000), |_| true);

        // Per-cycle polling loop over an identical component.
        let mut slow: Vec<Cycle> = Vec::new();
        let mut p2 = Pulse::new(7, 5);
        while p2.next_event_at().is_some() {
            p2.tick_into(&mut slow);
        }
        assert_eq!(fast, slow);
        assert_eq!(p1.now(), p2.now());
    }

    #[test]
    fn deadline_advances_clock_without_ticking() {
        let mut engine = SimLoop::new();
        let mut done: Vec<Cycle> = Vec::new();
        let mut pulse = Pulse::new(500, 1);
        let out = engine.step(&mut pulse, &mut done, Cycle::new(50));
        assert_eq!(out, StepOutcome::DeadlineReached);
        assert_eq!(
            pulse.now(),
            Cycle::new(50),
            "clock advanced to the deadline"
        );
        assert!(done.is_empty());
        assert_eq!(engine.stats().events_processed, 0);
    }

    #[test]
    fn drained_component_stops_the_run() {
        let mut engine = SimLoop::new();
        let mut done: Vec<Cycle> = Vec::new();
        let mut pulse = Pulse::new(10, 0);
        assert_eq!(
            engine.step(&mut pulse, &mut done, Cycle::new(100)),
            StepOutcome::Drained
        );
    }

    #[test]
    fn predicate_stops_the_run() {
        let mut engine = SimLoop::new();
        let mut done: Vec<Cycle> = Vec::new();
        let mut pulse = Pulse::new(10, 100);
        let out = engine.run_while(&mut pulse, &mut done, Cycle::new(100_000), |p| {
            p.now() < Cycle::new(35)
        });
        assert_eq!(out, RunOutcome::Stopped);
        // The predicate is evaluated once per processed event, not per
        // cycle: the step that fires the event at 40 begins while now=31
        // still satisfies the predicate.
        assert_eq!(done.len(), 4, "events at 10, 20, 30, 40");
    }

    #[test]
    fn default_skip_to_ticks_through() {
        // A component relying on the default skip_to still works: ticks
        // happen per cycle during the "skip", with no completions allowed.
        #[derive(Debug)]
        struct Lazy {
            now: Cycle,
            fire: Cycle,
            fired: bool,
        }
        impl Clocked for Lazy {
            type Completion = ();
            fn now(&self) -> Cycle {
                self.now
            }
            fn tick_into(&mut self, sink: &mut dyn CompletionSink<()>) {
                if !self.fired && self.now >= self.fire {
                    sink.complete(());
                    self.fired = true;
                }
                self.now += 1;
            }
            fn next_event_at(&self) -> Option<Cycle> {
                (!self.fired).then_some(self.fire.max(self.now))
            }
        }
        let mut engine = SimLoop::new();
        let mut done: Vec<()> = Vec::new();
        let mut lazy = Lazy {
            now: Cycle::ZERO,
            fire: Cycle::new(40),
            fired: false,
        };
        let out = engine.run_while(&mut lazy, &mut done, Cycle::new(1000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(done.len(), 1);
        assert_eq!(engine.stats().cycles_skipped, 40);
    }

    /// A broken component: `next_event_at()` always promises an imminent
    /// event, but `tick_into` never advances the clock — the classic
    /// silent-spin bug the watchdog exists to catch.
    #[derive(Debug)]
    struct Liar {
        now: Cycle,
        ticked: u64,
    }

    impl Clocked for Liar {
        type Completion = ();
        fn now(&self) -> Cycle {
            self.now
        }
        fn tick_into(&mut self, _sink: &mut dyn CompletionSink<()>) {
            self.ticked += 1; // clock deliberately frozen
        }
        fn next_event_at(&self) -> Option<Cycle> {
            Some(self.now) // "an event is due right now" — forever
        }
        fn skip_to(&mut self, target: Cycle) {
            if target > self.now {
                self.now = target;
            }
        }
    }

    #[test]
    fn watchdog_converts_silent_spin_into_structured_stall() {
        let mut engine = SimLoop::with_watchdog(64);
        let mut done: Vec<()> = Vec::new();
        let mut liar = Liar {
            now: Cycle::new(17),
            ticked: 0,
        };
        let out = engine.run_while(&mut liar, &mut done, Cycle::new(1_000_000), |_| true);
        let RunOutcome::Stalled(report) = out else {
            panic!("expected Stalled, got {out:?}");
        };
        assert_eq!(
            report.at,
            Cycle::new(17),
            "stall pinned to the frozen cycle"
        );
        assert_eq!(report.stuck_steps, 64);
        assert_eq!(report.bound, 64);
        assert!(
            liar.ticked <= 64,
            "watchdog fired within the bound, not after {} ticks",
            liar.ticked
        );
        // Structured error propagation: the report is a std::error::Error.
        let err = out.into_result().expect_err("stall is an error");
        assert!(err.to_string().contains("stalled at cycle 17"));
    }

    /// A component whose `next_event_at()` falls *behind* its clock — the
    /// contract violation the old `debug_assert!` only caught in debug
    /// builds.
    #[derive(Debug)]
    struct TimeTraveler {
        now: Cycle,
    }

    impl Clocked for TimeTraveler {
        type Completion = ();
        fn now(&self) -> Cycle {
            self.now
        }
        fn tick_into(&mut self, _sink: &mut dyn CompletionSink<()>) {
            self.now += 1;
        }
        fn next_event_at(&self) -> Option<Cycle> {
            // Promises an event 10 cycles in the past, forever.
            Some(Cycle::new(self.now.as_u64().saturating_sub(10)))
        }
        fn skip_to(&mut self, target: Cycle) {
            if target > self.now {
                self.now = target;
            }
        }
    }

    #[test]
    fn time_traveling_component_stalls_in_release_builds_too() {
        // This check must not depend on debug_assert!: it is compiled
        // unconditionally, so the test is meaningful under --release.
        let mut engine = SimLoop::new();
        let mut done: Vec<()> = Vec::new();
        let mut tt = TimeTraveler {
            now: Cycle::new(50),
        };
        let out = engine.step(&mut tt, &mut done, Cycle::new(1_000));
        let StepOutcome::Stalled(report) = out else {
            panic!("expected Stalled, got {out:?}");
        };
        assert_eq!(
            report.kind,
            StallKind::TimeTravel {
                event: Cycle::new(40)
            }
        );
        assert_eq!(report.at, Cycle::new(50));
        assert_eq!(report.stuck_steps, 0);
        assert!(report.to_string().contains("time-traveled at cycle 50"));
        assert!(report.to_string().contains("returned 40"));
        // Nothing was executed or skipped: the violation is detected
        // before the engine touches the component.
        assert_eq!(engine.stats().events_processed, 0);
        assert_eq!(engine.stats().skips, 0);
        // The run-level driver surfaces it the same way.
        let out = engine.run_while(&mut tt, &mut done, Cycle::new(1_000), |_| true);
        assert!(matches!(
            out,
            RunOutcome::Stalled(r) if matches!(r.kind, StallKind::TimeTravel { .. })
        ));
    }

    #[test]
    fn watchdog_fires_with_default_bound() {
        let mut engine = SimLoop::new();
        let mut done: Vec<()> = Vec::new();
        let mut liar = Liar {
            now: Cycle::ZERO,
            ticked: 0,
        };
        let out = engine.run_while(&mut liar, &mut done, Cycle::new(u64::MAX), |_| true);
        assert!(matches!(out, RunOutcome::Stalled(r) if r.bound == DEFAULT_WATCHDOG_BOUND));
    }

    #[test]
    fn watchdog_never_trips_on_healthy_components() {
        // A tight watchdog bound against a long healthy run: the streak
        // resets on every tick, so the run drains normally.
        let mut engine = SimLoop::with_watchdog(2);
        let mut done: Vec<Cycle> = Vec::new();
        let mut pulse = Pulse::new(3, 500);
        let out = engine.run_while(&mut pulse, &mut done, Cycle::new(100_000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(done.len(), 500);
    }

    #[test]
    fn watchdog_zero_disables_the_bound() {
        let mut engine = SimLoop::with_watchdog(0);
        let mut done: Vec<()> = Vec::new();
        let mut liar = Liar {
            now: Cycle::ZERO,
            ticked: 0,
        };
        // Bounded by the predicate instead; 100k frozen ticks draw no stall.
        let out = engine.run_while(&mut liar, &mut done, Cycle::new(u64::MAX), |l| {
            l.ticked < 100_000
        });
        assert_eq!(out, RunOutcome::Stopped);
    }

    #[test]
    fn stats_merge_and_display() {
        let mut a = EngineStats {
            events_processed: 1,
            cycles_skipped: 10,
            skips: 2,
            sink_high_water: 3,
        };
        let b = EngineStats {
            events_processed: 4,
            cycles_skipped: 5,
            skips: 1,
            sink_high_water: 7,
        };
        a.merge(&b);
        assert_eq!(a.events_processed, 5);
        assert_eq!(a.cycles_skipped, 15);
        assert_eq!(a.sink_high_water, 7);
        assert!(a.to_string().contains("5 events"));
    }

    #[test]
    fn tracing_records_skip_instants() {
        let mut engine = SimLoop::new();
        engine.enable_tracing(64);
        let mut done: Vec<Cycle> = Vec::new();
        let mut pulse = Pulse::new(100, 3);
        engine.tracer_mut().begin("run", 0);
        let out = engine.run_while(&mut pulse, &mut done, Cycle::new(10_000), |_| true);
        assert_eq!(out, RunOutcome::Drained);
        let now = pulse.now().as_u64();
        engine.tracer_mut().end(now);
        let trace = engine.take_trace();
        assert_eq!(trace.track, "engine");
        let skip = trace
            .instants
            .iter()
            .find(|i| i.name == "engine.skip")
            .expect("skip instants recorded");
        assert_eq!(skip.count, engine.stats().skips);
        assert_eq!(skip.sum as u64, engine.stats().cycles_skipped);
        assert_eq!(trace.spans[0].phase, "run");
        // Disabled engines record nothing (take() drains, so retake is empty).
        assert!(engine.take_trace().instants.is_empty());
    }

    #[test]
    fn stats_export_through_telemetry() {
        let stats = EngineStats {
            events_processed: 11,
            cycles_skipped: 22,
            skips: 3,
            sink_high_water: 4,
        };
        let mut reg = ia_telemetry::Registry::new();
        reg.collect("engine", &stats);
        let snap = reg.snapshot(0);
        assert_eq!(snap.counter("engine.events_processed"), Some(11));
        assert_eq!(snap.counter("engine.cycles_skipped"), Some(22));
        assert_eq!(snap.counter("engine.sink_high_water"), Some(4));
    }
}
