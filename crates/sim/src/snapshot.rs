//! Deterministic snapshot/restore for warm-forked sweeps.
//!
//! Parameter sweeps share an expensive prefix: build the component,
//! decode or synthesize the trace, warm caches and predictors — and
//! only then diverge per configuration. [`SnapshotState`] lets a sweep
//! pay the prefix once: run the common warm-up, [`snapshot`] the full
//! simulation state, then *fork* one restored copy per configuration.
//!
//! The contract is **bit-identity**: a component restored from a
//! snapshot must, when driven with the same inputs, produce exactly the
//! byte-for-byte statistics and completions as a freshly built component
//! driven through the warm-up and then those inputs. That means the
//! snapshot must capture *everything* observable — clocks, queues,
//! in-flight operations, RNG streams, telemetry counters — or exclude a
//! piece of state only when it provably cannot affect any output.
//!
//! [`snapshot`]: SnapshotState::snapshot

/// State that can be deterministically saved and restored.
///
/// Implementations typically set `Snapshot = Self` and derive the save
/// via `Clone`; the associated type exists so large components can
/// snapshot a compact owned subset instead of their whole allocation.
pub trait SnapshotState {
    /// The owned, cloneable saved state.
    type Snapshot: Clone;

    /// Captures the complete observable state at the current cycle.
    fn snapshot(&self) -> Self::Snapshot;

    /// Overwrites `self` with a previously captured state. After
    /// `restore`, `self` must be indistinguishable (in every observable
    /// output) from the component that produced the snapshot.
    fn restore(&mut self, saved: &Self::Snapshot);

    /// Convenience: a fresh component forked from `self`'s current
    /// state. Equivalent to snapshot-then-restore onto a clone.
    #[must_use]
    fn fork(&self) -> Self
    where
        Self: Sized + Clone,
    {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Counter {
        ticks: u64,
        sum: u64,
    }

    impl SnapshotState for Counter {
        type Snapshot = Counter;

        fn snapshot(&self) -> Counter {
            self.clone()
        }

        fn restore(&mut self, saved: &Counter) {
            *self = saved.clone();
        }
    }

    #[test]
    fn restore_rewinds_to_the_saved_point() {
        let mut c = Counter { ticks: 0, sum: 0 };
        for i in 0..10 {
            c.ticks += 1;
            c.sum += i;
        }
        let save = c.snapshot();
        let at_save = c.clone();

        // Diverge, then rewind.
        c.ticks += 99;
        c.sum = 0;
        c.restore(&save);
        assert_eq!(c, at_save);

        // A fork and the original, driven identically, stay identical.
        let mut fork = c.fork();
        for i in 0..5 {
            c.ticks += 1;
            c.sum += i;
            fork.ticks += 1;
            fork.sum += i;
        }
        assert_eq!(c, fork);
    }
}
