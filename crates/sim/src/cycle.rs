//! Simulated time.
//!
//! [`Cycle`] lives here, at the bottom of the workspace dependency graph,
//! so every clocked component — DRAM banks, controllers, mesh routers —
//! shares one time domain and the engine can reason about "the next event"
//! across all of them.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles.
///
/// `Cycle` is ordered and supports saturating arithmetic with plain cycle
/// counts (`u64`), which is how timing constraints are expressed.
///
/// # Examples
///
/// ```
/// use ia_sim::Cycle;
/// let t = Cycle::ZERO + 15;
/// assert_eq!(t.as_u64(), 15);
/// assert!(t < t + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The origin of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two timestamps.
    #[must_use]
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the number of cycles from `earlier` to `self`, or zero if
    /// `earlier` is in the future.
    #[must_use]
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts this timestamp to nanoseconds given a clock period.
    #[must_use]
    #[inline]
    pub fn to_ns(self, tck_ns: f64) -> f64 {
        self.0 as f64 * tck_ns
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Distance in cycles. Saturates at zero rather than panicking so that
    /// "how long until" queries are total.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_is_ordered_and_saturating() {
        let a = Cycle::new(10);
        let b = a + 5;
        assert_eq!(b.as_u64(), 15);
        assert_eq!(b - a, 5);
        assert_eq!(a - b, 0, "cycle subtraction saturates");
        assert_eq!(a.max(b), b);
        assert_eq!(Cycle::from(7u64).as_u64(), 7);
    }

    #[test]
    fn cycle_to_ns_uses_clock_period() {
        let t = Cycle::new(1000);
        let ns = t.to_ns(1.25);
        assert!((ns - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Cycle::new(1)), "1cy");
    }
}
