// path: crates/cache/src/fake_metrics.rs
// M002: registers the same metric name as m002_peer.rs (crate `dram`).
// The driver lints both files together; the first site in path order
// (`cache` here) owns the name, so the collision lands on the peer.
fn export(reg: &mut Registry) {
    reg.counter("shared.reads", 1);
}
