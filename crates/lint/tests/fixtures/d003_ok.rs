// path: crates/bench/src/fake_env.rs
// OK: CLI arguments feed the shared flag parser; only env *reads* are
// environment-dependent.
fn configure() -> Vec<String> {
    std::env::args().skip(1).collect()
}
