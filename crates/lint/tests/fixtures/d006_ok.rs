// path: crates/par/src/fake_diag.rs
// D006 negative: the same wall-clock read, but it exits only through
// `runtime_metric` — the designed stderr-only diagnostics channel, which
// never enters report bytes and is not a D006 sink.
pub fn emit(reg: &mut Registry) {
    reg.runtime_metric("pool.wall_ns", sampled());
}

fn sampled() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
