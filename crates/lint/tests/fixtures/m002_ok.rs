// path: crates/dram/src/fake_metrics.rs
// OK: re-registering a name within the same crate is not a collision
// (sections legitimately export from several call sites).
fn export(reg: &mut Registry) {
    reg.counter("dram.reads", 1);
    reg.counter("dram.reads", 1);
}
