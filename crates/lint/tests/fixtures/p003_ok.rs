// path: crates/bench/src/exp90_fake.rs
// P003 negative: the same unwrap, but nothing on a report path calls it.
// The site still carries its local P001 — only the reachability finding
// must be absent.
pub fn report(_quick: bool) -> Report {
    Report::default()
}

fn island() -> Row {
    TABLE.get(0).unwrap()
}
