// path: crates/bench/src/exp90_fake.rs
// P003: a panic site reachable from an experiment report entry point.
// The unwrap itself also carries P001 — the pair demonstrates
// reachability on top of the local lint, not instead of it.
pub fn report(quick: bool) -> Report {
    assemble(quick)
}

fn assemble(_quick: bool) -> Report {
    TABLE.get(0).unwrap()
}
