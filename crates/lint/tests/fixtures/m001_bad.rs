// path: crates/dram/src/fake_metrics.rs
// M001: metric names off the crate.section.name convention.
fn export(reg: &mut Registry) {
    reg.counter("reads", 1);
    reg.gauge("Dram.Util", 0.5);
    reg.histogram("dram..latency", 9);
}
