// path: crates/dram/src/fake_metrics.rs
// OK: dot-separated lowercase paths with >= 2 segments.
fn export(reg: &mut Registry) {
    reg.counter("dram.reads", 1);
    reg.gauge("dram.bank.util", 0.5);
    reg.histogram("dram.latency_cycles", 9);
}
