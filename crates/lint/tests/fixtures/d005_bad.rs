// path: crates/noc/src/fake_route.rs
// D005: allocations inside a `// lint: hot-path` function.
// lint: hot-path
fn route_one(xs: &[u32]) -> Vec<u32> {
    let mut grown: Vec<u32> = Vec::new();
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    grown.extend_from_slice(&xs.to_vec());
    grown.extend_from_slice(&doubled.clone());
    grown
}
