// path: crates/fakecrate/src/lib.rs
// S001: crate root without #![forbid(unsafe_code)].
#![warn(missing_docs)]

pub fn live() {}
