// path: crates/bench/src/fake_report.rs
// D001: hash-ordered collections in a report path.
use std::collections::{BTreeMap, HashMap, HashSet};

fn build_rows() -> Vec<(String, u64)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    counts.entry("reads".to_owned()).or_insert(1);
    let seen: HashSet<u64> = HashSet::new();
    let _ = seen;
    counts.into_iter().collect()
}
