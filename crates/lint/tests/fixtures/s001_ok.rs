// path: crates/fakecrate/src/lib.rs
// OK: the root forbids unsafe code.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn live() {}
