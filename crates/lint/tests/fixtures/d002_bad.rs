// path: crates/dram/src/fake_timing.rs
// D002: wall-clock reads in simulator code.
fn measure() -> u64 {
    let start = std::time::Instant::now();
    let _epoch = std::time::SystemTime::now();
    start.elapsed().as_nanos() as u64
}
