// path: crates/workloads/src/fake_gen.rs
// D004: RNG construction without an explicit seed.
fn make_rngs() {
    let _a = rand::thread_rng();
    let _b = SmallRng::from_entropy();
}
