// path: crates/tbl/src/fake_pick.rs
// Three-crate call-graph fixture, crate 3 of 3: the panic site whose
// P003 witness must spell out the whole cross-crate chain.
pub fn pick(i: usize) -> Report {
    ROWS.get(i).unwrap()
}
