// path: crates/dram/src/fake_refresh.rs
// W001 negative: the waiver suppresses a live P001 finding, so it is
// used, not dead.
fn decay(stamps: &[u64]) -> u64 {
    // lint: allow(P001, the caller guarantees a non-empty stamp list)
    *stamps.iter().min().unwrap()
}
