// path: crates/cache/src/fake_lru.rs
// P001: unwrap/expect in live library code.
fn victim(stamps: &[u64]) -> usize {
    let min = stamps.iter().min().unwrap();
    stamps.iter().position(|s| s == min).expect("present")
}
