// path: crates/bench/src/fake_report.rs
// OK: sorted collections in a report path; the word HashMap may appear
// in strings, comments, and test code without tripping D001.
use std::collections::BTreeMap;

fn build_rows() -> Vec<(String, u64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    counts.entry("reads".to_owned()).or_insert(1);
    let _doc = "HashMap iteration order never reaches this string";
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_maps_are_fine_in_tests() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
