// path: crates/sched/src/fake_stage.rs
// Three-crate call-graph fixture, crate 2 of 3: the middle hop, with an
// intra-file edge (stage -> finalize) before the next crate boundary.
pub fn stage(quick: bool) -> Report {
    let row = if quick { 0 } else { 1 };
    finalize(row)
}

fn finalize(row: usize) -> Report {
    ia_tbl::pick(row)
}
