// path: crates/dram/src/fake_refresh.rs
// W001: a waiver that silences nothing — the unwrap it once covered was
// replaced by saturating math, so the declaration is dead.
fn decay(x: u64) -> u64 {
    // lint: allow(P001, stale - the unwrap below was replaced by saturating math)
    x.saturating_sub(1)
}
