// path: crates/noc/src/fake_mesh.rs
// H002: an allocation in the call closure of a hot-path function. The
// hot body itself is clean (that would be D005); the callee allocates.
// lint: hot-path
fn tick() {
    route_step();
}

fn route_step() -> Vec<u32> {
    Vec::new()
}
