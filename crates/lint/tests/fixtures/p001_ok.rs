// path: crates/cache/src/fake_lru.rs
// OK: errors propagate; a justified waiver covers a provable invariant;
// tests may unwrap freely.
fn victim(stamps: &[u64]) -> Option<usize> {
    let min = stamps.iter().min()?;
    // lint: allow(P001, position of the min we just found always exists)
    let at = stamps.iter().position(|s| s == min).expect("present");
    Some(at)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        super::victim(&[3, 1, 2]).unwrap();
    }
}
