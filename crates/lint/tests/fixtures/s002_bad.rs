// path: crates/bench/src/bin/exp99_fake.rs
// S002: experiment binary with its own ad-hoc CLI.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        ia_bench::exp99_fake::run(true);
    }
}
