// path: crates/dram/src/fake_metrics.rs
// Owner site for the M002 collision exercised by m002_bad.rs.
fn export(reg: &mut Registry) {
    reg.counter("shared.reads", 1);
}
