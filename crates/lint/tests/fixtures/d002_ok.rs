// path: crates/par/src/fake_pool.rs
// OK: ia-par measures wall-clock worker time by design (runtime
// diagnostics only, excluded from every report) and is exempt.
fn busy_time() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
