// path: crates/noc/src/fake_router.rs
// P002: panic-family macros in live library code.
fn route(port: usize) -> usize {
    if port > 4 {
        panic!("bad port {port}");
    }
    todo!()
}
