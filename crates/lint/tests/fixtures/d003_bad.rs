// path: crates/bench/src/fake_env.rs
// D003: environment-dependent inputs.
use std::collections::hash_map::RandomState;

fn configure() -> Option<String> {
    let _state = RandomState::new();
    std::env::var("IA_THREADS").ok()
}
