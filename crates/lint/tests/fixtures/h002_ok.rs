// path: crates/noc/src/fake_mesh.rs
// H002 negative: the hot closure is allocation-free; the allocating
// function exists but is never called from the hot path.
// lint: hot-path
fn tick() {
    route_step();
}

fn route_step() -> u32 {
    0
}

fn cold_rebuild() -> Vec<u32> {
    Vec::new()
}
