// path: crates/noc/src/fake_router.rs
// OK: errors are returned; #[test] fns may panic; the word panic! in a
// string or comment is not a macro invocation.
fn route(port: usize) -> Result<usize, String> {
    if port > 4 {
        return Err(format!("bad port {port} — would panic!"));
    }
    Ok(port)
}

#[test]
fn asserts_are_fine() {
    assert!(route(1).is_ok());
    if route(9).is_ok() {
        panic!("expected an error");
    }
}
