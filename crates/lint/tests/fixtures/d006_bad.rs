// path: crates/par/src/fake_diag.rs
// D006: a wall-clock read flowing into a metric writer through the call
// graph. The path-based D002 exemption for ia-par does not help here —
// once the value can reach report bytes, the read is a determinism leak.
pub fn emit(reg: &mut Registry) {
    reg.counter("pool.depth", sampled());
}

fn sampled() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
