// path: crates/bench/src/bin/exp99_fake.rs
// OK: the binary routes through the shared CLI.
fn main() {
    ia_bench::report::cli(ia_bench::exp99_fake::run, ia_bench::exp99_fake::report);
}
