// path: crates/noc/src/fake_route.rs
// OK: the hot path reuses a caller-owned scratch buffer; the cold
// helper below allocates freely because it carries no marker.
// lint: hot-path
fn route_one(xs: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.extend_from_slice(xs);
}

fn build_table(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}
