// path: crates/workloads/src/fake_gen.rs
// OK: explicitly seeded construction; defining a fn named from_entropy
// (as the in-tree rand shim does) is not a call site.
fn make_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
