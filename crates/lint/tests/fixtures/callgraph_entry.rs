// path: crates/bench/src/exp91_fake.rs
// Three-crate call-graph fixture, crate 1 of 3: the report entry point.
// The chain is report -> stage -> finalize -> pick, crossing two crate
// boundaries before reaching the panic site in callgraph_deep.rs.
pub fn report(quick: bool) -> Report {
    ia_sched::stage(quick)
}
