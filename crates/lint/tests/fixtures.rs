//! Fixture-corpus tests: every LINT-ID has a positive (`_bad`) and a
//! negative (`_ok`) fixture under `tests/fixtures/`, linted *as if* it
//! lived at the workspace path named by its `// path:` header.

use ia_lint::lints::{check_metric_collisions, MetricSite};
use ia_lint::{analyze_source, analyze_sources, Finding, CATALOG};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Loads a fixture, returning its pretend workspace path and source.
fn load(name: &str) -> (String, String) {
    let src = std::fs::read_to_string(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    let header = src.lines().next().unwrap_or_default();
    let path = header
        .strip_prefix("// path: ")
        .unwrap_or_else(|| panic!("fixture {name} must start with `// path: <path>`"))
        .trim()
        .to_owned();
    (path, src)
}

/// Lints one fixture, returning the IDs of its findings (sorted, deduped).
fn lint_ids(name: &str, metrics: &mut Vec<MetricSite>) -> Vec<&'static str> {
    let (path, src) = load(name);
    let mut ids: Vec<&'static str> = analyze_source(&path, &src, metrics)
        .into_iter()
        .map(|f| f.id)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// IDs exercised by plain single-file fixture pairs (M002 is cross-file
/// and has its own test below).
const PAIRED_IDS: &[&str] = &[
    "D001", "D002", "D003", "D004", "D005", "M001", "P001", "P002", "S001", "S002",
];

/// IDs whose fixtures need the full pipeline — call graph plus waiver
/// accounting — so their pairs run through `analyze_sources` instead of
/// the per-file `analyze_source`.
const GRAPH_PAIRED_IDS: &[&str] = &["D006", "H002", "P003", "W001"];

#[test]
fn every_catalog_id_has_fixture_coverage() {
    for l in CATALOG {
        assert!(
            PAIRED_IDS.contains(&l.id) || GRAPH_PAIRED_IDS.contains(&l.id) || l.id == "M002",
            "lint {} has no fixture coverage — add {}_bad.rs / {}_ok.rs",
            l.id,
            l.id.to_lowercase(),
            l.id.to_lowercase()
        );
    }
}

#[test]
fn bad_fixtures_trigger_exactly_their_lint() {
    for id in PAIRED_IDS {
        let mut metrics = Vec::new();
        let ids = lint_ids(&format!("{}_bad.rs", id.to_lowercase()), &mut metrics);
        assert_eq!(
            ids,
            vec![*id],
            "{id}_bad.rs must produce {id} findings and nothing else"
        );
    }
}

#[test]
fn ok_fixtures_are_clean() {
    for id in PAIRED_IDS {
        let mut metrics = Vec::new();
        let name = format!("{}_ok.rs", id.to_lowercase());
        let ids = lint_ids(&name, &mut metrics);
        assert!(ids.is_empty(), "{name} must be clean, got {ids:?}");
    }
}

/// Runs the full pipeline over a set of fixtures, returning all findings.
fn pipeline(names: &[&str]) -> Vec<Finding> {
    let loaded: Vec<(String, String)> = names.iter().map(|n| load(n)).collect();
    let refs: Vec<(&str, &str)> = loaded
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    analyze_sources(&refs)
}

/// Findings of one fixture under the full pipeline, as sorted deduped IDs.
fn pipeline_ids(name: &str) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = pipeline(&[name]).into_iter().map(|f| f.id).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[test]
fn graph_bad_fixtures_trigger_their_lint() {
    // p003_bad keeps the P001 the panic site itself carries: the pair
    // demonstrates reachability on top of the local lint, and waiving
    // the P001 would (by design) silence P003 too.
    let expected: &[(&str, &[&str])] = &[
        ("d006_bad.rs", &["D006"]),
        ("h002_bad.rs", &["H002"]),
        ("p003_bad.rs", &["P001", "P003"]),
        ("w001_bad.rs", &["W001"]),
    ];
    for (name, want) in expected {
        let ids = pipeline_ids(name);
        assert_eq!(&ids, want, "{name} must produce exactly {want:?}");
    }
}

#[test]
fn graph_ok_fixtures_carry_no_graph_findings() {
    // p003_ok deliberately keeps a live (unreachable) unwrap, so its
    // local P001 remains — only the reachability finding must be gone.
    let expected: &[(&str, &[&str])] = &[
        ("d006_ok.rs", &[]),
        ("h002_ok.rs", &[]),
        ("p003_ok.rs", &["P001"]),
        ("w001_ok.rs", &[]),
    ];
    for (name, want) in expected {
        let ids = pipeline_ids(name);
        assert_eq!(&ids, want, "{name} must produce exactly {want:?}");
    }
}

#[test]
fn cross_crate_call_graph_resolves_a_three_crate_witness() {
    let files = [
        "callgraph_entry.rs",
        "callgraph_mid.rs",
        "callgraph_deep.rs",
    ];
    let findings = pipeline(&files);
    let p003: Vec<&Finding> = findings.iter().filter(|f| f.id == "P003").collect();
    assert_eq!(p003.len(), 1, "one reachable panic site: {findings:?}");
    assert_eq!(p003[0].file, "crates/tbl/src/fake_pick.rs");
    assert_eq!(
        p003[0].witness,
        [
            "bench::exp91_fake::report",
            "sched::fake_stage::stage",
            "sched::fake_stage::finalize",
            "tbl::fake_pick::pick",
        ],
        "the witness spells out the whole cross-crate chain"
    );
    // The chain is shortest-path deterministic: a second run over the
    // same sources reproduces every finding byte for byte.
    assert_eq!(findings, pipeline(&files));
}

#[test]
fn m002_cross_crate_collision_fires_and_same_crate_does_not() {
    // Two crates registering the same name: the non-owner site is flagged.
    let mut metrics = Vec::new();
    assert!(lint_ids("m002_peer.rs", &mut metrics).is_empty());
    assert!(lint_ids("m002_bad.rs", &mut metrics).is_empty());
    let collisions = check_metric_collisions(&metrics);
    assert_eq!(collisions.len(), 1);
    assert_eq!(collisions[0].id, "M002");
    // The first site in path order (`cache` < `dram`) owns the name;
    // the other crate's site is the finding.
    assert_eq!(collisions[0].file, "crates/dram/src/fake_metrics.rs");
    assert!(collisions[0].message.contains("crate `cache`"));

    // The same name twice within one crate is not a collision.
    let mut metrics = Vec::new();
    assert!(lint_ids("m002_ok.rs", &mut metrics).is_empty());
    assert!(check_metric_collisions(&metrics).is_empty());
}

#[test]
fn waiver_suppresses_each_lint_in_bad_fixtures() {
    // Appending a trailing waiver to every offending line silences the
    // fixture entirely — proving `lint: allow` works for every ID.
    for id in PAIRED_IDS {
        let (path, src) = load(&format!("{}_bad.rs", id.to_lowercase()));
        let mut metrics = Vec::new();
        let offending: Vec<u32> = analyze_source(&path, &src, &mut metrics)
            .iter()
            .map(|f| f.line)
            .collect();
        let waived: String = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if offending.contains(&(i as u32 + 1)) {
                    format!("{l} // lint: allow({id}, fixture waiver)\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let mut metrics = Vec::new();
        let left = analyze_source(&path, &waived, &mut metrics);
        assert!(
            left.is_empty(),
            "waivers must silence {id}_bad.rs, got {left:?}"
        );
    }
}
