//! Property tests for the item parser's two structural invariants (see
//! `src/parser.rs` module docs): on **any** input — well-formed Rust,
//! truncated Rust, or outright garbage — parsing never panics, and the
//! resulting item spans nest (children strictly inside their parent's
//! body, siblings disjoint and ordered).

use ia_lint::lexer::{tokenize, Tok, TokKind};
use ia_lint::parser::{check_nesting, parse_items};
use proptest::prelude::*;

/// Rust-ish fragments, deliberately including unbalanced delimiters,
/// orphaned keywords, and half-finished generics: random compositions
/// cover the recovery paths a corpus of valid files never reaches.
const FRAGMENTS: &[&str] = &[
    "fn", "impl", "mod", "use", "struct", "trait", "enum", "pub", "for", "where", "dyn", "crate",
    "step", "Engine", "Self", "T", "r#type", "'a", "'c'", "\"str\"", "123", "0x1f", "<", ">", ">>",
    "(", ")", "{", "}", "[", "]", ";", ",", ":", "::", "->", "#", "!", "=", ".", "&",
];

/// Builds a source string from fragment indices, then tokenizes and
/// strips comments — the exact shape [`parse_items`] is fed by the scan
/// pipeline.
fn code_from(indices: &[usize]) -> Vec<Tok> {
    let src: Vec<&str> = indices.iter().map(|&i| FRAGMENTS[i]).collect();
    tokenize(&src.join(" "))
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_and_spans_nest_on_rust_like_streams(
        idx in prop::collection::vec(0usize..FRAGMENTS.len(), 0..120),
    ) {
        let code = code_from(&idx);
        let items = parse_items(&code);
        prop_assert_eq!(check_nesting(&items, 0..code.len()), None);
    }

    #[test]
    fn parser_never_panics_and_spans_nest_on_arbitrary_text(
        bytes in prop::collection::vec(any::<u8>(), 0..240),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let code: Vec<Tok> = tokenize(&src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let items = parse_items(&code);
        prop_assert_eq!(check_nesting(&items, 0..code.len()), None);
    }
}
