//! The gate, end to end: ia-lint runs clean on its own workspace (with
//! the checked-in baseline), fails loudly on injected violations, and
//! reports stale baseline entries instead of silently keeping them.

use ia_lint::{analyze, Baseline};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ia-lint"))
        .args(args)
        .output()
        .expect("spawn ia-lint")
}

#[test]
fn workspace_is_clean_under_the_checked_in_baseline() {
    let root = workspace_root();
    let analysis = analyze(&root).expect("scan workspace");
    let text = std::fs::read_to_string(root.join("lint.baseline")).expect("baseline exists");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let gated = baseline.apply(&analysis.findings);
    assert!(
        gated.is_clean(),
        "workspace gate must be green: new={:?} stale={:?}",
        gated.new,
        gated.stale
    );
    // The ratchet only grandfathers the panic-policy lints: determinism
    // (D), metric (M), safety (S), and waiver (W) findings are never
    // baselined.
    for id in baseline.section_ids() {
        assert!(
            id.starts_with('P'),
            "baseline may only carry P-series sections, found `[{id}]`"
        );
    }
}

#[test]
fn ia_lint_runs_clean_on_its_own_source() {
    let analysis = analyze(&workspace_root()).expect("scan workspace");
    let own: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/lint/"))
        .collect();
    assert!(own.is_empty(), "ia-lint must lint itself clean: {own:?}");
}

/// Builds a minimal fake workspace containing one crate root with the
/// given source, returning its path.
fn mini_workspace(tag: &str, lib_rs: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("ws_{tag}"));
    let src = root.join("crates/fake/src");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(src.join("lib.rs"), lib_rs).expect("write lib.rs");
    root
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\npub fn f() -> Option<u32> { Some(1) }\n";
const DIRTY_LIB: &str = "#![forbid(unsafe_code)]\npub fn f() -> u32 { g().unwrap() }\n";

#[test]
fn injected_violation_fails_the_gate_with_file_line_id() {
    let root = mini_workspace("inject", DIRTY_LIB);
    let out = run_lint(&["--check", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        stdout.contains("crates/fake/src/lib.rs:2:25: P001:"),
        "must list file:line:col: LINT-ID, got:\n{stdout}"
    );

    let clean = mini_workspace("clean", CLEAN_LIB);
    let out = run_lint(&["--check", "--root", clean.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");
}

#[test]
fn baseline_ratchet_round_trips_and_reports_stale_entries() {
    let root = mini_workspace("ratchet", DIRTY_LIB);
    let rootarg = root.to_str().expect("utf-8 path");

    // Grandfather the finding: the gate goes green.
    let out = run_lint(&["--write-baseline", "--root", rootarg]);
    assert_eq!(out.status.code(), Some(0));
    let out = run_lint(&["--check", "--root", rootarg]);
    assert_eq!(out.status.code(), Some(0), "baselined finding must pass");

    // Burn the finding down: the stale entry is reported, not kept.
    std::fs::write(root.join("crates/fake/src/lib.rs"), CLEAN_LIB).expect("write");
    let out = run_lint(&["--check", "--root", rootarg]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale entries must fail the gate"
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        stdout.contains("stale baseline entry") && stdout.contains("--write-baseline"),
        "stale report must say how to ratchet, got:\n{stdout}"
    );

    // Regenerating locks in the lower count.
    let out = run_lint(&["--write-baseline", "--root", rootarg]);
    assert_eq!(out.status.code(), Some(0));
    let out = run_lint(&["--check", "--root", rootarg]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn json_output_is_byte_stable_across_runs() {
    let root = mini_workspace("json", DIRTY_LIB);
    let rootarg = root.to_str().expect("utf-8 path");
    let a = run_lint(&["--json", "--root", rootarg]);
    let b = run_lint(&["--json", "--root", rootarg]);
    assert_eq!(a.status.code(), Some(1));
    assert_eq!(a.stdout, b.stdout, "--json must be byte-stable for diffing");
    let doc = String::from_utf8(a.stdout).expect("utf-8");
    assert!(doc.starts_with("{\"version\":2"));
    assert!(doc.contains("\"id\":\"P001\""));
}

/// A three-crate fake workspace whose report entry reaches a panic site
/// two crate-hops away: the P003 witness chain must come out identical —
/// byte for byte — on every run, which is what makes `--json` diffable
/// in CI.
#[test]
fn p003_witness_chains_are_byte_stable_across_runs() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("ws_witness");
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in [
        (
            "crates/bench/src/exp01_demo.rs",
            "pub fn report(quick: bool) -> Report { ia_mid::stage(quick) }\n",
        ),
        (
            "crates/mid/src/util.rs",
            "pub fn stage(quick: bool) -> Report { ia_deep::pick(quick) }\n",
        ),
        (
            "crates/deep/src/core.rs",
            "pub fn pick(quick: bool) -> Report { ROWS.get(0).unwrap() }\n",
        ),
    ] {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(path, src).expect("write source");
    }
    let rootarg = root.to_str().expect("utf-8 path");
    let a = run_lint(&["--json", "--root", rootarg]);
    let b = run_lint(&["--json", "--root", rootarg]);
    assert_eq!(a.status.code(), Some(1), "the unwrap must fail the gate");
    assert_eq!(a.stdout, b.stdout, "witness chains must be byte-stable");
    let doc = String::from_utf8(a.stdout).expect("utf-8");
    assert!(
        doc.contains(
            "\"witness\":[\"bench::exp01_demo::report\",\"mid::util::stage\",\"deep::core::pick\"]"
        ),
        "the P003 witness must spell out the cross-crate chain, got:\n{doc}"
    );
}

#[test]
fn list_prints_the_full_catalog() {
    let out = run_lint(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    for l in ia_lint::CATALOG {
        assert!(stdout.contains(l.id), "--list must mention {}", l.id);
    }
}

#[test]
fn bad_root_and_bad_flags_exit_2() {
    let out = run_lint(&["--check", "--root", "/nonexistent-ia-lint"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
