//! Item-level recursive-descent parser over the lexer's token stream.
//!
//! Just enough structure for interprocedural analysis: `fn` / `impl` /
//! `mod` / `trait` / `use` items with spans and body token ranges — no
//! expression parsing, no type checking. The parser **never fails**: on
//! a token it cannot place it advances one token and keeps going, so
//! arbitrary (even non-Rust) token streams produce a best-effort item
//! tree. Two invariants hold on any input and are property-tested in
//! `tests/parser_props.rs`:
//!
//! 1. no panics, and
//! 2. item spans nest: a child's token range sits strictly inside its
//!    parent's body range, and sibling ranges are disjoint and ordered.

use crate::lexer::Tok;
use std::ops::Range;

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(..) { .. }` (or a bodiless trait-method signature).
    Fn,
    /// `impl [Trait for] Type { .. }` — `name` is the *type*.
    Impl,
    /// `mod name { .. }` or `mod name;`.
    Mod,
    /// `trait Name { .. }`.
    Trait,
    /// `struct Name { .. }` — the body (when braced) holds the field
    /// list, which the call graph mines for receiver types.
    Struct,
    /// `use path::to::thing;` — `name` is the joined path text.
    Use,
}

/// One parsed item with its position and token extent.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name: the fn/mod/trait/struct name, the impl'd type's last
    /// path segment, or the `use` path. `?` when it could not be
    /// determined.
    pub name: String,
    /// For `impl Trait for Type` items, the trait's last path segment.
    pub of_trait: Option<String>,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// 1-based column of the introducing keyword.
    pub col: u32,
    /// Token extent of the whole item (keyword through closing brace or
    /// semicolon), as indices into the code-token slice.
    pub toks: Range<usize>,
    /// Tokens strictly inside the item's braces, when it has a body.
    pub body: Option<Range<usize>>,
    /// Nested items (module contents, impl/trait methods).
    pub children: Vec<Item>,
}

/// Parses the top-level items of one file's code tokens (comments
/// already stripped, as in [`crate::context::FileContext::code`]).
#[must_use]
pub fn parse_items(code: &[Tok]) -> Vec<Item> {
    let mut p = Parser { code };
    p.items(0, code.len())
}

struct Parser<'a> {
    code: &'a [Tok],
}

impl Parser<'_> {
    /// Parses items in `[i, end)`; consumes every token in the range.
    fn items(&mut self, mut i: usize, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while i < end {
            match self.item(i, end) {
                Some(item) => {
                    i = item.toks.end;
                    out.push(item);
                }
                None => i += 1,
            }
        }
        out
    }

    /// Tries to parse one item starting at or after `i` (skipping
    /// attributes and visibility). Returns `None` when the token at `i`
    /// does not introduce an item.
    fn item(&mut self, i: usize, end: usize) -> Option<Item> {
        let start = i;
        let mut j = i;
        // Attributes (`#[..]` / `#![..]`) and visibility (`pub`,
        // `pub(crate)`) prefix an item but never *are* one.
        loop {
            if j < end && self.code[j].is_punct('#') {
                let mut k = j + 1;
                if k < end && self.code[k].is_punct('!') {
                    k += 1;
                }
                if k < end && self.code[k].is_punct('[') {
                    j = self.skip_delimited(k, end, '[', ']');
                    continue;
                }
                return None;
            }
            if j < end && self.code[j].is_ident("pub") {
                j += 1;
                if j < end && self.code[j].is_punct('(') {
                    j = self.skip_delimited(j, end, '(', ')');
                }
                continue;
            }
            break;
        }
        // Leading modifiers: `const fn`, `async fn`, `unsafe fn`,
        // `extern "C" fn`. A `const`/`static`/`type` *item* is skipped
        // to its `;` so its initializer cannot confuse the item scan.
        while j < end {
            let t = &self.code[j];
            if t.is_ident("const") {
                if self.code.get(j + 1).is_some_and(|n| n.is_ident("fn")) {
                    j += 1; // `const fn`
                } else {
                    return self.statement_like(start, j, end);
                }
            } else if t.is_ident("async") || t.is_ident("unsafe") {
                j += 1;
            } else if t.is_ident("extern") {
                // `extern "C" fn`, `extern crate x;`, or an extern block.
                let mut k = j + 1;
                if k < end && self.code[k].kind == crate::lexer::TokKind::Str {
                    k += 1;
                }
                if k < end && self.code[k].is_ident("fn") {
                    j = k;
                } else {
                    return self.statement_like(start, j, end);
                }
            } else {
                break;
            }
        }
        let t = self.code.get(j).filter(|_| j < end)?;
        let (line, col) = (t.line, t.col);
        if t.is_ident("fn") {
            let (name, _) = self.ident_after(j + 1, end);
            let (body, item_end) = self.signature_then_body(j + 1, end);
            return Some(Item {
                kind: ItemKind::Fn,
                name,
                of_trait: None,
                line,
                col,
                toks: start..item_end,
                body,
                children: Vec::new(),
            });
        }
        if t.is_ident("mod") {
            let (name, after) = self.ident_after(j + 1, end);
            if after < end && self.code[after].is_punct('{') {
                let close = self.skip_delimited(after, end, '{', '}');
                let children = self.items(after + 1, close.saturating_sub(1));
                return Some(Item {
                    kind: ItemKind::Mod,
                    name,
                    of_trait: None,
                    line,
                    col,
                    toks: start..close,
                    body: Some(after + 1..close.saturating_sub(1)),
                    children,
                });
            }
            // `mod name;` — a file module.
            let semi = self.next_semi(after, end);
            return Some(Item {
                kind: ItemKind::Mod,
                name,
                of_trait: None,
                line,
                col,
                toks: start..semi,
                body: None,
                children: Vec::new(),
            });
        }
        if t.is_ident("trait") {
            let (name, _) = self.ident_after(j + 1, end);
            let (body, item_end) = self.signature_then_body(j + 1, end);
            let children = match &body {
                Some(b) => self.items(b.start, b.end),
                None => Vec::new(),
            };
            return Some(Item {
                kind: ItemKind::Trait,
                name,
                of_trait: None,
                line,
                col,
                toks: start..item_end,
                body,
                children,
            });
        }
        if t.is_ident("impl") {
            let (name, of_trait) = self.impl_type_name(j + 1, end);
            let (body, item_end) = self.signature_then_body(j + 1, end);
            let children = match &body {
                Some(b) => self.items(b.start, b.end),
                None => Vec::new(),
            };
            return Some(Item {
                kind: ItemKind::Impl,
                name,
                of_trait,
                line,
                col,
                toks: start..item_end,
                body,
                children,
            });
        }
        if t.is_ident("use") {
            let semi = self.next_semi(j + 1, end);
            let name: String = self.code[j + 1..semi.saturating_sub(1).max(j + 1)]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            return Some(Item {
                kind: ItemKind::Use,
                name,
                of_trait: None,
                line,
                col,
                toks: start..semi,
                body: None,
                children: Vec::new(),
            });
        }
        if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") {
            // Structs keep their name and (braced) field-list body — the
            // call graph mines `field: Type` pairs for receiver typing.
            // Enums/unions are consumed (so their bodies are not
            // mis-parsed as items) but stay opaque.
            let is_struct = t.is_ident("struct");
            let (name, after) = self.ident_after(j + 1, end);
            let item_end = self.type_item_end(after, end);
            let body = if is_struct
                && item_end > start + 1
                && self.code.get(item_end - 1).is_some_and(|c| c.is_punct('}'))
            {
                // Tokens strictly inside the braces.
                self.code[after..item_end]
                    .iter()
                    .position(|c| c.is_punct('{'))
                    .map(|open| after + open + 1..item_end - 1)
            } else {
                None
            };
            return Some(Item {
                kind: if is_struct {
                    ItemKind::Struct
                } else {
                    ItemKind::Mod
                },
                name: if is_struct { name } else { String::from("?") },
                of_trait: None,
                line,
                col,
                toks: start..item_end.max(start + 1),
                body,
                children: Vec::new(),
            });
        }
        if t.is_ident("static") || t.is_ident("type") || t.is_ident("macro_rules") {
            return self.statement_like(start, j, end);
        }
        None
    }

    /// Skips a `static`/`const`/`type`/`macro_rules!` item: to the first
    /// `;` at bracket depth 0, or past a top-level braced block
    /// (macro_rules bodies). Returns an opaque leaf spanning it.
    fn statement_like(&mut self, start: usize, j: usize, end: usize) -> Option<Item> {
        let (line, col) = (self.code[j].line, self.code[j].col);
        let mut k = j;
        let mut depth = 0i64;
        while k < end {
            let t = &self.code[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') {
                // `macro_rules! m { .. }` / `const X: T = T { .. };` —
                // skip the braces wholesale.
                k = self.skip_delimited(k, end, '{', '}');
                if self
                    .code
                    .get(k)
                    .filter(|_| k < end)
                    .is_some_and(|t| t.is_punct(';'))
                {
                    k += 1;
                }
                // A brace at depth 0 can end the item (macro_rules).
                if depth <= 0 {
                    break;
                }
                continue;
            } else if t.is_punct(';') && depth <= 0 {
                k += 1;
                break;
            }
            k += 1;
        }
        Some(Item {
            kind: ItemKind::Mod, // opaque leaf
            name: String::from("?"),
            of_trait: None,
            line,
            col,
            toks: start..k.max(start + 1),
            body: None,
            children: Vec::new(),
        })
    }

    /// The end of a `struct`/`enum` item starting after its name: the
    /// matching close of its brace block, or its terminating `;`
    /// (unit/tuple structs).
    fn type_item_end(&mut self, mut k: usize, end: usize) -> usize {
        let mut angle = 0i64;
        while k < end {
            let t = &self.code[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 {
                angle -= 1;
            } else if t.is_punct('{') && angle == 0 {
                return self.skip_delimited(k, end, '{', '}');
            } else if t.is_punct('(') {
                k = self.skip_delimited(k, end, '(', ')');
                continue;
            } else if t.is_punct(';') && angle == 0 {
                return k + 1;
            }
            k += 1;
        }
        end
    }

    /// The name (and following index) of the first identifier at `i`.
    fn ident_after(&self, i: usize, end: usize) -> (String, usize) {
        match self.code.get(i).filter(|_| i < end) {
            Some(t) if t.kind == crate::lexer::TokKind::Ident => (t.text.clone(), i + 1),
            _ => (String::from("?"), i),
        }
    }

    /// Walks a signature from `i` to its body `{`, `;`, or range end —
    /// tracking paren/bracket depth and generic angle depth so `{` in
    /// argument position or `->` arrows cannot end the walk early. `>>`
    /// closing nested generics arrives as two `>` tokens and simply
    /// decrements twice. Returns the body token range (if any) and the
    /// index one past the item.
    fn signature_then_body(&mut self, i: usize, end: usize) -> (Option<Range<usize>>, usize) {
        let mut k = i;
        let mut angle = 0i64;
        while k < end {
            let t = &self.code[k];
            if t.is_punct('(') {
                k = self.skip_delimited(k, end, '(', ')').max(k + 1);
                continue;
            }
            if t.is_punct('[') {
                k = self.skip_delimited(k, end, '[', ']').max(k + 1);
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                if angle > 0 {
                    angle -= 1;
                }
            } else if t.is_punct(';') && angle == 0 {
                return (None, k + 1);
            } else if t.is_punct('{') && angle == 0 {
                let close = self.skip_delimited(k, end, '{', '}');
                return (Some(k + 1..close.saturating_sub(1)), close);
            }
            k += 1;
        }
        (None, end)
    }

    /// Extracts `(type, trait)` names from an `impl` header: the type is
    /// the last identifier at angle/paren depth 0 before the body (after
    /// `for`, when present); for `impl Trait for Type`, the identifier
    /// the `for` displaced is the trait. `where` clauses and reference
    /// sigils are skipped.
    fn impl_type_name(&self, i: usize, end: usize) -> (String, Option<String>) {
        let mut k = i;
        let mut angle = 0i64;
        let mut paren = 0i64;
        let mut name = String::from("?");
        let mut of_trait = None;
        while k < end {
            let t = &self.code[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                if angle > 0 {
                    angle -= 1;
                }
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if ((t.is_punct('{') || t.is_punct(';')) && angle == 0 && paren <= 0)
                || (t.is_ident("where") && angle == 0)
            {
                break;
            } else if t.is_ident("for") && angle == 0 {
                // The trait came first; what follows is the type.
                if name != "?" {
                    of_trait = Some(std::mem::replace(&mut name, String::from("?")));
                } else {
                    name = String::from("?");
                }
            } else if angle == 0
                && paren <= 0
                && t.kind == crate::lexer::TokKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut" | "ref" | "as")
            {
                name = t.text.clone();
            }
            k += 1;
        }
        (name, of_trait)
    }

    /// Index one past the matching closer for the opener at `open`.
    fn skip_delimited(&self, open: usize, end: usize, o: char, c: char) -> usize {
        let mut depth = 0i64;
        let mut k = open;
        while k < end {
            let t = &self.code[k];
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        end
    }

    /// Index one past the next `;` at brace depth 0 (or `end`).
    fn next_semi(&self, i: usize, end: usize) -> usize {
        let mut k = i;
        let mut depth = 0i64;
        while k < end {
            let t = &self.code[k];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                return k + 1;
            }
            k += 1;
        }
        end
    }
}

/// Checks the span-nesting invariant over an item tree: children sit
/// inside their parent's extent, siblings are disjoint and ordered.
/// Returns the first violation as text, for the property test.
#[must_use]
pub fn check_nesting(items: &[Item], bound: Range<usize>) -> Option<String> {
    let mut prev_end = bound.start;
    for it in items {
        if it.toks.start < prev_end || it.toks.end > bound.end || it.toks.start > it.toks.end {
            return Some(format!(
                "item `{}` span {:?} escapes bound {bound:?} (prev sibling ended at {prev_end})",
                it.name, it.toks
            ));
        }
        if let Some(b) = &it.body {
            if b.start < it.toks.start || b.end > it.toks.end {
                return Some(format!(
                    "item `{}` body {b:?} escapes its own span {:?}",
                    it.name, it.toks
                ));
            }
            if let Some(err) = check_nesting(&it.children, b.clone()) {
                return Some(err);
            }
        } else if !it.children.is_empty() {
            return Some(format!("bodiless item `{}` has children", it.name));
        }
        prev_end = it.toks.end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::lexer::TokKind;

    fn parse(src: &str) -> (Vec<Tok>, Vec<Item>) {
        let code: Vec<Tok> = tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let items = parse_items(&code);
        (code, items)
    }

    fn named(items: &[Item], kind: ItemKind) -> Vec<&str> {
        items
            .iter()
            .filter(|i| i.kind == kind)
            .map(|i| i.name.as_str())
            .collect()
    }

    #[test]
    fn fns_mods_impls_traits_and_uses_parse_with_names() {
        let src = "
use std::fmt::Write;
pub fn free(x: u32) -> u32 { x + 1 }
mod inner { pub fn nested() {} }
pub struct S { pub a: u32 }
impl S { pub fn method(&self) -> u32 { self.a } }
trait T { fn required(&self); fn default_body(&self) -> u32 { 7 } }
impl T for S { fn required(&self) {} }
";
        let (code, items) = parse(src);
        assert!(check_nesting(&items, 0..code.len()).is_none());
        assert_eq!(named(&items, ItemKind::Fn), ["free"]);
        assert_eq!(named(&items, ItemKind::Mod), ["inner"]);
        assert_eq!(named(&items, ItemKind::Struct), ["S"]);
        assert_eq!(named(&items, ItemKind::Impl), ["S", "S"]);
        assert_eq!(named(&items, ItemKind::Trait), ["T"]);
        let inner = items.iter().find(|i| i.name == "inner").expect("mod");
        assert_eq!(named(&inner.children, ItemKind::Fn), ["nested"]);
        let imp = items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl");
        assert_eq!(named(&imp.children, ItemKind::Fn), ["method"]);
        let tr = items
            .iter()
            .find(|i| i.kind == ItemKind::Trait)
            .expect("trait");
        assert_eq!(
            named(&tr.children, ItemKind::Fn),
            ["required", "default_body"]
        );
        assert!(tr.children[0].body.is_none(), "signature-only method");
        assert!(tr.children[1].body.is_some(), "default body parsed");
    }

    #[test]
    fn nested_generics_close_with_double_angle() {
        // The `>>` regression: two closers must both count, or the body
        // would be misplaced and `g` lost.
        let (_, items) = parse("fn f(x: Vec<Vec<u32>>) -> Option<Option<u8>> { g() }");
        assert_eq!(items.len(), 1);
        let body = items[0].body.clone().expect("body found");
        assert!(body.end > body.start, "body must be non-empty");
    }

    #[test]
    fn raw_identifier_fn_names_do_not_confuse_item_scan() {
        // `let r#fn` must not open a phantom function item.
        let (code, items) = parse("fn real() { let r#fn = 1; }\nfn next() {}");
        assert!(check_nesting(&items, 0..code.len()).is_none());
        assert_eq!(named(&items, ItemKind::Fn), ["real", "next"]);
    }

    #[test]
    fn impl_names_resolve_through_generics_refs_and_for() {
        let (_, items) = parse(
            "impl<'a, T: Clone> Wrapper<'a, T> { fn a(&self) {} }
             impl std::fmt::Display for Finding { fn fmt(&self) {} }
             impl Clocked for &mut Controller { fn tick(&mut self) {} }",
        );
        assert_eq!(
            named(&items, ItemKind::Impl),
            ["Wrapper", "Finding", "Controller"]
        );
    }

    #[test]
    fn const_static_type_items_are_opaque_and_do_not_derail() {
        let (code, items) = parse(
            "const TABLE: [u8; 4] = [1, 2, 3, 4];
             static NAME: &str = \"x; y\";
             type Alias = Vec<u32>;
             const STRUCTY: Point = Point { x: 1, y: 2 };
             fn after() {}",
        );
        assert!(check_nesting(&items, 0..code.len()).is_none());
        assert_eq!(named(&items, ItemKind::Fn), ["after"]);
    }

    #[test]
    fn macro_rules_bodies_are_skipped_wholesale() {
        let (code, items) = parse(
            "macro_rules! m { ($x:expr) => { fn not_an_item() {} }; }
             fn real() {}",
        );
        assert!(check_nesting(&items, 0..code.len()).is_none());
        assert_eq!(named(&items, ItemKind::Fn), ["real"]);
    }

    #[test]
    fn where_clauses_and_semis_do_not_end_fn_early() {
        let (_, items) =
            parse("fn generic<T>(x: T) -> Vec<T> where T: Clone + Ord { body(x); more() }");
        assert_eq!(items.len(), 1);
        let body = items[0].body.clone().expect("body");
        assert!(body.len() > 5);
    }

    #[test]
    fn impl_trait_for_type_captures_the_trait() {
        let (_, items) = parse(
            "impl Clocked for Controller { fn tick(&mut self) {} }
             impl Controller { fn plain(&self) {} }
             impl std::fmt::Display for Finding { fn fmt(&self) {} }",
        );
        let traits: Vec<_> = items.iter().map(|i| i.of_trait.as_deref()).collect();
        assert_eq!(traits, [Some("Clocked"), None, Some("Display")]);
        assert_eq!(
            named(&items, ItemKind::Impl),
            ["Controller", "Controller", "Finding"]
        );
    }

    #[test]
    fn struct_items_expose_their_field_list() {
        let (code, items) = parse(
            "pub struct Sched { pub agent: QAgent, table: Vec<Entry> }
             struct Unit;
             struct Tuple(u32, u32);",
        );
        assert!(check_nesting(&items, 0..code.len()).is_none());
        assert_eq!(named(&items, ItemKind::Struct), ["Sched", "Unit", "Tuple"]);
        let body = items[0].body.clone().expect("field list");
        assert!(code[body].iter().any(|t| t.is_ident("QAgent")));
        assert!(items[1].body.is_none(), "unit struct has no field list");
        assert!(items[2].body.is_none(), "tuple struct has no field list");
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "mod",
            "use",
            "}}}{{{",
            "fn f( { } )",
            "trait X fn impl",
            "#[ #[ fn",
            "pub pub pub",
            "const",
            "extern",
        ] {
            let (code, items) = parse(src);
            assert!(check_nesting(&items, 0..code.len()).is_none(), "src: {src}");
        }
    }
}
