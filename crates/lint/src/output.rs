//! Rendering: human-readable `file:line:col: ID: message` lines and the
//! machine-readable JSON document (hand-rolled — ia-lint is
//! zero-dependency by design, like the rest of the offline build).

use crate::baseline::Gated;
use crate::lints::Finding;
use std::fmt::Write as _;

/// Renders the gate outcome as text for humans/CI logs.
#[must_use]
pub fn text(gated: &Gated, files_scanned: usize) -> String {
    let mut out = String::new();
    for f in &gated.new {
        let _ = writeln!(out, "{f}");
    }
    for s in &gated.stale {
        let _ = writeln!(
            out,
            "{}: stale baseline entry for {}: baseline says {}, found {} — run \
             `cargo run -p ia-lint -- --write-baseline` to ratchet down",
            s.file, s.id, s.baseline, s.found
        );
    }
    for o in &gated.outdated {
        let _ = writeln!(
            out,
            "lint.baseline: section [{} v{}] was generated against an older analysis \
             (current v{}) — run `cargo run -p ia-lint -- --write-baseline` to re-count",
            o.id, o.baseline_version, o.current_version
        );
    }
    let _ = writeln!(
        out,
        "ia-lint: {} file(s) scanned, {} new finding(s), {} stale baseline entr{}, \
         {} outdated section(s), {} grandfathered",
        files_scanned,
        gated.new.len(),
        gated.stale.len(),
        if gated.stale.len() == 1 { "y" } else { "ies" },
        gated.outdated.len(),
        gated.grandfathered
    );
    out
}

/// Renders the gate outcome as a stable JSON document: findings and
/// stale entries in sorted order, suitable for diffing across runs.
#[must_use]
pub fn json(gated: &Gated, files_scanned: usize) -> String {
    let mut out = String::from("{\"version\":2");
    let _ = write!(out, ",\"files_scanned\":{files_scanned}");
    let _ = write!(out, ",\"grandfathered\":{}", gated.grandfathered);
    out.push_str(",\"findings\":[");
    for (i, f) in gated.new.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_finding(&mut out, f);
    }
    out.push_str("],\"stale\":[");
    for (i, s) in gated.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":{},\"id\":{},\"baseline\":{},\"found\":{}}}",
            quote(&s.file),
            quote(&s.id),
            s.baseline,
            s.found
        );
    }
    out.push_str("],\"outdated\":[");
    for (i, o) in gated.outdated.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"baseline_version\":{},\"current_version\":{}}}",
            quote(&o.id),
            o.baseline_version,
            o.current_version
        );
    }
    out.push_str("]}\n");
    out
}

fn write_finding(out: &mut String, f: &Finding) {
    let _ = write!(
        out,
        "{{\"file\":{},\"line\":{},\"col\":{},\"id\":{},\"message\":{}",
        quote(&f.file),
        f.line,
        f.col,
        quote(f.id),
        quote(&f.message)
    );
    if !f.witness.is_empty() {
        out.push_str(",\"witness\":[");
        for (i, w) in f.witness.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&quote(w));
        }
        out.push(']');
    }
    out.push('}');
}

/// Minimal JSON string quoting.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::StaleEntry;

    fn gated() -> Gated {
        Gated {
            new: vec![
                Finding {
                    file: "crates/x/src/lib.rs".to_owned(),
                    line: 3,
                    col: 7,
                    id: "P001",
                    message: "`.unwrap()` in non-test code — return a Result instead".to_owned(),
                    witness: Vec::new(),
                },
                Finding {
                    file: "crates/x/src/lib.rs".to_owned(),
                    line: 9,
                    col: 5,
                    id: "P003",
                    message: "panic site `.unwrap()` is reachable from report entry \
                              `bench::exp02_rowclone::report`"
                        .to_owned(),
                    witness: vec![
                        "bench::exp02_rowclone::report".to_owned(),
                        "x::helper".to_owned(),
                    ],
                },
            ],
            stale: vec![StaleEntry {
                file: "crates/y/src/lib.rs".to_owned(),
                id: "P001".to_owned(),
                baseline: 4,
                found: 2,
            }],
            outdated: vec![crate::baseline::OutdatedSection {
                id: "P001".to_owned(),
                baseline_version: 1,
                current_version: 2,
            }],
            grandfathered: 10,
        }
    }

    #[test]
    fn text_lists_findings_in_grep_friendly_form() {
        let t = text(&gated(), 5);
        assert!(t.contains("crates/x/src/lib.rs:3:7: P001:"));
        assert!(t.contains("stale baseline entry"));
        assert!(t.contains("section [P001 v1]"));
        assert!(t.contains("5 file(s) scanned, 2 new finding(s)"));
        assert!(
            t.contains("[via: bench::exp02_rowclone::report -> x::helper]"),
            "witness chains print inline: {t}"
        );
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let j = json(&gated(), 5);
        assert!(j.contains("\"files_scanned\":5"));
        assert!(j.contains("\"id\":\"P001\""));
        assert!(j.contains("\"baseline\":4"));
        assert!(j.contains("\"baseline_version\":1"));
        assert!(
            j.contains("\"witness\":[\"bench::exp02_rowclone::report\",\"x::helper\"]"),
            "witness arrays in JSON: {j}"
        );
        assert!(
            !j.contains("3,\"id\":\"P001\",\"message\":\"`.unwrap()` in non-test code — return a Result instead\",\"witness\""),
            "witness key absent when the chain is empty"
        );
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        // Byte-stable: rendering twice is identical.
        assert_eq!(j, json(&gated(), 5));
    }
}
