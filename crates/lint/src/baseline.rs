//! The `lint.baseline` ratchet: grandfathered findings, counted per
//! `(file, lint)` pair so the gate is green from day one and can only
//! ratchet down.
//!
//! Semantics per `(file, lint)` group, with `b` the baselined count and
//! `c` the count found now:
//!
//! * `c == b` — clean: the findings stay grandfathered.
//! * `c > b` — regression: every current finding in the group is listed
//!   (new code must not add violations).
//! * `c < b` — **stale entry**: progress! The baseline must be
//!   regenerated (`--write-baseline`) so the ratchet locks in the lower
//!   count. Stale entries are reported and fail the gate rather than
//!   being silently kept.

use crate::lints::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Grandfathered counts, keyed by `(file, lint-id)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// A baseline entry whose count no longer matches reality downward.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaleEntry {
    /// File the entry refers to.
    pub file: String,
    /// Lint ID.
    pub id: String,
    /// Count recorded in the baseline.
    pub baseline: usize,
    /// Count found in the current scan (strictly lower).
    pub found: usize,
}

/// Outcome of gating a scan against the baseline.
#[derive(Debug, Default)]
pub struct Gated {
    /// Findings not covered by the baseline (regressed groups list every
    /// current occurrence), sorted.
    pub new: Vec<Finding>,
    /// Baseline entries that over-count current findings.
    pub stale: Vec<StaleEntry>,
    /// Number of findings suppressed by the baseline.
    pub grandfathered: usize,
}

impl Gated {
    /// True when the gate passes: nothing new, nothing stale.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Parses the baseline file format: one `<file> <LINT-ID> <count>`
    /// per line; `#` comments and blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(file), Some(id), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<file> <LINT-ID> <count>`, got `{line}`",
                    i + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            if entries
                .insert((file.to_owned(), id.to_owned()), count)
                .is_some()
            {
                return Err(format!(
                    "baseline line {}: duplicate entry for {file} {id}",
                    i + 1
                ));
            }
        }
        Ok(Baseline { entries })
    }

    /// Renders a baseline covering `findings`, ready to check in.
    #[must_use]
    pub fn render(findings: &[Finding]) -> String {
        let counts = count_groups(findings);
        let mut out = String::from(
            "# ia-lint baseline — grandfathered findings, counted per (file, lint).\n\
             # Regenerate with `cargo run -p ia-lint -- --write-baseline` after a\n\
             # burn-down; the gate fails if any count rises OR falls without a\n\
             # regeneration, so the total only ratchets toward zero.\n",
        );
        for ((file, id), count) in counts {
            let _ = writeln!(out, "{file} {id} {count}");
        }
        out
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no findings are grandfathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Gates `findings` (already allow-filtered and sorted) against this
    /// baseline.
    #[must_use]
    pub fn apply(&self, findings: &[Finding]) -> Gated {
        let counts = count_groups(findings);
        let mut gated = Gated::default();
        for ((file, id), found) in &counts {
            let b = self
                .entries
                .get(&(file.clone(), id.clone()))
                .copied()
                .unwrap_or(0);
            if *found > b {
                gated.new.extend(
                    findings
                        .iter()
                        .filter(|f| f.file == *file && f.id == *id)
                        .cloned(),
                );
            } else {
                gated.grandfathered += found;
                if *found < b {
                    gated.stale.push(StaleEntry {
                        file: file.clone(),
                        id: id.clone(),
                        baseline: b,
                        found: *found,
                    });
                }
            }
        }
        // Entries for files that now have zero findings of that lint.
        for ((file, id), b) in &self.entries {
            if *b > 0 && !counts.contains_key(&(file.clone(), id.clone())) {
                gated.stale.push(StaleEntry {
                    file: file.clone(),
                    id: id.clone(),
                    baseline: *b,
                    found: 0,
                });
            }
        }
        gated.new.sort();
        gated.stale.sort();
        gated
    }
}

fn count_groups(findings: &[Finding]) -> BTreeMap<(String, String), usize> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts.entry((f.file.clone(), f.id.to_owned())).or_default() += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, id: &'static str) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            col: 1,
            id,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("# comment\n\ncrates/a.rs P001 3\n").is_ok());
        assert!(Baseline::parse("crates/a.rs P001").is_err());
        assert!(Baseline::parse("crates/a.rs P001 x").is_err());
        assert!(Baseline::parse("a P001 1 extra").is_err());
        assert!(Baseline::parse("a P001 1\na P001 2").is_err());
    }

    #[test]
    fn exact_match_is_clean_and_grandfathered() {
        let fs = [finding("a.rs", 1, "P001"), finding("a.rs", 9, "P001")];
        let b = Baseline::parse("a.rs P001 2").unwrap();
        let g = b.apply(&fs);
        assert!(g.is_clean());
        assert_eq!(g.grandfathered, 2);
    }

    #[test]
    fn count_increase_lists_all_group_findings() {
        let fs = [
            finding("a.rs", 1, "P001"),
            finding("a.rs", 9, "P001"),
            finding("b.rs", 2, "D001"),
        ];
        let b = Baseline::parse("a.rs P001 1").unwrap();
        let g = b.apply(&fs);
        assert_eq!(g.new.len(), 3, "regressed group + unbaselined finding");
        assert!(!g.is_clean());
    }

    #[test]
    fn count_decrease_and_vanished_entries_are_stale() {
        let fs = [finding("a.rs", 1, "P001")];
        let b = Baseline::parse("a.rs P001 2\ngone.rs D002 1").unwrap();
        let g = b.apply(&fs);
        assert!(g.new.is_empty());
        assert_eq!(g.stale.len(), 2);
        assert_eq!(g.stale[0].found, 1);
        assert_eq!(g.stale[1].found, 0);
        assert!(!g.is_clean(), "stale entries must fail the gate");
    }

    #[test]
    fn render_round_trips_through_parse() {
        let fs = [
            finding("a.rs", 1, "P001"),
            finding("a.rs", 9, "P001"),
            finding("b.rs", 2, "D001"),
        ];
        let text = Baseline::render(&fs);
        let b = Baseline::parse(&text).unwrap();
        assert!(b.apply(&fs).is_clean());
        assert_eq!(b.len(), 2);
    }
}
