//! The `lint.baseline` ratchet: grandfathered findings, counted per
//! `(file, lint)` pair so the gate is green from day one and can only
//! ratchet down.
//!
//! ## Format (v2, lint-versioned sections)
//!
//! ```text
//! [P001 v1]
//! crates/bench/src/exp02_rowclone.rs 3
//! crates/bench/src/mixes.rs 4
//! ```
//!
//! Each section header names a lint ID and the *analysis version* it was
//! generated against (see `LintInfo::version`). When a lint's detection
//! logic changes, its version bumps and every baseline section recorded
//! against the old version is reported as **outdated** — the counts are
//! meaningless under the new analysis, so the gate fails until the
//! baseline is regenerated. The legacy one-line-per-entry v1 format is
//! rejected with a pointer to `--write-baseline`.
//!
//! Semantics per `(file, lint)` group, with `b` the baselined count and
//! `c` the count found now:
//!
//! * `c == b` — clean: the findings stay grandfathered.
//! * `c > b` — regression: every current finding in the group is listed
//!   (new code must not add violations).
//! * `c < b` — **stale entry**: progress! The baseline must be
//!   regenerated (`--write-baseline`) so the ratchet locks in the lower
//!   count. Stale entries are reported and fail the gate rather than
//!   being silently kept.

use crate::lints::{info, Finding};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Grandfathered counts, keyed by `(file, lint-id)`, plus the analysis
/// version each lint's section was generated against.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
    versions: BTreeMap<String, u32>,
}

/// A baseline entry whose count no longer matches reality downward.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaleEntry {
    /// File the entry refers to.
    pub file: String,
    /// Lint ID.
    pub id: String,
    /// Count recorded in the baseline.
    pub baseline: usize,
    /// Count found in the current scan (strictly lower).
    pub found: usize,
}

/// A baseline section recorded against an older analysis version.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OutdatedSection {
    /// Lint ID.
    pub id: String,
    /// Version the section was generated against.
    pub baseline_version: u32,
    /// The lint's current analysis version.
    pub current_version: u32,
}

/// Outcome of gating a scan against the baseline.
#[derive(Debug, Default)]
pub struct Gated {
    /// Findings not covered by the baseline (regressed groups list every
    /// current occurrence), sorted.
    pub new: Vec<Finding>,
    /// Baseline entries that over-count current findings.
    pub stale: Vec<StaleEntry>,
    /// Sections whose analysis version is older than the catalog's.
    pub outdated: Vec<OutdatedSection>,
    /// Number of findings suppressed by the baseline.
    pub grandfathered: usize,
}

impl Gated {
    /// True when the gate passes: nothing new, nothing stale, no
    /// outdated sections.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty() && self.outdated.is_empty()
    }
}

/// The current analysis version for `id` (1 for IDs not in the catalog,
/// so parsing stays total).
fn catalog_version(id: &str) -> u32 {
    info(id).map_or(1, |l| l.version)
}

impl Baseline {
    /// Parses the sectioned baseline format: `[LINT-ID vN]` headers with
    /// `<file> <count>` entries; `#` comments and blank lines are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line. Legacy
    /// three-field lines (the pre-section format) get a dedicated
    /// message pointing at `--write-baseline`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut versions: BTreeMap<String, u32> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("baseline line {}: unterminated `[` header", i + 1))?;
                let mut parts = header.split_whitespace();
                let (Some(id), Some(ver), None) = (parts.next(), parts.next(), parts.next()) else {
                    return Err(format!(
                        "baseline line {}: expected `[LINT-ID vN]`, got `[{header}]`",
                        i + 1
                    ));
                };
                let ver: u32 = ver
                    .strip_prefix('v')
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| {
                        format!("baseline line {}: bad section version `{ver}`", i + 1)
                    })?;
                if versions.insert(id.to_owned(), ver).is_some() {
                    return Err(format!("baseline line {}: duplicate section `{id}`", i + 1));
                }
                current = Some(id.to_owned());
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(file), Some(count), rest) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "baseline line {}: expected `<file> <count>`, got `{line}`",
                    i + 1
                ));
            };
            if rest.is_some() {
                return Err(format!(
                    "baseline line {}: the one-line `<file> <LINT-ID> <count>` format is \
                     gone — regenerate with `cargo run -p ia-lint -- --write-baseline`",
                    i + 1
                ));
            }
            let Some(id) = current.clone() else {
                return Err(format!(
                    "baseline line {}: entry before any `[LINT-ID vN]` section header — \
                     regenerate with `cargo run -p ia-lint -- --write-baseline`",
                    i + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            if entries
                .insert((file.to_owned(), id.clone()), count)
                .is_some()
            {
                return Err(format!(
                    "baseline line {}: duplicate entry for {file} in [{id}]",
                    i + 1
                ));
            }
        }
        Ok(Baseline { entries, versions })
    }

    /// Renders a baseline covering `findings`, ready to check in.
    #[must_use]
    pub fn render(findings: &[Finding]) -> String {
        let counts = count_groups(findings);
        let mut by_id: BTreeMap<&str, Vec<(&str, usize)>> = BTreeMap::new();
        for ((file, id), count) in &counts {
            by_id.entry(id).or_default().push((file, *count));
        }
        let mut out = String::from(
            "# ia-lint baseline — grandfathered findings, counted per (file, lint),\n\
             # grouped into `[LINT-ID vN]` sections where N is the analysis version\n\
             # the counts were generated against. Regenerate with\n\
             # `cargo run -p ia-lint -- --write-baseline` after a burn-down; the gate\n\
             # fails if any count rises OR falls without a regeneration — and if a\n\
             # lint's analysis version changes — so the total only ratchets toward\n\
             # zero.\n",
        );
        for (id, files) in by_id {
            let _ = writeln!(out, "[{id} v{}]", catalog_version(id));
            for (file, count) in files {
                let _ = writeln!(out, "{file} {count}");
            }
        }
        out
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no findings are grandfathered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lint IDs with a baseline section (gate policy checks: only
    /// P-series findings may be grandfathered).
    #[must_use]
    pub fn section_ids(&self) -> Vec<&str> {
        self.versions.keys().map(String::as_str).collect()
    }

    /// Gates `findings` (already allow-filtered and sorted) against this
    /// baseline.
    #[must_use]
    pub fn apply(&self, findings: &[Finding]) -> Gated {
        let mut gated = Gated::default();
        // A section generated under an older analysis version carries
        // meaningless counts: report it and skip its ratchet arithmetic
        // (regeneration re-counts everything anyway).
        let mut outdated_ids: Vec<&str> = Vec::new();
        for (id, &ver) in &self.versions {
            let cur = catalog_version(id);
            if ver != cur {
                outdated_ids.push(id);
                gated.outdated.push(OutdatedSection {
                    id: id.clone(),
                    baseline_version: ver,
                    current_version: cur,
                });
            }
        }
        let counts = count_groups(findings);
        for ((file, id), found) in &counts {
            if outdated_ids.contains(&id.as_str()) {
                continue;
            }
            let b = self
                .entries
                .get(&(file.clone(), id.clone()))
                .copied()
                .unwrap_or(0);
            if *found > b {
                gated.new.extend(
                    findings
                        .iter()
                        .filter(|f| f.file == *file && f.id == *id)
                        .cloned(),
                );
            } else {
                gated.grandfathered += found;
                if *found < b {
                    gated.stale.push(StaleEntry {
                        file: file.clone(),
                        id: id.clone(),
                        baseline: b,
                        found: *found,
                    });
                }
            }
        }
        // Entries for files that now have zero findings of that lint.
        for ((file, id), b) in &self.entries {
            if outdated_ids.contains(&id.as_str()) {
                continue;
            }
            if *b > 0 && !counts.contains_key(&(file.clone(), id.clone())) {
                gated.stale.push(StaleEntry {
                    file: file.clone(),
                    id: id.clone(),
                    baseline: *b,
                    found: 0,
                });
            }
        }
        gated.new.sort();
        gated.stale.sort();
        gated.outdated.sort();
        gated
    }
}

fn count_groups(findings: &[Finding]) -> BTreeMap<(String, String), usize> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts.entry((f.file.clone(), f.id.to_owned())).or_default() += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, id: &'static str) -> Finding {
        Finding::new(file, line, 1, id, "m".to_owned())
    }

    #[test]
    fn parse_rejects_malformed_and_legacy_lines() {
        assert!(Baseline::parse("# comment\n\n[P001 v1]\ncrates/a.rs 3\n").is_ok());
        let legacy = Baseline::parse("crates/a.rs P001 3\n");
        assert!(legacy.is_err());
        assert!(
            legacy.unwrap_err().contains("--write-baseline"),
            "legacy format points at regeneration"
        );
        assert!(
            Baseline::parse("crates/a.rs 3\n").is_err(),
            "entry before header"
        );
        assert!(Baseline::parse("[P001]\na 1\n").is_err(), "missing version");
        assert!(Baseline::parse("[P001 vx]\na 1\n").is_err(), "bad version");
        assert!(Baseline::parse("[P001 v1\na 1\n").is_err(), "unterminated");
        assert!(
            Baseline::parse("[P001 v1]\na 1\na 2\n").is_err(),
            "dup entry"
        );
        assert!(
            Baseline::parse("[P001 v1]\n[P001 v1]\n").is_err(),
            "dup section"
        );
    }

    #[test]
    fn exact_match_is_clean_and_grandfathered() {
        let fs = [finding("a.rs", 1, "P001"), finding("a.rs", 9, "P001")];
        let b = Baseline::parse("[P001 v1]\na.rs 2").unwrap();
        let g = b.apply(&fs);
        assert!(g.is_clean());
        assert_eq!(g.grandfathered, 2);
    }

    #[test]
    fn count_increase_lists_all_group_findings() {
        let fs = [
            finding("a.rs", 1, "P001"),
            finding("a.rs", 9, "P001"),
            finding("b.rs", 2, "D001"),
        ];
        let b = Baseline::parse("[P001 v1]\na.rs 1").unwrap();
        let g = b.apply(&fs);
        assert_eq!(g.new.len(), 3, "regressed group + unbaselined finding");
        assert!(!g.is_clean());
    }

    #[test]
    fn count_decrease_and_vanished_entries_are_stale() {
        let fs = [finding("a.rs", 1, "P001")];
        let b = Baseline::parse("[P001 v1]\na.rs 2\n[D002 v1]\ngone.rs 1").unwrap();
        let g = b.apply(&fs);
        assert!(g.new.is_empty());
        assert_eq!(g.stale.len(), 2);
        assert_eq!(g.stale[0].found, 1, "a.rs P001 dropped 2 -> 1");
        assert_eq!(g.stale[1].found, 0, "vanished gone.rs D002 entry");
        assert!(!g.is_clean(), "stale entries must fail the gate");
    }

    #[test]
    fn version_mismatch_marks_the_section_outdated() {
        let fs = [finding("a.rs", 1, "P001")];
        let b = Baseline::parse("[P001 v9]\na.rs 1").unwrap();
        let g = b.apply(&fs);
        assert_eq!(g.outdated.len(), 1);
        assert_eq!(g.outdated[0].baseline_version, 9);
        assert_eq!(g.outdated[0].current_version, 1);
        assert!(!g.is_clean(), "outdated sections must fail the gate");
        assert!(
            g.new.is_empty() && g.stale.is_empty(),
            "no ratchet arithmetic on meaningless counts"
        );
    }

    #[test]
    fn render_round_trips_through_parse() {
        let fs = [
            finding("a.rs", 1, "P001"),
            finding("a.rs", 9, "P001"),
            finding("b.rs", 2, "D001"),
        ];
        let text = Baseline::render(&fs);
        assert!(text.contains("[P001 v1]"));
        assert!(text.contains("[D001 v1]"));
        let b = Baseline::parse(&text).unwrap();
        assert!(b.apply(&fs).is_clean());
        assert_eq!(b.len(), 2);
        assert_eq!(b.section_ids(), ["D001", "P001"]);
    }
}
