//! The lint catalog: D-series (determinism), P-series (panic policy),
//! M-series (metric naming), S-series (safety / CLI routing).
//!
//! Every lint is identified by a stable `X000` ID. Findings print as
//! `file:line:col: LINT-ID: message`; the catalog with rationale and
//! waiver guidance lives in `crates/lint/LINTS.md`.

use crate::context::FileContext;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable ID (`D001`, `P001`, …).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description shown by `--list`.
    pub summary: &'static str,
    /// Analysis version. Bumped whenever the lint's detection logic
    /// changes enough that old baseline counts are meaningless; the
    /// baseline stores it per section and the gate fails on mismatch
    /// until the baseline is regenerated.
    pub version: u32,
}

/// The full catalog, in ID order.
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: "D001",
        name: "hash-collection-in-report-path",
        summary: "HashMap/HashSet in report-building code (ia-bench, ia-telemetry) — \
                  iteration order could reach report bytes; use BTreeMap/BTreeSet or sort",
        version: 1,
    },
    LintInfo {
        id: "D002",
        name: "wall-clock-in-simulator",
        summary: "std::time::Instant/SystemTime outside ia-par — simulated time must come \
                  from engine cycles, never the host clock",
        version: 1,
    },
    LintInfo {
        id: "D003",
        name: "environment-dependent-input",
        summary: "std::env::var/vars or RandomState — results must be a pure function of \
                  CLI flags and seeds, not the host environment",
        version: 1,
    },
    LintInfo {
        id: "D004",
        name: "rng-without-explicit-seed",
        summary: "from_entropy()/thread_rng() — stateful RNGs must be built via \
                  SmallRng::seed_from_u64 with an explicit seed",
        version: 1,
    },
    LintInfo {
        id: "D005",
        name: "allocation-in-hot-path",
        summary: "Vec::new()/.collect()/.to_vec()/.clone() inside a `// lint: hot-path` \
                  function — per-cycle code must reuse scratch buffers, not allocate",
        version: 1,
    },
    LintInfo {
        id: "D006",
        name: "determinism-taint-reaches-report",
        summary: "a wall-clock / environment / thread-identity read is reachable from a \
                  function that writes metric or report values — the witness chain shows \
                  the call path; route diagnostics to stderr or cut the call edge",
        version: 1,
    },
    LintInfo {
        id: "H002",
        name: "allocation-in-hot-path-closure",
        summary: "a `// lint: hot-path` function transitively calls code that allocates \
                  (Vec::new/.collect/.to_vec/.clone) — D005 for the whole call closure, \
                  with the witness chain from the hot function to the allocation",
        version: 1,
    },
    LintInfo {
        id: "M001",
        name: "metric-name-convention",
        summary: "metric names must be dot-separated lowercase paths with >= 2 segments \
                  (`crate.section.name`), each segment `[a-z0-9_]+`",
        version: 1,
    },
    LintInfo {
        id: "M002",
        name: "metric-name-collision",
        summary: "the same metric name is registered from two different crates — rename, \
                  or waive the consumer site with `// lint: allow(M002, why)`",
        version: 1,
    },
    LintInfo {
        id: "P001",
        name: "unwrap-in-library-code",
        summary: ".unwrap()/.expect() in non-test code — return a Result, or justify with \
                  `// lint: allow(P001, why)` / a baseline entry",
        version: 1,
    },
    LintInfo {
        id: "P002",
        name: "panic-in-library-code",
        summary: "panic!/todo!/unimplemented! in non-test code — return an error, or \
                  justify with `// lint: allow(P002, why)` / a baseline entry",
        version: 1,
    },
    LintInfo {
        id: "P003",
        name: "panic-reachable-from-report-path",
        summary: "an unwrap/expect/panic-family site is transitively reachable from an \
                  experiment `report()` entry point or `ia_bench::report::cli` — the \
                  witness chain shows the call path; fix the site or waive it with a \
                  reason (a P001/P002 waiver at the site covers P003 too)",
        version: 1,
    },
    LintInfo {
        id: "S001",
        name: "missing-forbid-unsafe",
        summary: "every crate root must declare `#![forbid(unsafe_code)]`",
        version: 1,
    },
    LintInfo {
        id: "S002",
        name: "bin-bypasses-cli",
        summary: "every experiment binary must route through ia_bench::report::cli \
                  (shared flags, error handling, exit codes)",
        version: 1,
    },
    LintInfo {
        id: "W001",
        name: "dead-waiver",
        summary: "a `// lint: allow(ID, …)` comment no longer silences any finding — \
                  delete it so waiver debt ratchets down with the baseline",
        version: 1,
    },
];

/// Looks up a catalog entry by ID.
#[must_use]
pub fn info(id: &str) -> Option<&'static LintInfo> {
    CATALOG.iter().find(|l| l.id == id)
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Catalog ID.
    pub id: &'static str,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// Interprocedural lints attach the call chain that makes the site
    /// a finding, entry first (qualified function names). Empty for
    /// single-file lints. Chains are deterministic: shortest path,
    /// lowest-id tiebreak, so report bytes are stable across runs.
    pub witness: Vec<String>,
}

impl Finding {
    /// A finding with no witness chain (every single-file lint).
    #[must_use]
    pub fn new(file: &str, line: u32, col: u32, id: &'static str, message: String) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            col,
            id,
            message,
            witness: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.id, self.message
        )?;
        if !self.witness.is_empty() {
            write!(f, " [via: {}]", self.witness.join(" -> "))?;
        }
        Ok(())
    }
}

/// A metric-name registration site, recorded for the cross-file M002 pass.
#[derive(Debug, Clone)]
pub struct MetricSite {
    /// Metric name literal.
    pub name: String,
    /// Crate the registration lives in (`bench`, `dram`, root = `intelligent-arch`).
    pub krate: String,
    /// Registration site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// An `allow(M002)` waiver covers the site: it is excluded from the
    /// collision pass, and the waiver counts as used (W001).
    pub waived: bool,
}

/// File-path prefixes whose sources build report/metric bytes: hash-ordered
/// collections are banned outright there (D001).
const REPORT_PATHS: &[&str] = &["crates/bench/src/", "crates/telemetry/src/"];

/// `ia-par` measures wall-clock worker time by design; its numbers are
/// runtime diagnostics excluded from every report (see ia-bench docs).
const WALL_CLOCK_EXEMPT: &[&str] = &["crates/par/"];

/// The in-tree `rand` shim defines the seeding API itself.
const RNG_EXEMPT: &[&str] = &["crates/rand/"];

/// Extracts the crate name from a workspace-relative path.
#[must_use]
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("?").to_owned(),
        _ => "intelligent-arch".to_owned(),
    }
}

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Runs all single-file lints on one file, emitting **raw** findings:
/// `// lint: allow` waivers are *not* applied here — the scan pipeline
/// filters them centrally so it can also tell which waivers were used
/// (dead ones become W001 findings). Cross-file facts (metric
/// registrations for M002) are appended to `metrics`; S-series runs in
/// the workspace passes ([`check_crate_root`], [`check_bench_bin`]).
#[must_use]
pub fn check_file(path: &str, ctx: &FileContext, metrics: &mut Vec<MetricSite>) -> Vec<Finding> {
    let mut out = Vec::new();
    let code = &ctx.code;
    let mut push = |id: &'static str, t: &Tok, message: String| {
        out.push(Finding::new(path, t.line, t.col, id, message));
    };

    let in_report_path = starts_with_any(path, REPORT_PATHS);
    let wall_clock_exempt = starts_with_any(path, WALL_CLOCK_EXEMPT);
    let rng_exempt = starts_with_any(path, RNG_EXEMPT);

    for (i, t) in code.iter().enumerate() {
        if ctx.is_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &code[j]);
        let prev_is_dot = prev.is_some_and(|p| p.is_punct('.'));
        let next_is_open = code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let next_is_bang = code.get(i + 1).is_some_and(|n| n.is_punct('!'));

        match t.text.as_str() {
            "HashMap" | "HashSet" if in_report_path => push(
                "D001",
                t,
                format!(
                    "`{}` in a report path — iteration order can reach report bytes; \
                     use BTreeMap/BTreeSet or sort before emitting",
                    t.text
                ),
            ),
            "Instant" | "SystemTime" if !wall_clock_exempt => push(
                "D002",
                t,
                format!(
                    "wall-clock type `{}` in simulator code — derive time from engine \
                     cycles, not the host clock",
                    t.text
                ),
            ),
            "RandomState" => push(
                "D003",
                t,
                "`RandomState` seeds hashing from the OS — results would vary per process"
                    .to_owned(),
            ),
            // `env::var`, `env::var_os`, `env::vars` (not `env::args`,
            // which feeds the shared CLI).
            "env"
                if code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && code.get(i + 2).is_some_and(|a| a.is_punct(':')) =>
            {
                if let Some(m) = code.get(i + 3) {
                    if matches!(m.text.as_str(), "var" | "var_os" | "vars" | "vars_os") {
                        push(
                            "D003",
                            t,
                            format!(
                                "environment read `env::{}` — results must be a pure \
                                 function of CLI flags and seeds",
                                m.text
                            ),
                        );
                    }
                }
            }
            "from_entropy" | "thread_rng"
                if !rng_exempt && !prev.is_some_and(|p| p.is_ident("fn")) =>
            {
                push(
                    "D004",
                    t,
                    format!(
                        "`{}` constructs an RNG without an explicit seed — use \
                         `SmallRng::seed_from_u64(seed)`",
                        t.text
                    ),
                );
            }
            "Vec"
                if ctx.is_hot[i]
                    && code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && code.get(i + 3).is_some_and(|a| a.is_ident("new")) =>
            {
                push(
                    "D005",
                    t,
                    "`Vec::new()` in a `// lint: hot-path` function — reuse a caller-owned \
                     scratch buffer instead of allocating per call"
                        .to_owned(),
                );
            }
            "collect" | "to_vec" | "clone" if ctx.is_hot[i] && prev_is_dot && next_is_open => push(
                "D005",
                t,
                format!(
                    "`.{}()` in a `// lint: hot-path` function — per-cycle code must not \
                     allocate; borrow or reuse a scratch buffer",
                    t.text
                ),
            ),
            "unwrap" | "expect" if prev_is_dot && next_is_open => push(
                "P001",
                t,
                format!("`.{}()` in non-test code — return a Result instead", t.text),
            ),
            "panic" | "todo" | "unimplemented" if next_is_bang => push(
                "P002",
                t,
                format!("`{}!` in non-test code — return an error instead", t.text),
            ),
            "counter" | "gauge" | "histogram" if prev_is_dot && next_is_open => {
                if let Some(lit) = code.get(i + 2).filter(|l| l.kind == TokKind::Str) {
                    if !metric_name_ok(&lit.text) {
                        push(
                            "M001",
                            lit,
                            format!(
                                "metric name `{}` violates the `crate.section.name` \
                                 convention (>= 2 dot-separated `[a-z0-9_]+` segments)",
                                lit.text
                            ),
                        );
                    }
                    metrics.push(MetricSite {
                        name: lit.text.clone(),
                        krate: crate_of(path),
                        file: path.to_owned(),
                        line: lit.line,
                        col: lit.col,
                        waived: ctx.allowed("M002", lit.line),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// M001 shape: `seg(.seg)+` with every segment a non-empty `[a-z0-9_]+`.
#[must_use]
pub fn metric_name_ok(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// M002: the same metric name registered from two or more crates. The
/// first site (in path order) is treated as the owner; every site in a
/// different crate is a finding.
#[must_use]
pub fn check_metric_collisions(metrics: &[MetricSite]) -> Vec<Finding> {
    let mut by_name: BTreeMap<&str, Vec<&MetricSite>> = BTreeMap::new();
    for m in metrics.iter().filter(|m| !m.waived) {
        by_name.entry(&m.name).or_default().push(m);
    }
    let mut out = Vec::new();
    for (name, mut sites) in by_name {
        sites.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        let owner = &sites[0];
        for s in &sites[1..] {
            if s.krate != owner.krate {
                out.push(Finding::new(
                    &s.file,
                    s.line,
                    s.col,
                    "M002",
                    format!(
                        "metric `{name}` is already registered by crate `{}` \
                         ({}:{}) — cross-crate names must be unique",
                        owner.krate, owner.file, owner.line
                    ),
                ));
            }
        }
    }
    out
}

/// S001: a crate root must carry the inner attribute
/// `#![forbid(unsafe_code)]`.
#[must_use]
pub fn check_crate_root(path: &str, ctx: &FileContext) -> Vec<Finding> {
    let code = &ctx.code;
    let found = code.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if found {
        Vec::new()
    } else {
        vec![Finding::new(
            path,
            1,
            1,
            "S001",
            "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        )]
    }
}

/// S002: an experiment binary must call through `report::cli` so every
/// bin shares flags, error handling, and exit codes.
#[must_use]
pub fn check_bench_bin(path: &str, ctx: &FileContext) -> Vec<Finding> {
    let code = &ctx.code;
    let found = code.windows(4).any(|w| {
        w[0].is_ident("report") && w[1].is_punct(':') && w[2].is_punct(':') && w[3].is_ident("cli")
    });
    if found {
        Vec::new()
    } else {
        vec![Finding::new(
            path,
            1,
            1,
            "S002",
            "experiment binary does not route through `ia_bench::report::cli`".to_owned(),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_shapes() {
        assert!(metric_name_ok("dram.reads"));
        assert!(metric_name_ok("ctrl.reliability.faults_injected"));
        assert!(metric_name_ok("cache.l2.hits"));
        assert!(!metric_name_ok("reads"));
        assert!(!metric_name_ok("Dram.reads"));
        assert!(!metric_name_ok("dram..reads"));
        assert!(!metric_name_ok("dram.reads "));
        assert!(!metric_name_ok(""));
    }

    #[test]
    fn d005_fires_only_inside_hot_path_functions() {
        let src = "\
fn cold() -> Vec<u32> { Vec::new() }
// lint: hot-path
fn hot(xs: &[u32], ys: &[u32]) -> Vec<u32> {
    let a = Vec::new();
    let b: Vec<u32> = xs.iter().copied().collect();
    let c = xs.to_vec();
    let d = ys.clone();
    a
}
fn cold2(xs: &[u32]) -> Vec<u32> { xs.to_vec() }
";
        let ctx = FileContext::build("crates/x/src/lib.rs", crate::lexer::tokenize(src));
        let mut metrics = Vec::new();
        let found = check_file("crates/x/src/lib.rs", &ctx, &mut metrics);
        let d005: Vec<u32> = found
            .iter()
            .filter(|f| f.id == "D005")
            .map(|f| f.line)
            .collect();
        assert_eq!(
            d005,
            vec![4, 5, 6, 7],
            "one finding per allocation, hot fn only"
        );
    }

    #[test]
    fn check_file_is_raw_and_the_pipeline_applies_waivers() {
        let src = "\
// lint: hot-path
fn hot(xs: &[u32]) -> Vec<u32> {
    // lint: allow(D005, cold slow path of the fast function)
    xs.to_vec()
}
";
        let ctx = FileContext::build("crates/x/src/lib.rs", crate::lexer::tokenize(src));
        let mut metrics = Vec::new();
        let raw = check_file("crates/x/src/lib.rs", &ctx, &mut metrics);
        assert!(
            raw.iter().any(|f| f.id == "D005"),
            "raw findings ignore waivers (the pipeline needs them for W001)"
        );
        let filtered = crate::scan::analyze_source("crates/x/src/lib.rs", src, &mut metrics);
        assert!(filtered.iter().all(|f| f.id != "D005"));
    }

    #[test]
    fn catalog_ids_are_unique_and_sorted() {
        let ids: Vec<&str> = CATALOG.iter().map(|l| l.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "catalog must stay in unique ID order");
        assert!(info("P001").is_some());
        assert!(info("Z999").is_none());
    }
}
