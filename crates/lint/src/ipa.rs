//! Interprocedural passes over the workspace call graph: P003
//! (panic-reachability), D006 (determinism taint), H002 (transitive
//! hot-path allocation). Each finding carries a deterministic witness
//! call chain — entry first — so a reader can verify the path without
//! re-running the analysis.

use crate::context::FileContext;
use crate::graph::CallGraph;
use crate::lexer::TokKind;
use crate::lints::Finding;
use crate::parser::Item;
use std::collections::BTreeSet;

/// A parsed file as the scan pipeline holds it.
pub type ParsedFile = (String, FileContext, Vec<Item>);

/// Runs all graph lints. `files` must be in sorted path order.
#[must_use]
pub fn check_graph(files: &[ParsedFile], graph: &CallGraph) -> Vec<Finding> {
    let mut out = check_panic_reachability(files, graph);
    out.extend(check_determinism_taint(files, graph));
    out.extend(check_hot_closure_alloc(files, graph));
    out
}

/// A token site inside a function body, with the spelling that triggered
/// it (`.unwrap()`, `Instant::now`, …).
struct Site {
    what: String,
    line: u32,
    col: u32,
}

/// P003: panic-family sites transitively reachable from experiment
/// report entry points. Sites already waived for P001/P002 are skipped —
/// a local justification covers reachability too.
fn check_panic_reachability(files: &[ParsedFile], graph: &CallGraph) -> Vec<Finding> {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .filter(|n| is_report_entry(&n.file, &n.name, n.self_type.as_deref()))
        .map(|n| n.id)
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let parents = graph.bfs_parents(&entries);
    let mut out = Vec::new();
    for n in &graph.nodes {
        if parents[n.id].is_none() {
            continue;
        }
        let ctx = &files[n.file_idx].1;
        for site in panic_sites(ctx, n.body.clone()) {
            if ctx.allowed("P001", site.line)
                || ctx.allowed("P002", site.line)
                || ctx.allowed("P003", site.line)
            {
                continue;
            }
            let witness = graph.witness(&parents, n.id);
            let entry = witness.first().cloned().unwrap_or_default();
            out.push(Finding {
                file: n.file.clone(),
                line: site.line,
                col: site.col,
                id: "P003",
                message: format!(
                    "panic site `{}` is reachable from report entry `{entry}` — \
                     a panic here aborts the experiment mid-report",
                    site.what
                ),
                witness,
            });
        }
    }
    out
}

/// D006: wall-clock / environment / thread-identity reads reachable from
/// functions that write metric or report values. The sink is the witness
/// chain's head; the read is the finding site.
fn check_determinism_taint(files: &[ParsedFile], graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut claimed: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for sink in &graph.nodes {
        let ctx = &files[sink.file_idx].1;
        if !is_report_sink(ctx, sink.body.clone()) {
            continue;
        }
        let parents = graph.bfs_parents(&[sink.id]);
        for n in &graph.nodes {
            if parents[n.id].is_none() {
                continue;
            }
            let nctx = &files[n.file_idx].1;
            for site in taint_sources(nctx, n.body.clone()) {
                // First sink (in node order) wins; later sinks reaching
                // the same read add no information.
                if !claimed.insert((n.id, site.line, site.col)) {
                    continue;
                }
                out.push(Finding {
                    file: n.file.clone(),
                    line: site.line,
                    col: site.col,
                    id: "D006",
                    message: format!(
                        "nondeterministic read `{}` can flow into report output via \
                         `{}` — route it to stderr-only diagnostics or cut the call edge",
                        site.what, sink.qname
                    ),
                    witness: graph.witness(&parents, n.id),
                });
            }
        }
    }
    out
}

/// H002: allocation sites in the call closure of a hot-path-marked
/// function. (Spelling the literal marker in this comment would mark the
/// function below as hot — the context builder reads comments, not
/// attributes.) The hot function's own body stays D005's job; hot
/// callees are likewise covered by their own D005.
fn check_hot_closure_alloc(files: &[ParsedFile], graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut claimed: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for hot in graph.nodes.iter().filter(|n| n.is_hot) {
        let parents = graph.bfs_parents(&[hot.id]);
        for n in &graph.nodes {
            if n.id == hot.id || n.is_hot || parents[n.id].is_none() {
                continue;
            }
            let nctx = &files[n.file_idx].1;
            for site in alloc_sites(nctx, n.body.clone()) {
                if !claimed.insert((n.id, site.line, site.col)) {
                    continue;
                }
                out.push(Finding {
                    file: n.file.clone(),
                    line: site.line,
                    col: site.col,
                    id: "H002",
                    message: format!(
                        "`{}` allocates inside the call closure of hot-path fn \
                         `{}` — push the allocation out of the per-cycle path",
                        site.what, hot.qname
                    ),
                    witness: graph.witness(&parents, n.id),
                });
            }
        }
    }
    out
}

/// True for the workspace's report entry points: every experiment
/// module's `report()` and the shared CLI driver.
fn is_report_entry(file: &str, name: &str, self_type: Option<&str>) -> bool {
    if self_type.is_some() {
        return false;
    }
    (name == "report" && file.starts_with("crates/bench/src/exp"))
        || (name == "cli" && file == "crates/bench/src/report.rs")
}

/// True when the body registers metric values or builds report rows.
/// `runtime_metric` is deliberately absent: it is the designed
/// stderr-only diagnostics channel and never enters report bytes, so
/// timing may flow into it freely.
fn is_report_sink(ctx: &FileContext, body: std::ops::Range<usize>) -> bool {
    let code = &ctx.code;
    body.clone().any(|i| {
        let t = &code[i];
        t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "metric" | "param" | "row" | "columns" | "counter" | "gauge" | "histogram"
            )
            && i.checked_sub(1).is_some_and(|j| code[j].is_punct('.'))
            && code.get(i + 1).is_some_and(|x| x.is_punct('('))
    })
}

/// `.unwrap(` / `.expect(` / `panic!` / `todo!` / `unimplemented!`.
fn panic_sites(ctx: &FileContext, body: std::ops::Range<usize>) -> Vec<Site> {
    let code = &ctx.code;
    let mut out = Vec::new();
    for i in body {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i.checked_sub(1).is_some_and(|j| code[j].is_punct('.'));
        let next_open = code.get(i + 1).is_some_and(|x| x.is_punct('('));
        let next_bang = code.get(i + 1).is_some_and(|x| x.is_punct('!'));
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_open => out.push(Site {
                what: format!(".{}()", t.text),
                line: t.line,
                col: t.col,
            }),
            "panic" | "todo" | "unimplemented" if next_bang => out.push(Site {
                what: format!("{}!", t.text),
                line: t.line,
                col: t.col,
            }),
            _ => {}
        }
    }
    out
}

/// Wall-clock, environment, and thread-identity reads. Path-based D002
/// exemptions (ia-par) deliberately do *not* apply: a wall read is fine
/// as a diagnostic, but not once it can reach report bytes.
fn taint_sources(ctx: &FileContext, body: std::ops::Range<usize>) -> Vec<Site> {
    let code = &ctx.code;
    let mut out = Vec::new();
    for i in body {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let qualifies = |method: &str| {
            code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && code.get(i + 3).is_some_and(|m| m.is_ident(method))
        };
        let site = |what: String| Site {
            what,
            line: t.line,
            col: t.col,
        };
        match t.text.as_str() {
            "Instant" | "SystemTime" if qualifies("now") => {
                out.push(site(format!("{}::now", t.text)));
            }
            "env" => {
                for m in ["var", "var_os", "vars", "vars_os"] {
                    if qualifies(m) {
                        out.push(site(format!("env::{m}")));
                    }
                }
            }
            "thread" if qualifies("current") => out.push(site("thread::current".to_owned())),
            "available_parallelism" => out.push(site("available_parallelism".to_owned())),
            "ThreadId" => out.push(site("ThreadId".to_owned())),
            _ => {}
        }
    }
    out
}

/// The D005 allocation patterns: `Vec::new(`, `.collect(`, `.to_vec(`,
/// `.clone(`.
fn alloc_sites(ctx: &FileContext, body: std::ops::Range<usize>) -> Vec<Site> {
    let code = &ctx.code;
    let mut out = Vec::new();
    for i in body {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i.checked_sub(1).is_some_and(|j| code[j].is_punct('.'));
        let next_open = code.get(i + 1).is_some_and(|x| x.is_punct('('));
        match t.text.as_str() {
            "Vec"
                if code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && code.get(i + 3).is_some_and(|a| a.is_ident("new")) =>
            {
                out.push(Site {
                    what: "Vec::new()".to_owned(),
                    line: t.line,
                    col: t.col,
                });
            }
            "collect" | "to_vec" | "clone" if prev_dot && next_open => out.push(Site {
                what: format!(".{}()", t.text),
                line: t.line,
                col: t.col,
            }),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_items;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let loaded: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| {
                let ctx = FileContext::build(p, tokenize(s));
                let items = parse_items(&ctx.code);
                ((*p).to_owned(), ctx, items)
            })
            .collect();
        let graph = CallGraph::build(&loaded);
        check_graph(&loaded, &graph)
    }

    #[test]
    fn p003_reaches_through_crates_with_a_witness_chain() {
        let fs = run(&[
            (
                "crates/bench/src/exp99_demo.rs",
                "pub fn report(quick: bool) { ia_dram::step(quick); }",
            ),
            (
                "crates/dram/src/lib.rs",
                "pub fn step(q: bool) { inner(q); }
                 fn inner(q: bool) { VALUES.get(0).unwrap(); }",
            ),
        ]);
        let p003: Vec<&Finding> = fs.iter().filter(|f| f.id == "P003").collect();
        assert_eq!(p003.len(), 1);
        assert_eq!(p003[0].file, "crates/dram/src/lib.rs");
        assert_eq!(
            p003[0].witness,
            ["bench::exp99_demo::report", "dram::step", "dram::inner"]
        );
    }

    #[test]
    fn p003_skips_sites_with_local_panic_waivers() {
        let fs = run(&[(
            "crates/bench/src/exp99_demo.rs",
            "pub fn report(quick: bool) {
                 // lint: allow(P001, startup invariant)
                 VALUES.get(0).unwrap();
             }",
        )]);
        assert!(fs.iter().all(|f| f.id != "P003"));
    }

    #[test]
    fn p003_ignores_unreachable_panics() {
        let fs = run(&[
            (
                "crates/bench/src/exp99_demo.rs",
                "pub fn report(quick: bool) {}",
            ),
            (
                "crates/dram/src/lib.rs",
                "pub fn island() { VALUES.get(0).unwrap(); }",
            ),
        ]);
        assert!(fs.iter().all(|f| f.id != "P003"));
    }

    #[test]
    fn d006_traces_wall_clock_into_metric_writers() {
        let fs = run(&[(
            "crates/telemetry/src/lib.rs",
            "pub fn emit(reg: &mut Registry) {
                 reg.counter(\"x.y\", sample());
             }
             fn sample() -> u64 { wall() }
             fn wall() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
        )]);
        let d006: Vec<&Finding> = fs.iter().filter(|f| f.id == "D006").collect();
        assert_eq!(d006.len(), 1);
        assert_eq!(
            d006[0].witness,
            ["telemetry::emit", "telemetry::sample", "telemetry::wall"]
        );
        assert!(d006[0].message.contains("Instant::now"));
    }

    #[test]
    fn d006_quiet_when_reads_stay_off_report_paths() {
        let fs = run(&[(
            "crates/par/src/lib.rs",
            "pub fn diag() -> u64 { Instant::now().elapsed().as_nanos() as u64 }
             pub fn emit(reg: &mut Registry) { reg.counter(\"x.y\", 1); }",
        )]);
        assert!(fs.iter().all(|f| f.id != "D006"));
    }

    #[test]
    fn h002_extends_d005_to_callees_only() {
        let fs = run(&[(
            "crates/noc/src/lib.rs",
            "// lint: hot-path
             fn tick(&self) { route(); }
             fn route() -> Vec<u32> { Vec::new() }
             fn cold() -> Vec<u32> { Vec::new() }",
        )]);
        let h002: Vec<&Finding> = fs.iter().filter(|f| f.id == "H002").collect();
        assert_eq!(h002.len(), 1, "route() flagged, cold() not reachable");
        assert_eq!(h002[0].line, 3);
        assert!(h002[0].message.contains("noc::tick"));
    }
}
