//! Workspace traversal: find every `.rs` source, run the per-file lints,
//! then the cross-file passes.

use crate::context::FileContext;
use crate::lexer::tokenize;
use crate::lints::{
    check_bench_bin, check_crate_root, check_file, check_metric_collisions, Finding, MetricSite,
};
use std::io;
use std::path::{Path, PathBuf};

/// Top-level directories scanned under the workspace root.
const SCAN_DIRS: &[&str] = &["src", "crates", "tests", "examples"];

/// Path prefixes excluded from the scan: build output, and the lint
/// fixture corpus (which contains violations on purpose).
const SKIP_PREFIXES: &[&str] = &["target/", "crates/lint/tests/fixtures/"];

/// Result of a full workspace scan.
#[derive(Debug)]
pub struct Analysis {
    /// All findings surviving `lint: allow` waivers, sorted by
    /// `(file, line, col, id)`. Baseline gating happens separately.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// True when `path` is a crate root that must carry
/// `#![forbid(unsafe_code)]` (S001): `src/lib.rs` / `src/main.rs` of the
/// facade crate or of any `crates/<name>` member.
#[must_use]
pub fn is_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" || path == "src/main.rs" {
        return true;
    }
    let parts: Vec<&str> = path.split('/').collect();
    matches!(parts.as_slice(), ["crates", _, "src", "lib.rs" | "main.rs"])
}

/// True when `path` is an experiment binary that must route through
/// `ia_bench::report::cli` (S002).
#[must_use]
pub fn is_bench_bin(path: &str) -> bool {
    path.starts_with("crates/bench/src/bin/") && path.ends_with(".rs")
}

/// Recursively collects workspace-relative `.rs` paths, sorted so the
/// scan (and therefore every report) is order-deterministic.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn collect_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            walk(root, &d, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(rel) = relative(root, &path) else {
            continue;
        };
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` with `/` separators.
fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Lints one already-loaded source file. Exposed for fixture tests.
#[must_use]
pub fn analyze_source(path: &str, src: &str, metrics: &mut Vec<MetricSite>) -> Vec<Finding> {
    let ctx = FileContext::build(path, tokenize(src));
    let mut findings = check_file(path, &ctx, metrics);
    if is_crate_root(path) {
        findings.extend(check_crate_root(path, &ctx));
    }
    if is_bench_bin(path) {
        findings.extend(check_bench_bin(path, &ctx));
    }
    findings
}

/// Scans the workspace under `root` and runs the full catalog.
///
/// # Errors
///
/// Propagates I/O failures reading the tree.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let sources = collect_sources(root)?;
    let mut findings = Vec::new();
    let mut metrics: Vec<MetricSite> = Vec::new();
    for rel in &sources {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(analyze_source(rel, &src, &mut metrics));
    }
    findings.extend(check_metric_collisions(&metrics));
    findings.sort();
    Ok(Analysis {
        findings,
        files_scanned: sources.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_and_bin_classification() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/dram/src/lib.rs"));
        assert!(is_crate_root("crates/lint/src/main.rs"));
        assert!(!is_crate_root("crates/dram/src/module.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/exp02_rowclone.rs"));
        assert!(is_bench_bin("crates/bench/src/bin/exp02_rowclone.rs"));
        assert!(!is_bench_bin("crates/bench/src/report.rs"));
    }

    #[test]
    fn analyze_source_flags_and_waives() {
        let mut m = Vec::new();
        let bad = "fn f() { x.unwrap(); }";
        let f = analyze_source("crates/x/src/util.rs", bad, &mut m);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, "P001");
        let waived = "fn f() { x.unwrap(); // lint: allow(P001, test helper)\n}";
        assert!(analyze_source("crates/x/src/util.rs", waived, &mut m).is_empty());
    }
}
