//! Workspace traversal and the analysis pipeline: load every `.rs`
//! source, run per-file lints *raw*, build the call graph, run the
//! interprocedural passes, then apply `// lint: allow` waivers centrally
//! — which is what lets W001 flag the waivers that silenced nothing.

use crate::context::{path_is_testlike, FileContext};
use crate::graph::CallGraph;
use crate::ipa::{check_graph, ParsedFile};
use crate::lexer::tokenize;
use crate::lints::{
    check_bench_bin, check_crate_root, check_file, check_metric_collisions, Finding, MetricSite,
};
use crate::parser::parse_items;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// Top-level directories scanned under the workspace root.
const SCAN_DIRS: &[&str] = &["src", "crates", "tests", "examples"];

/// Path prefixes excluded from the scan: build output, and the lint
/// fixture corpus (which contains violations on purpose).
const SKIP_PREFIXES: &[&str] = &["target/", "crates/lint/tests/fixtures/"];

/// Result of a full workspace scan.
#[derive(Debug)]
pub struct Analysis {
    /// All findings surviving `lint: allow` waivers, sorted by
    /// `(file, line, col, id)`. Baseline gating happens separately.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// True when `path` is a crate root that must carry
/// `#![forbid(unsafe_code)]` (S001): `src/lib.rs` / `src/main.rs` of the
/// facade crate or of any `crates/<name>` member.
#[must_use]
pub fn is_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" || path == "src/main.rs" {
        return true;
    }
    let parts: Vec<&str> = path.split('/').collect();
    matches!(parts.as_slice(), ["crates", _, "src", "lib.rs" | "main.rs"])
}

/// True when `path` is an experiment binary that must route through
/// `ia_bench::report::cli` (S002).
#[must_use]
pub fn is_bench_bin(path: &str) -> bool {
    path.starts_with("crates/bench/src/bin/") && path.ends_with(".rs")
}

/// Recursively collects workspace-relative `.rs` paths, sorted so the
/// scan (and therefore every report) is order-deterministic.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn collect_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            walk(root, &d, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(rel) = relative(root, &path) else {
            continue;
        };
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` with `/` separators.
fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Lints one already-loaded source file with the **per-file** catalog
/// only (no call-graph lints, no W001 — those need the whole workspace;
/// see [`analyze_sources`]). Waivers are applied. Exposed for fixture
/// tests.
#[must_use]
pub fn analyze_source(path: &str, src: &str, metrics: &mut Vec<MetricSite>) -> Vec<Finding> {
    let ctx = FileContext::build(path, tokenize(src));
    let mut findings = file_raw(path, &ctx, metrics);
    findings.retain(|f| ctx.allow_line(f.id, f.line).is_none());
    findings
}

/// Per-file raw findings for `path`; M002 registration sites are
/// appended to `metrics` for the cross-file pass.
fn file_raw(path: &str, ctx: &FileContext, metrics: &mut Vec<MetricSite>) -> Vec<Finding> {
    let mut findings = check_file(path, ctx, metrics);
    if is_crate_root(path) {
        findings.extend(check_crate_root(path, ctx));
    }
    if is_bench_bin(path) {
        findings.extend(check_bench_bin(path, ctx));
    }
    findings
}

/// Runs the **full** pipeline — per-file lints, call graph,
/// interprocedural passes, central waiver filtering, W001 — over a set
/// of in-memory sources. This is what [`analyze`] uses; fixture tests
/// call it directly with synthetic multi-crate workspaces.
#[must_use]
pub fn analyze_sources(sources: &[(&str, &str)]) -> Vec<Finding> {
    let mut files: Vec<ParsedFile> = sources
        .iter()
        .map(|(path, src)| {
            let ctx = FileContext::build(path, tokenize(src));
            let items = parse_items(&ctx.code);
            ((*path).to_owned(), ctx, items)
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));

    // Phase 1: raw per-file findings + metric sites.
    let mut raw: Vec<Finding> = Vec::new();
    let mut metrics: Vec<MetricSite> = Vec::new();
    for (path, ctx, _) in &files {
        raw.extend(file_raw(path, ctx, &mut metrics));
    }
    raw.extend(check_metric_collisions(&metrics));

    // Phase 2: call graph + interprocedural lints (these pre-exclude
    // cross-lint-waived sites themselves; their own waivers are applied
    // by the central filter below, like everyone else's).
    let graph = CallGraph::build(&files);
    raw.extend(check_graph(&files, &graph));

    // Phase 3: central waiver filter. A waiver that suppresses at least
    // one raw finding — or excludes an M002 registration site — is
    // *used*; the rest are dead.
    let mut used: BTreeSet<(String, u32, String)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let ctx = files
            .iter()
            .find(|(p, _, _)| *p == f.file)
            .map(|(_, c, _)| c);
        match ctx.and_then(|c| c.allow_line(f.id, f.line)) {
            Some(at) => {
                used.insert((f.file.clone(), at, f.id.to_owned()));
            }
            None => findings.push(f),
        }
    }
    for m in metrics.iter().filter(|m| m.waived) {
        if let Some((path, ctx, _)) = files.iter().find(|(p, _, _)| *p == m.file) {
            if let Some(at) = ctx.allow_line("M002", m.line) {
                used.insert((path.clone(), at, "M002".to_owned()));
            }
        }
    }

    // Phase 4: W001 — declared waivers that silenced nothing. Waivers in
    // test-like files or covering test-context code are documentation,
    // not suppressions, and are skipped. A dead waiver can itself be
    // waived with `allow(W001, reason)` (one round; W001 waivers used
    // this way are not re-examined).
    for (path, ctx, _) in &files {
        if path_is_testlike(path) {
            continue;
        }
        for (&line, ids) in &ctx.allows {
            if ctx.waiver_covers_test_code(line) {
                continue;
            }
            for id in ids {
                if id == "W001" || used.contains(&(path.clone(), line, id.clone())) {
                    continue;
                }
                let f = Finding::new(
                    path,
                    line,
                    1,
                    "W001",
                    format!("`lint: allow({id}, …)` no longer silences any finding — delete it"),
                );
                if ctx.allow_line("W001", f.line).is_none() {
                    findings.push(f);
                }
            }
        }
    }

    findings.sort();
    findings
}

/// Scans the workspace under `root` and runs the full catalog.
///
/// # Errors
///
/// Propagates I/O failures reading the tree.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let sources = collect_sources(root)?;
    let mut loaded: Vec<(String, String)> = Vec::with_capacity(sources.len());
    for rel in &sources {
        loaded.push((rel.clone(), std::fs::read_to_string(root.join(rel))?));
    }
    let refs: Vec<(&str, &str)> = loaded
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    Ok(Analysis {
        findings: analyze_sources(&refs),
        files_scanned: sources.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_and_bin_classification() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/dram/src/lib.rs"));
        assert!(is_crate_root("crates/lint/src/main.rs"));
        assert!(!is_crate_root("crates/dram/src/module.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/exp02_rowclone.rs"));
        assert!(is_bench_bin("crates/bench/src/bin/exp02_rowclone.rs"));
        assert!(!is_bench_bin("crates/bench/src/report.rs"));
    }

    #[test]
    fn analyze_source_flags_and_waives() {
        let mut m = Vec::new();
        let bad = "fn f() { x.unwrap(); }";
        let f = analyze_source("crates/x/src/util.rs", bad, &mut m);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, "P001");
        let waived = "fn f() { x.unwrap(); // lint: allow(P001, test helper)\n}";
        assert!(analyze_source("crates/x/src/util.rs", waived, &mut m).is_empty());
    }

    #[test]
    fn dead_waivers_surface_as_w001_and_used_ones_do_not() {
        let findings = analyze_sources(&[(
            "crates/x/src/util.rs",
            "fn f() { x.unwrap(); // lint: allow(P001, justified)\n}\n\
             // lint: allow(D002, stale — the Instant read was removed)\n\
             fn g() {}",
        )]);
        let w001: Vec<&Finding> = findings.iter().filter(|f| f.id == "W001").collect();
        assert_eq!(w001.len(), 1, "{findings:?}");
        assert_eq!(w001[0].line, 3);
        assert!(w001[0].message.contains("D002"));
        assert!(
            findings.iter().all(|f| f.id != "P001"),
            "waiver still works"
        );
    }

    #[test]
    fn w001_skips_waivers_on_test_code_and_can_itself_be_waived() {
        let findings = analyze_sources(&[(
            "crates/x/src/util.rs",
            "#[cfg(test)]\nmod tests {\n    // lint: allow(P001, fixture)\n    fn h() {}\n}\n\
             // lint: allow(D004, kept while the refactor lands) lint: allow(W001, see issue 12)\n\
             fn g() {}",
        )]);
        assert!(
            findings.iter().all(|f| f.id != "W001"),
            "test-context + W001-waived declarations stay quiet: {findings:?}"
        );
    }

    #[test]
    fn m002_waivers_count_as_used() {
        let findings = analyze_sources(&[
            (
                "crates/a/src/lib.rs",
                "fn a(reg: &mut R) { reg.counter(\"dram.reads\", 1); }",
            ),
            (
                "crates/b/src/lib.rs",
                "fn b(reg: &mut R) {
                     // lint: allow(M002, re-export of the dram counter)
                     reg.counter(\"dram.reads\", 1);
                 }",
            ),
        ]);
        assert!(findings.iter().all(|f| f.id != "M002"), "{findings:?}");
        assert!(findings.iter().all(|f| f.id != "W001"), "{findings:?}");
    }
}
