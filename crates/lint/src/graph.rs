//! Workspace symbol table and conservative call graph.
//!
//! Built on the item parser: every non-test `fn` in the workspace
//! becomes a node, and call *edges* are resolved by name plus a
//! receiver-type heuristic — no real type inference:
//!
//! * `free(x)` — edges to free functions named `free`, preferring
//!   same-file definitions (an unqualified call cannot leave its
//!   module).
//! * `recv.method(x)` — the receiver's type comes from a best-effort
//!   type environment: fn parameters, `let x: T` annotations,
//!   `let x = Type::ctor(..)` constructors, and — for
//!   `self.field.method()` — the enclosing type's struct field
//!   declarations. A known workspace type resolves to its own methods,
//!   its traits' default bodies, and (when the receiver *is* a trait)
//!   every implementor's method. A known type *without* the method is a
//!   std/derived call — no edge. An unknown receiver over-approximates
//!   to every workspace method of that name, except ubiquitous std
//!   names (`map`, `iter`, `len`, …) which would drown the graph in
//!   false edges and are dropped instead.
//! * `Type::method(x)` — the same typed lookup; falls back to free
//!   functions (`module::helper(..)` paths), then — for unknown
//!   non-std qualifiers such as generic parameters — to every method
//!   of that name.
//!
//! The result still over-approximates real calls (the interprocedural
//! lints must not miss paths through workspace code) while staying
//! deterministic: nodes are numbered in sorted-file / source order and
//! adjacency lists are sorted, so every BFS — and therefore every
//! witness chain — is byte-stable across runs.

use crate::context::FileContext;
use crate::lexer::{Tok, TokKind};
use crate::lints::crate_of;
use crate::parser::{Item, ItemKind};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Node index (position in [`CallGraph::nodes`]).
    pub id: usize,
    /// Bare function name.
    pub name: String,
    /// Qualified name for witness chains:
    /// `crate::file_stem::mods::Type::name` with redundant segments
    /// (`lib`, `main`, `mod`) dropped.
    pub qname: String,
    /// File the function lives in (workspace-relative).
    pub file: String,
    /// Index of that file in the scan's sorted file list.
    pub file_idx: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the signature (item start through body open) —
    /// mined for parameter types.
    pub sig: Range<usize>,
    /// Token range of the body within the file's code tokens.
    pub body: Range<usize>,
    /// Enclosing impl type, when the fn is a method.
    pub self_type: Option<String>,
    /// The fn sits under a hot-path marker comment.
    pub is_hot: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, in deterministic order.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` — sorted, deduplicated callee ids of node `i`.
    pub edges: Vec<Vec<usize>>,
}

/// Workspace type declarations: struct fields and trait/impl relations,
/// mined from the item trees for receiver typing.
#[derive(Debug, Default)]
struct TypeInfo {
    /// Struct name → field name → field type's outermost identifier.
    fields: BTreeMap<String, BTreeMap<String, String>>,
    /// Type name → traits it implements.
    impls_of: BTreeMap<String, Vec<String>>,
    /// Trait name → implementing types.
    implementors: BTreeMap<String, Vec<String>>,
    /// Every workspace-declared type and trait name.
    known: BTreeSet<String>,
}

impl TypeInfo {
    fn collect(files: &[(String, FileContext, Vec<Item>)]) -> TypeInfo {
        let mut info = TypeInfo::default();
        for (_, ctx, items) in files {
            info.walk(items, &ctx.code);
        }
        info
    }

    fn walk(&mut self, items: &[Item], code: &[Tok]) {
        for it in items {
            match it.kind {
                ItemKind::Struct => {
                    self.known.insert(it.name.clone());
                    if let Some(b) = &it.body {
                        let fs = self.fields.entry(it.name.clone()).or_default();
                        for (f, ty) in bindings(code, b.clone()) {
                            fs.insert(f, ty);
                        }
                    }
                }
                ItemKind::Trait => {
                    self.known.insert(it.name.clone());
                    self.walk(&it.children, code);
                }
                ItemKind::Impl => {
                    if it.name != "?" {
                        self.known.insert(it.name.clone());
                        if let Some(tr) = &it.of_trait {
                            self.impls_of
                                .entry(it.name.clone())
                                .or_default()
                                .push(tr.clone());
                            self.implementors
                                .entry(tr.clone())
                                .or_default()
                                .push(it.name.clone());
                        }
                    }
                    self.walk(&it.children, code);
                }
                ItemKind::Mod => self.walk(&it.children, code),
                ItemKind::Fn | ItemKind::Use => {}
            }
        }
    }

    /// All methods callable as `ty.name(..)` through workspace
    /// declarations: the type's own impls, its traits' default bodies,
    /// and — when `ty` is a trait — every implementor.
    fn lookup(
        &self,
        typed: &BTreeMap<(&str, &str), Vec<usize>>,
        ty: &str,
        name: &str,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(v) = typed.get(&(ty, name)) {
            out.extend(v);
        }
        for tr in self.impls_of.get(ty).into_iter().flatten() {
            if let Some(v) = typed.get(&(tr.as_str(), name)) {
                out.extend(v);
            }
        }
        for imp in self.implementors.get(ty).into_iter().flatten() {
            if let Some(v) = typed.get(&(imp.as_str(), name)) {
                out.extend(v);
            }
        }
        out
    }
}

impl CallGraph {
    /// Builds the graph for a set of parsed files. `files` must be in
    /// sorted path order (the scan guarantees it) so node ids — and
    /// witness chains — are deterministic.
    #[must_use]
    pub fn build(files: &[(String, FileContext, Vec<Item>)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (file_idx, (path, ctx, items)) in files.iter().enumerate() {
            let stem = file_stem(path);
            let mut prefix = vec![crate_of(path)];
            if !matches!(stem.as_str(), "lib" | "main" | "mod") {
                prefix.push(stem);
            }
            collect_fns(&mut g, path, file_idx, ctx, items, &prefix, None);
        }
        g.resolve_edges(files);
        g
    }

    /// Looks up nodes by exact qualified name (diagnostic helper).
    #[must_use]
    pub fn find(&self, qname: &str) -> Option<&FnNode> {
        self.nodes.iter().find(|n| n.qname == qname)
    }

    /// Multi-source BFS from `starts` (node ids): returns, per node, the
    /// predecessor on a shortest path back to a start (`usize::MAX` for
    /// a start itself, `None` when unreachable). FIFO order over sorted
    /// starts and sorted adjacency makes the tree — and every witness
    /// chain read off it — deterministic.
    #[must_use]
    pub fn bfs_parents(&self, starts: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut sorted = starts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &s in &sorted {
            if s < self.nodes.len() && parent[s].is_none() {
                parent[s] = Some(usize::MAX);
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if parent[m].is_none() {
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Reads the witness chain for `node` off a [`Self::bfs_parents`]
    /// tree: qualified names from the BFS start down to `node`. Empty
    /// when `node` was not reached.
    #[must_use]
    pub fn witness(&self, parents: &[Option<usize>], node: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = node;
        loop {
            match parents.get(cur).copied().flatten() {
                None => return Vec::new(),
                Some(usize::MAX) => {
                    chain.push(self.nodes[cur].qname.clone());
                    chain.reverse();
                    return chain;
                }
                Some(prev) => {
                    chain.push(self.nodes[cur].qname.clone());
                    cur = prev;
                    if chain.len() > self.nodes.len() {
                        return Vec::new(); // cycle guard; cannot happen in a BFS tree
                    }
                }
            }
        }
    }

    /// Resolves call edges for every node (see module docs for the
    /// heuristic).
    fn resolve_edges(&mut self, files: &[(String, FileContext, Vec<Item>)]) {
        // Name → node-id indices. Free functions and methods resolve
        // through different maps; `(type, name)` pins `Type::method`.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for n in &self.nodes {
            match &n.self_type {
                Some(ty) => {
                    methods.entry(&n.name).or_default().push(n.id);
                    typed.entry((ty, &n.name)).or_default().push(n.id);
                }
                None => free.entry(&n.name).or_default().push(n.id),
            }
        }
        let info = TypeInfo::collect(files);
        self.edges = vec![Vec::new(); self.nodes.len()];
        for n in 0..self.nodes.len() {
            let node = &self.nodes[n];
            let ctx = &files[node.file_idx].1;
            let code = &ctx.code;
            let env = type_env(node, code);
            let mut out: Vec<usize> = Vec::new();
            for i in node.body.clone() {
                let t = &code[i];
                if t.kind != TokKind::Ident || !code.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                    continue;
                }
                let name = t.text.as_str();
                let p1 = i.checked_sub(1).map(|j| &code[j]);
                if p1.is_some_and(|p| p.is_punct('.')) {
                    // `recv.name(` — method call.
                    match receiver_type(node, code, i, &env, &info) {
                        Some(ty) => {
                            let ty = if ty == "Self" {
                                node.self_type.clone().unwrap_or(ty)
                            } else {
                                ty
                            };
                            let resolved = info.lookup(&typed, &ty, name);
                            if !resolved.is_empty() {
                                out.extend(resolved);
                            } else if !info.known.contains(&ty) && !is_std_method(name) {
                                // An out-of-workspace receiver type
                                // (std, generic): fall back by name. A
                                // *known* type without the method is a
                                // std/derived call — no edge.
                                if let Some(ms) = methods.get(name) {
                                    out.extend(ms);
                                }
                            }
                        }
                        None => {
                            if !is_std_method(name) {
                                if let Some(ms) = methods.get(name) {
                                    out.extend(ms);
                                }
                            }
                        }
                    }
                } else if p1.is_some_and(|p| p.is_punct(':'))
                    && i.checked_sub(2)
                        .map(|j| &code[j])
                        .is_some_and(|p| p.is_punct(':'))
                {
                    // `Qual::name(` — the qualifier is the ident before
                    // the `::` (generic turbofish qualifiers stay
                    // unresolved).
                    let qual = i.checked_sub(3).map(|j| &code[j]);
                    let qual_name = match qual {
                        Some(q) if q.is_ident("Self") => node.self_type.clone(),
                        Some(q) if q.kind == TokKind::Ident => Some(q.text.clone()),
                        _ => None,
                    };
                    if let Some(q) = qual_name {
                        let resolved = info.lookup(&typed, &q, name);
                        if !resolved.is_empty() {
                            out.extend(resolved);
                        } else if let Some(fs) = free.get(name) {
                            // `module::helper(` — the qualifier is a
                            // module path segment.
                            out.extend(fs);
                        } else if !info.known.contains(&q) && !is_std_method(name) {
                            // `C::method(x)` through a generic
                            // parameter — over-approximate by name.
                            if let Some(ms) = methods.get(name) {
                                out.extend(ms);
                            }
                        }
                    }
                } else if !p1.is_some_and(|p| p.is_ident("fn") || p.kind == TokKind::Ident) {
                    // Plain `name(` — free-function call. (An ident
                    // before it would be a declaration or `fn name(`.)
                    // Same-file definitions shadow the global namespace:
                    // every experiment module defines its own `outcome`,
                    // and an unqualified call cannot leave the module.
                    if let Some(fs) = free.get(name) {
                        let local: Vec<usize> = fs
                            .iter()
                            .copied()
                            .filter(|&m| self.nodes[m].file_idx == node.file_idx)
                            .collect();
                        out.extend(if local.is_empty() { fs } else { &local });
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out.retain(|&m| m != n); // self-loops add nothing to reachability
            self.edges[n] = out;
        }
    }
}

/// Best-effort receiver type for the method call whose name token is at
/// `i` (so `code[i - 1]` is the `.`): literal `self`, `self.field` with
/// a declared struct field, or a local with a known binding. `None`
/// means the receiver could not be typed (chained calls, literals,
/// untracked locals).
fn receiver_type(
    node: &FnNode,
    code: &[Tok],
    i: usize,
    env: &BTreeMap<String, String>,
    info: &TypeInfo,
) -> Option<String> {
    let r = i.checked_sub(2)?;
    let t = &code[r];
    if t.is_ident("self") {
        return node.self_type.clone();
    }
    if t.kind != TokKind::Ident {
        return None;
    }
    if r.checked_sub(1)
        .map(|j| &code[j])
        .is_some_and(|p| p.is_punct('.'))
    {
        // `x.field.name(` — only `self.field` is typed, through the
        // enclosing type's struct declaration.
        if r.checked_sub(2)
            .map(|j| &code[j])
            .is_some_and(|s| s.is_ident("self"))
        {
            let st = node.self_type.as_ref()?;
            return info.fields.get(st)?.get(&t.text).cloned();
        }
        return None;
    }
    if r.checked_sub(1)
        .map(|j| &code[j])
        .is_some_and(|p| p.is_punct(':'))
    {
        return None; // `path::CONST.name(` — not a local
    }
    env.get(&t.text).cloned()
}

/// Builds the local type environment for one function: parameter
/// bindings from the signature, `let x: T` annotations, and
/// `let x = Type::ctor(..)` constructor calls. Later bindings shadow
/// earlier ones, approximating scope.
fn type_env(node: &FnNode, code: &[Tok]) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    // Parameters: the list between the first `(` at generic depth 0
    // after the `fn` keyword and its matching closer.
    let mut k = node.sig.start;
    while k < node.sig.end && !code[k].is_ident("fn") {
        k += 1;
    }
    let mut angle = 0i64;
    let mut open = None;
    while k < node.sig.end {
        let t = &code[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && angle > 0 {
            angle -= 1;
        } else if t.is_punct('(') && angle == 0 {
            open = Some(k);
            break;
        }
        k += 1;
    }
    if let Some(open) = open {
        let close = close_of(code, open, node.sig.end, '(', ')');
        for (name, ty) in bindings(code, open + 1..close.saturating_sub(1).max(open + 1)) {
            env.insert(name, ty);
        }
    }
    // `let` bindings in the body.
    let mut i = node.body.start;
    while i < node.body.end {
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(nm) = code.get(j).filter(|t| t.kind == TokKind::Ident) {
                if code.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                    // `let x: T = ..` — the type runs to the `=` / `;`.
                    let mut k = j + 2;
                    let (mut depth, mut angle) = (0i64, 0i64);
                    while k < node.body.end {
                        let t = &code[k];
                        if t.is_punct('(') || t.is_punct('[') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            depth -= 1;
                        } else if t.is_punct('<') {
                            angle += 1;
                        } else if t.is_punct('>') && angle > 0 {
                            angle -= 1;
                        } else if (t.is_punct('=') || t.is_punct(';')) && depth == 0 && angle == 0 {
                            break;
                        }
                        k += 1;
                    }
                    if let Some(ty) = last_type_ident(code, j + 2..k) {
                        env.insert(nm.text.clone(), ty);
                    }
                } else if code.get(j + 1).is_some_and(|t| t.is_punct('='))
                    && code.get(j + 3).is_some_and(|t| t.is_punct(':'))
                    && code.get(j + 4).is_some_and(|t| t.is_punct(':'))
                {
                    // `let x = Type::ctor(..)` — constructor heuristic;
                    // a lowercase qualifier is a module, not a type.
                    if let Some(t0) = code.get(j + 2).filter(|t| {
                        t.kind == TokKind::Ident
                            && t.text.chars().next().is_some_and(char::is_uppercase)
                    }) {
                        env.insert(nm.text.clone(), t0.text.clone());
                    }
                }
            }
            i = j;
        }
        i += 1;
    }
    env
}

/// Splits `code[r]` at top-level commas and yields the `name: Type`
/// binding of each segment — shared by fn-parameter lists and struct
/// field lists.
fn bindings(code: &[Tok], r: Range<usize>) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let (mut depth, mut angle) = (0i64, 0i64);
    let mut seg = r.start;
    for k in r.start..=r.end {
        let split = k == r.end || {
            let t = &code[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 {
                angle -= 1;
            }
            t.is_punct(',') && depth == 0 && angle == 0
        };
        if split {
            if let Some(b) = binding_of(code, seg..k) {
                out.push(b);
            }
            seg = k + 1;
        }
    }
    out
}

/// `name: some::path::Type<..>` → `(name, Type)`. The first depth-0
/// colon preceded by an identifier binds; `self` receivers, patterns,
/// and attribute segments yield nothing.
fn binding_of(code: &[Tok], r: Range<usize>) -> Option<(String, String)> {
    let (mut depth, mut angle) = (0i64, 0i64);
    for k in r.clone() {
        let t = &code[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && angle > 0 {
            angle -= 1;
        } else if t.is_punct(':') && depth == 0 && angle == 0 {
            if code.get(k + 1).is_some_and(|n| n.is_punct(':')) {
                return None; // a `path::` before any binding colon
            }
            let name = k
                .checked_sub(1)
                .filter(|&p| p >= r.start)
                .map(|p| &code[p])
                .filter(|t| t.kind == TokKind::Ident && !t.is_ident("self"))?;
            let ty = last_type_ident(code, k + 1..r.end)?;
            return Some((name.text.clone(), ty));
        }
    }
    None
}

/// The outermost type constructor of a type expression: the last
/// identifier at angle/paren/bracket depth 0, skipping sigil keywords.
/// `&'a mut Vec<Request>` → `Vec`; `&mut dyn Clocked` → `Clocked`;
/// `foo::Bar` → `Bar`.
fn last_type_ident(code: &[Tok], r: Range<usize>) -> Option<String> {
    let (mut depth, mut angle) = (0i64, 0i64);
    let mut name = None;
    for t in code.get(r)? {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if angle > 0 {
                angle -= 1;
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if angle == 0
            && depth == 0
            && t.kind == TokKind::Ident
            && !matches!(
                t.text.as_str(),
                "dyn" | "mut" | "ref" | "impl" | "const" | "pub" | "crate" | "super" | "self"
            )
        {
            name = Some(t.text.clone());
        }
    }
    name
}

/// Index one past the matching closer for the opener at `open` (or
/// `end`).
fn close_of(code: &[Tok], open: usize, end: usize, o: char, c: char) -> usize {
    let mut depth = 0i64;
    let mut k = open;
    while k < end {
        let t = &code[k];
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    end
}

/// Method names so ubiquitous in std that an edge from an *unknown*
/// receiver would be noise: a workspace method that happens to share
/// the name (`map`, `iter`, …) is almost never the callee. Calls whose
/// receiver types to a workspace declaration still resolve to such
/// methods. Sorted for binary search (asserted by a test).
const STD_METHOD_NAMES: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_mut_slice",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "borrow",
    "borrow_mut",
    "by_ref",
    "bytes",
    "ceil",
    "chain",
    "char_indices",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "count",
    "count_ones",
    "dedup",
    "div_euclid",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "leading_zeros",
    "len",
    "lines",
    "ln",
    "lock",
    "log2",
    "map",
    "map_or",
    "map_or_else",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "partition_point",
    "peek",
    "peekable",
    "pop",
    "position",
    "pow",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "read_line",
    "read_to_string",
    "rem_euclid",
    "remove",
    "repeat",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "rotate_left",
    "rotate_right",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "signum",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "split",
    "split_at",
    "split_first",
    "split_last",
    "split_whitespace",
    "splitn",
    "sqrt",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_ascii_lowercase",
    "to_be_bytes",
    "to_le_bytes",
    "to_lowercase",
    "to_owned",
    "to_string",
    "to_uppercase",
    "to_vec",
    "trailing_zeros",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "write",
    "write_all",
    "write_fmt",
    "write_str",
    "zip",
];

fn is_std_method(name: &str) -> bool {
    STD_METHOD_NAMES.binary_search(&name).is_ok()
}

/// Recursively collects `fn` items into graph nodes.
fn collect_fns(
    g: &mut CallGraph,
    path: &str,
    file_idx: usize,
    ctx: &FileContext,
    items: &[Item],
    prefix: &[String],
    self_type: Option<&str>,
) {
    for it in items {
        match it.kind {
            ItemKind::Fn => {
                let Some(body) = it.body.clone() else {
                    continue; // trait-method signature: no code to scan
                };
                // Skip test functions entirely: they may panic/allocate
                // at will and must not create reachability.
                if ctx.is_test.get(it.toks.start).copied().unwrap_or(false) {
                    continue;
                }
                let mut q = prefix.join("::");
                if let Some(ty) = self_type {
                    q.push_str("::");
                    q.push_str(ty);
                }
                q.push_str("::");
                q.push_str(&it.name);
                let id = g.nodes.len();
                g.nodes.push(FnNode {
                    id,
                    name: it.name.clone(),
                    qname: q,
                    file: path.to_owned(),
                    file_idx,
                    line: it.line,
                    is_hot: ctx.is_hot.get(body.start).copied().unwrap_or(false)
                        || ctx.is_hot.get(it.toks.start).copied().unwrap_or(false),
                    sig: it.toks.start..body.start,
                    body,
                    self_type: self_type.map(str::to_owned),
                });
            }
            ItemKind::Mod => {
                let mut p = prefix.to_vec();
                if it.name != "?" {
                    p.push(it.name.clone());
                }
                collect_fns(g, path, file_idx, ctx, &it.children, &p, self_type);
            }
            ItemKind::Impl => {
                let ty = if it.name == "?" {
                    None
                } else {
                    Some(it.name.as_str())
                };
                collect_fns(g, path, file_idx, ctx, &it.children, prefix, ty);
            }
            ItemKind::Trait => {
                // Default method bodies are real code; qualify by trait.
                let ty = if it.name == "?" {
                    None
                } else {
                    Some(it.name.as_str())
                };
                collect_fns(g, path, file_idx, ctx, &it.children, prefix, ty);
            }
            ItemKind::Struct | ItemKind::Use => {}
        }
    }
}

/// `crates/dram/src/scheduler/mod.rs` → `mod`; `src/lib.rs` → `lib`.
fn file_stem(path: &str) -> String {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_items;

    fn build(files: &[(&str, &str)]) -> CallGraph {
        let loaded: Vec<(String, FileContext, Vec<Item>)> = files
            .iter()
            .map(|(p, s)| {
                let ctx = FileContext::build(p, tokenize(s));
                let items = parse_items(&ctx.code);
                ((*p).to_owned(), ctx, items)
            })
            .collect();
        CallGraph::build(&loaded)
    }

    fn edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let f = g.find(from).expect("from node");
        let t = g.find(to).expect("to node");
        g.edges[f.id].contains(&t.id)
    }

    #[test]
    fn std_method_names_are_sorted_for_binary_search() {
        assert!(STD_METHOD_NAMES.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn free_method_and_qualified_calls_resolve() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub struct S;
             impl S {
                 pub fn method(&self) { helper(); self.other(); }
                 pub fn other(&self) {}
             }
             pub fn helper() {}
             pub fn entry(s: &S) { s.method(); S::other(&s); }",
        )]);
        assert!(edge(&g, "a::S::method", "a::helper"));
        assert!(edge(&g, "a::S::method", "a::S::other"), "self.other()");
        assert!(edge(&g, "a::entry", "a::S::method"), "typed receiver");
        assert!(edge(&g, "a::entry", "a::S::other"), "Type::method");
        assert!(!edge(&g, "a::helper", "a::entry"), "no reverse edges");
    }

    #[test]
    fn cross_file_calls_resolve_and_qnames_carry_stems() {
        let g = build(&[
            (
                "crates/a/src/util.rs",
                "pub fn shared() { crate::deep::target(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "mod deep { pub fn target() {} }
                 pub fn go() { shared(); }",
            ),
        ]);
        assert!(edge(&g, "b::go", "a::util::shared"));
        assert!(edge(&g, "a::util::shared", "b::deep::target"));
    }

    #[test]
    fn field_receivers_resolve_through_struct_decls() {
        // `self.agent.observe(..)` must reach Agent's observe only —
        // not every workspace method of that name.
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Sched { agent: Agent }
                 impl Sched { pub fn go(&mut self) { self.agent.observe(1); } }
                 pub struct Agent;
                 impl Agent { pub fn observe(&mut self, x: u32) { let _ = x; } }",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct Other;
                 impl Other { pub fn observe(&mut self, x: u32) { let _ = x; } }",
            ),
        ]);
        assert!(edge(&g, "a::Sched::go", "a::Agent::observe"));
        assert!(!edge(&g, "a::Sched::go", "b::Other::observe"));
    }

    #[test]
    fn std_names_on_unknown_receivers_make_no_edges() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub struct W;
             impl W {
                 pub fn map(&self) {}
                 pub fn iter(&self) {}
             }
             pub fn go(xs: &[u32]) -> usize { xs.iter().map(|x| x).count() }",
        )]);
        let go = g.find("a::go").expect("go").id;
        assert!(g.edges[go].is_empty(), "std iterator names stay std");
    }

    #[test]
    fn known_type_without_the_method_gets_no_edge() {
        // `p.clone()` on a workspace type without a `clone` method is a
        // derived impl — not a call to some other type's `clone`.
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub struct P;
             impl P { pub fn real(&self) {} }
             pub struct Q;
             impl Q { pub fn fire(&self) {} }
             pub fn go(p: &P) { let _ = p.clone(); p.real(); }",
        )]);
        assert!(edge(&g, "a::go", "a::P::real"));
        let go = g.find("a::go").expect("go").id;
        let fire = g.find("a::Q::fire").expect("fire").id;
        assert!(!g.edges[go].contains(&fire));
    }

    #[test]
    fn trait_receivers_fan_out_to_implementors() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub trait Clocked { fn tick(&mut self); fn warm(&mut self) { self.tick(); } }
             pub struct A; impl Clocked for A { fn tick(&mut self) {} }
             pub struct B; impl Clocked for B { fn tick(&mut self) {} }
             pub fn drive(c: &mut dyn Clocked) { c.tick(); }",
        )]);
        assert!(edge(&g, "a::drive", "a::A::tick"));
        assert!(edge(&g, "a::drive", "a::B::tick"));
        // A trait-default body reaches every implementor too.
        assert!(edge(&g, "a::Clocked::warm", "a::A::tick"));
    }

    #[test]
    fn let_bindings_type_their_receivers() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Queue;
                 impl Queue {
                     pub fn new() -> Queue { Queue }
                     pub fn req(&self, h: usize) { let _ = h; }
                 }
                 pub fn go() { let q = Queue::new(); q.req(3); }
                 pub fn annotated() { let q2: Queue = make(); q2.req(4); }
                 pub fn make() -> Queue { Queue }",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct R;
                 impl R { pub fn req(&self, h: usize) { let _ = h; } }",
            ),
        ]);
        assert!(edge(&g, "a::go", "a::Queue::new"));
        assert!(edge(&g, "a::go", "a::Queue::req"));
        assert!(edge(&g, "a::annotated", "a::Queue::req"));
        assert!(!edge(&g, "a::go", "b::R::req"));
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub fn live() {}
             #[cfg(test)]
             mod tests { #[test] fn case() { live(); } }",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].qname, "a::live");
    }

    #[test]
    fn hot_markers_reach_graph_nodes() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "// lint: hot-path\nfn hot() {}\nfn cold() {}",
        )]);
        assert!(g.find("a::hot").expect("hot").is_hot);
        assert!(!g.find("a::cold").expect("cold").is_hot);
    }

    #[test]
    fn bfs_witness_chains_are_shortest_and_deterministic() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { mid(); deep1(); }
             fn mid() { deep1(); }
             fn deep1() { deep2(); }
             fn deep2() {}",
        )]);
        let entry = g.find("a::entry").expect("entry").id;
        let parents = g.bfs_parents(&[entry]);
        let d2 = g.find("a::deep2").expect("deep2").id;
        let chain = g.witness(&parents, d2);
        // Shortest path skips `mid`: entry -> deep1 -> deep2.
        assert_eq!(chain, ["a::entry", "a::deep1", "a::deep2"]);
        for _ in 0..8 {
            assert_eq!(g.witness(&g.bfs_parents(&[entry]), d2), chain);
        }
    }

    #[test]
    fn macro_invocations_do_not_create_edges() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub fn print() {}
             pub fn go() { println!(\"x\"); }",
        )]);
        let go = g.find("a::go").expect("go").id;
        assert!(g.edges[go].is_empty(), "println! is not a call to print");
    }
}
