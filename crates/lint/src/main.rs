//! `ia-lint` CLI: the workspace determinism & invariant gate.
//!
//! ```text
//! cargo run -q -p ia-lint -- --check            # CI gate (text output)
//! cargo run -q -p ia-lint -- --json             # machine-readable output
//! cargo run -q -p ia-lint -- --write-baseline   # ratchet after a burn-down
//! cargo run -q -p ia-lint -- --list             # print the lint catalog
//! ```
//!
//! Exit codes: `0` clean, `1` new findings or stale baseline entries,
//! `2` usage or I/O error.

#![forbid(unsafe_code)]

use ia_lint::{analyze, Baseline, CATALOG};
use std::path::PathBuf;

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    list: bool,
}

fn usage() -> &'static str {
    "usage: ia-lint [--check] [--json] [--write-baseline] [--list] \
     [--root <dir>] [--baseline <file>]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        write_baseline: false,
        list: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {}
            "--json" => opts.json = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list" => opts.list = true,
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root expects a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--baseline" => {
                i += 1;
                let file = args.get(i).ok_or("--baseline expects a file")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    std::process::exit(run(&opts));
}

fn run(opts: &Options) -> i32 {
    if opts.list {
        for l in CATALOG {
            println!("{}  {:32} {}", l.id, l.name, normalize_ws(l.summary));
        }
        return 0;
    }
    if !opts.root.join("crates").is_dir() {
        eprintln!(
            "error: `{}` does not look like the workspace root (no crates/ directory); \
             pass --root",
            opts.root.display()
        );
        return 2;
    }
    let analysis = match analyze(&opts.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: scanning workspace: {e}");
            return 2;
        }
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.baseline"));

    if opts.write_baseline {
        let text = Baseline::render(&analysis.findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "ia-lint: wrote {} covering {} finding(s) across {} file(s) scanned",
            baseline_path.display(),
            analysis.findings.len(),
            analysis.files_scanned
        );
        return 0;
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let gated = baseline.apply(&analysis.findings);
    if opts.json {
        print!("{}", ia_lint::output::json(&gated, analysis.files_scanned));
    } else {
        print!("{}", ia_lint::output::text(&gated, analysis.files_scanned));
    }
    i32::from(!gated.is_clean())
}

/// Loads the baseline; a missing file means "nothing grandfathered".
fn load_baseline(path: &std::path::Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Collapses the multi-line catalog summaries for one-line `--list` rows.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
