//! # ia-lint — workspace determinism & invariant checker
//!
//! Every headline number in this reproduction rests on one property:
//! reports are byte-identical across `--threads`, seeds, and hosts.
//! `ia-lint` enforces that property (and a few adjacent invariants)
//! *statically*, with its own lightweight string/char/comment-aware Rust
//! token scanner — no `syn`, no dependencies, consistent with the
//! offline-build policy.
//!
//! The catalog (see `crates/lint/LINTS.md` for rationale and examples):
//!
//! * **D-series — determinism.** No hash-ordered collections in report
//!   paths (D001), no wall-clock reads in simulator code (D002), no
//!   environment-dependent inputs (D003), no RNGs without an explicit
//!   seed (D004), no per-call allocation in functions marked
//!   `// lint: hot-path` (D005), and no nondeterministic reads flowing
//!   through the call graph into metric/report writers (D006).
//! * **H-series — hot paths.** D005's no-allocation rule extended to
//!   the full call closure of hot-path functions (H002).
//! * **P-series — panic policy.** No `.unwrap()`/`.expect()` (P001) or
//!   `panic!`-family macros (P002) in non-test library code, and no
//!   panic site reachable from a report entry point (P003, with a
//!   deterministic witness call chain per finding).
//! * **M-series — metrics.** Registered metric names follow the
//!   `crate.section.name` convention (M001) and never collide across
//!   crates (M002).
//! * **S-series — safety.** Every crate root forbids `unsafe_code`
//!   (S001) and every experiment binary routes through
//!   `ia_bench::report::cli` (S002).
//! * **W-series — waiver hygiene.** `// lint: allow` comments that no
//!   longer silence anything are themselves findings (W001).
//!
//! Since v2 the scanner is backed by an item-level recursive-descent
//! parser ([`parser`]), a workspace symbol table and conservative call
//! graph ([`graph`]), and interprocedural passes ([`ipa`]) — still
//! zero-dependency and byte-deterministic.
//!
//! Violations print as `file:line:col: LINT-ID: message` (or JSON with
//! `--json`). Pre-existing findings are grandfathered by the checked-in
//! `lint.baseline`, which only ratchets toward zero: a count that rises
//! fails the gate, and a count that falls is reported as stale until the
//! baseline is regenerated. Individual sites can be waived in place with
//! `// lint: allow(ID, reason)` on (or directly above) the line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod context;
pub mod graph;
pub mod ipa;
pub mod lexer;
pub mod lints;
pub mod output;
pub mod parser;
pub mod scan;

pub use baseline::{Baseline, Gated, OutdatedSection, StaleEntry};
pub use graph::CallGraph;
pub use lints::{Finding, CATALOG};
pub use scan::{analyze, analyze_source, analyze_sources, Analysis};
