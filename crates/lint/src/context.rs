//! Per-file analysis context: which tokens are test-only code, and which
//! lines carry `// lint: allow(ID, reason)` waivers.

use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// The tokens of one file, split into code and comment streams, with a
/// test-context flag per code token and the allow-comment line map.
pub struct FileContext {
    /// Non-comment tokens, in source order.
    pub code: Vec<Tok>,
    /// `is_test[i]` — `code[i]` sits inside a `#[test]` / `#[cfg(test)]`
    /// item or the file is wholly test-like (`tests/`, `benches/`,
    /// `examples/`).
    pub is_test: Vec<bool>,
    /// `is_hot[i]` — `code[i]` sits inside the braced item following a
    /// `// lint: hot-path` marker (per-cycle code held to the
    /// no-allocation rule, D005).
    pub is_hot: Vec<bool>,
    /// Line → lint IDs waived by a `lint: allow(…)` comment on that line.
    pub allows: BTreeMap<u32, BTreeSet<String>>,
}

/// True when `path` (workspace-relative, `/`-separated) is test-like as a
/// whole: integration tests, benches, examples, and build scripts never
/// feed report bytes.
#[must_use]
pub fn path_is_testlike(path: &str) -> bool {
    path.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples") || seg == "build.rs")
}

impl FileContext {
    /// Builds the context for one tokenized file.
    #[must_use]
    pub fn build(path: &str, toks: Vec<Tok>) -> FileContext {
        let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        let mut hot_lines: BTreeSet<u32> = BTreeSet::new();
        let mut code = Vec::with_capacity(toks.len());
        for t in toks {
            if t.kind == TokKind::Comment {
                for id in parse_allow_ids(&t.text) {
                    allows.entry(t.line).or_default().insert(id);
                }
                if t.text.contains("lint: hot-path") {
                    hot_lines.insert(t.line);
                }
            } else {
                code.push(t);
            }
        }
        let is_test = if path_is_testlike(path) {
            vec![true; code.len()]
        } else {
            mark_test_items(&code)
        };
        let is_hot = mark_hot_items(&code, &hot_lines);
        FileContext {
            code,
            is_test,
            is_hot,
            allows,
        }
    }

    /// True when lint `id` is waived for a finding on `line` — the allow
    /// comment may trail the offending line or sit on the line above.
    #[must_use]
    pub fn allowed(&self, id: &str, line: u32) -> bool {
        self.allow_line(id, line).is_some()
    }

    /// The line of the `lint: allow` comment that waives `id` for a
    /// finding on `line`, when one exists. The scan pipeline records the
    /// declaring line so unused waivers can be flagged (W001).
    #[must_use]
    pub fn allow_line(&self, id: &str, line: u32) -> Option<u32> {
        [line, line.saturating_sub(1)]
            .into_iter()
            .find(|l| self.allows.get(l).is_some_and(|ids| ids.contains(id)))
    }

    /// True when the lines a waiver on `line` covers (its own and the one
    /// below) contain test-context code — lints skip test tokens, so such
    /// waivers are documentation, not suppressions, and W001 skips them.
    #[must_use]
    pub fn waiver_covers_test_code(&self, line: u32) -> bool {
        self.code
            .iter()
            .zip(&self.is_test)
            .any(|(t, &test)| test && (t.line == line || t.line == line + 1))
    }
}

/// Extracts lint IDs from a comment body containing `lint: allow(A, B)`.
/// Everything after the IDs (a free-form reason) is ignored. A comment
/// may carry several `allow(…)` groups (e.g. an `allow(W001, …)` riding
/// on a deliberately-kept waiver).
fn parse_allow_ids(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint: allow(") {
        rest = &rest[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            break;
        };
        out.extend(
            rest[..close]
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| {
                    // A lint ID is a letter plus three digits (`P001`);
                    // anything else inside the parens is reason text.
                    s.len() == 4
                        && s.starts_with(|c: char| c.is_ascii_uppercase())
                        && s[1..].chars().all(|c| c.is_ascii_digit())
                }),
        );
        rest = &rest[close..];
    }
    out
}

/// Marks tokens inside `#[test]`-like items. An attribute whose token
/// list contains the identifier `test` (not as `not(test)`) makes the
/// next braced item — `mod tests { … }`, `fn case() { … }` — test
/// context. Attributes ending in `;` before any `{` (e.g. on a `use`)
/// mark nothing.
fn mark_test_items(code: &[Tok]) -> Vec<bool> {
    let mut is_test = vec![false; code.len()];
    let mut depth = 0i32;
    let mut pending = false;
    let mut test_floor: Option<i32> = None;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if test_floor.is_none() && t.is_punct('#') {
            // Scan the attribute `#[…]` / `#![…]` for a `test` marker.
            let mut j = i + 1;
            if j < code.len() && code[j].is_punct('!') {
                j += 1;
            }
            if j < code.len() && code[j].is_punct('[') {
                let mut brackets = 1i32;
                let mut k = j + 1;
                let mut found = false;
                while k < code.len() && brackets > 0 {
                    if code[k].is_punct('[') {
                        brackets += 1;
                    } else if code[k].is_punct(']') {
                        brackets -= 1;
                    } else if code[k].is_ident("test") {
                        let negated =
                            k >= 2 && code[k - 1].is_punct('(') && code[k - 2].is_ident("not");
                        if !negated {
                            found = true;
                        }
                    }
                    k += 1;
                }
                if found {
                    pending = true;
                    // The attribute tokens themselves are test context.
                    for slot in is_test.iter_mut().take(k).skip(i) {
                        *slot = true;
                    }
                }
                i = k;
                continue;
            }
        }
        if t.is_punct('{') {
            if pending {
                test_floor = Some(depth);
                pending = false;
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if test_floor == Some(depth) {
                is_test[i] = true;
                test_floor = None;
                i += 1;
                continue;
            }
        } else if t.is_punct(';') && pending && test_floor.is_none() {
            // `#[cfg(test)] use …;` — nothing braced to mark.
            pending = false;
        }
        if test_floor.is_some() || pending {
            is_test[i] = true;
        }
        i += 1;
    }
    is_test
}

/// Marks tokens inside the braced item following a `// lint: hot-path`
/// marker comment — the same next-braced-item binding as test
/// attributes, so the marker sits right above the `fn` it governs. A
/// `;` before any `{` (marker above a declaration) marks nothing.
fn mark_hot_items(code: &[Tok], hot_lines: &BTreeSet<u32>) -> Vec<bool> {
    let mut is_hot = vec![false; code.len()];
    let mut markers = hot_lines.iter().copied().peekable();
    let mut depth = 0i32;
    let mut pending = false;
    let mut hot_floor: Option<i32> = None;
    for (i, t) in code.iter().enumerate() {
        if hot_floor.is_none() {
            while markers.peek().is_some_and(|&h| h <= t.line) {
                markers.next();
                pending = true;
            }
        }
        if t.is_punct('{') {
            if pending {
                hot_floor = Some(depth);
                pending = false;
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if hot_floor == Some(depth) {
                is_hot[i] = true;
                hot_floor = None;
                continue;
            }
        } else if t.is_punct(';') && pending && hot_floor.is_none() {
            pending = false;
        }
        if hot_floor.is_some() || pending {
            is_hot[i] = true;
        }
    }
    is_hot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn ctx(src: &str) -> FileContext {
        FileContext::build("crates/x/src/lib.rs", tokenize(src))
    }

    fn test_idents(c: &FileContext) -> Vec<&str> {
        c.code
            .iter()
            .zip(&c.is_test)
            .filter(|(t, flag)| **flag && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_test_context() {
        let c = ctx("fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\nfn live2() {}");
        let inside = test_idents(&c);
        assert!(inside.contains(&"helper"));
        assert!(!inside.contains(&"live"));
        assert!(!inside.contains(&"live2"));
    }

    #[test]
    fn test_fn_attribute_marks_only_that_fn() {
        let c = ctx("#[test]\nfn case() { body(); }\nfn live() {}");
        let inside = test_idents(&c);
        assert!(inside.contains(&"body"));
        assert!(!inside.contains(&"live"));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let c = ctx("#[cfg(not(test))]\nfn live() { body(); }");
        assert!(test_idents(&c).is_empty());
    }

    #[test]
    fn attribute_on_use_marks_nothing_after_semicolon() {
        let c = ctx("#[cfg(test)]\nuse std::fmt;\nfn live() {}");
        assert!(!test_idents(&c).contains(&"live"));
    }

    #[test]
    fn testlike_paths_mark_whole_file() {
        let c = FileContext::build("crates/x/tests/it.rs", tokenize("fn anything() {}"));
        assert!(c.is_test.iter().all(|&b| b));
        assert!(path_is_testlike("crates/bench/benches/kernels.rs"));
        assert!(path_is_testlike("examples/quickstart.rs"));
        assert!(!path_is_testlike("crates/bench/src/report.rs"));
    }

    #[test]
    fn hot_path_marker_covers_only_the_next_braced_item() {
        let c =
            ctx("fn cold() { a(); }\n// lint: hot-path\nfn hot() { b(); }\nfn cold2() { c(); }");
        let hot: Vec<&str> = c
            .code
            .iter()
            .zip(&c.is_hot)
            .filter(|(t, flag)| **flag && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(hot.contains(&"b"));
        assert!(!hot.contains(&"a"));
        assert!(!hot.contains(&"c"));
    }

    #[test]
    fn hot_path_marker_above_declaration_does_not_leak_past_it() {
        let c = ctx("// lint: hot-path\nuse std::fmt;\nfn live() { body(); }");
        let hot: Vec<&str> = c
            .code
            .iter()
            .zip(&c.is_hot)
            .filter(|(t, flag)| **flag && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(!hot.contains(&"live"));
        assert!(!hot.contains(&"body"));
    }

    #[test]
    fn allow_comments_cover_same_and_next_line() {
        let c = ctx("// lint: allow(P001, startup cannot fail)\nfn f() {}\nfn g() {}");
        assert!(c.allowed("P001", 1));
        assert!(c.allowed("P001", 2));
        assert!(!c.allowed("P001", 3));
        assert!(!c.allowed("D001", 2));
    }

    #[test]
    fn allow_parses_multiple_ids_and_ignores_reason() {
        let ids = parse_allow_ids(" lint: allow(D002, M001) wall clock feeds stderr only");
        assert_eq!(ids, ["D002", "M001"]);
        assert!(parse_allow_ids("plain comment").is_empty());
    }
}
