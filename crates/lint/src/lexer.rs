//! A lightweight Rust token scanner: string/char/comment-aware, no `syn`.
//!
//! The lexer does just enough to make the lint catalog sound: it never
//! confuses the word `HashMap` inside a string literal, a doc comment, or
//! a `#[cfg(test)]` block with real non-test code. It is *not* a full
//! Rust lexer — numbers are consumed greedily and never inspected, and
//! tokens carry only their text and position.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#async`, …).
    Ident,
    /// String literal (`"…"`, `r#"…"#`, `b"…"`); `text` is the raw
    /// *inner* content, escapes not processed.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal, consumed greedily (suffixes included).
    Num,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// Line or block comment; `text` is the comment's full body.
    Comment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Scanner<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl Scanner<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails: unterminated literals simply consume to
/// end of input — the linter reports on what it can see.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut s = Scanner {
        chars: src.chars().peekable(),
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = s.peek() {
        let (line, col) = (s.line, s.col);
        if c.is_whitespace() {
            s.bump();
            continue;
        }
        if c == '/' {
            s.bump();
            match s.peek() {
                Some('/') => {
                    let mut text = String::new();
                    while let Some(c) = s.peek() {
                        if c == '\n' {
                            break;
                        }
                        text.push(c);
                        s.bump();
                    }
                    toks.push(Tok {
                        kind: TokKind::Comment,
                        text,
                        line,
                        col,
                    });
                }
                Some('*') => {
                    s.bump();
                    let mut text = String::new();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match s.bump() {
                            Some('*') if s.peek() == Some('/') => {
                                s.bump();
                                depth -= 1;
                                if depth > 0 {
                                    text.push_str("*/");
                                }
                            }
                            Some('/') if s.peek() == Some('*') => {
                                s.bump();
                                depth += 1;
                                text.push_str("/*");
                            }
                            Some(c) => text.push(c),
                            None => break,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Comment,
                        text,
                        line,
                        col,
                    });
                }
                _ => toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "/".to_owned(),
                    line,
                    col,
                }),
            }
            continue;
        }
        if c == '"' {
            s.bump();
            toks.push(scan_string_body(&mut s, line, col));
            continue;
        }
        if c == '\'' {
            s.bump();
            toks.push(scan_quote(&mut s, line, col));
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = s.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                s.bump();
            }
            // Raw strings / raw identifiers / byte strings: the prefix we
            // just consumed may belong to a literal.
            match (text.as_str(), s.peek()) {
                ("r" | "br" | "b", Some('"')) => {
                    s.bump();
                    toks.push(scan_string_body(&mut s, line, col));
                }
                ("r" | "br", Some('#')) => {
                    // Raw string `r#..#"…"#..#` or raw identifier `r#name`.
                    let mut hashes = 0usize;
                    while s.peek() == Some('#') {
                        s.bump();
                        hashes += 1;
                    }
                    if s.peek() == Some('"') {
                        s.bump();
                        toks.push(scan_raw_string(&mut s, hashes, line, col));
                    } else {
                        // `r#ident` (hashes == 1 in valid Rust). The raw
                        // prefix is *kept* in the token text: `r#fn` is an
                        // ordinary identifier, and stripping the prefix
                        // would desync every downstream consumer that
                        // keys on keyword spellings (`is_ident("fn")`,
                        // the item parser, the test-context marker).
                        let mut name = text.clone();
                        for _ in 0..hashes {
                            name.push('#');
                        }
                        while let Some(c) = s.peek() {
                            if !is_ident_continue(c) {
                                break;
                            }
                            name.push(c);
                            s.bump();
                        }
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            text: name,
                            line,
                            col,
                        });
                    }
                }
                ("b", Some('\'')) => {
                    s.bump();
                    toks.push(scan_quote(&mut s, line, col));
                }
                _ => toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                }),
            }
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(c) = s.peek() {
                if !(is_ident_continue(c)) {
                    // Consume `1.5` / `1e-5` continuations, but not the
                    // `..` of a range expression like `0..n`.
                    if c == '.' {
                        let mut ahead = s.chars.clone();
                        ahead.next();
                        match ahead.next() {
                            Some(d) if d.is_ascii_digit() => {}
                            _ => break,
                        }
                    } else if (c == '+' || c == '-')
                        && matches!(text.chars().next_back(), Some('e' | 'E'))
                    {
                        // exponent sign
                    } else {
                        break;
                    }
                }
                text.push(c);
                s.bump();
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
                col,
            });
            continue;
        }
        s.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    toks
}

/// Scans a (non-raw) string body after the opening quote.
fn scan_string_body(s: &mut Scanner<'_>, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = s.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(e) = s.bump() {
                    text.push(e);
                }
            }
            c => text.push(c),
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Scans a raw string body after `r#…#"`; `hashes` is the guard count.
fn scan_raw_string(s: &mut Scanner<'_>, hashes: usize, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    'outer: while let Some(c) = s.bump() {
        if c == '"' {
            // Potential terminator: need `hashes` consecutive `#`.
            let mut seen = 0usize;
            while seen < hashes && s.peek() == Some('#') {
                s.bump();
                seen += 1;
            }
            if seen == hashes {
                break 'outer;
            }
            text.push('"');
            for _ in 0..seen {
                text.push('#');
            }
            continue;
        }
        text.push(c);
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Scans after a `'`: a char literal or a lifetime.
fn scan_quote(s: &mut Scanner<'_>, line: u32, col: u32) -> Tok {
    match s.peek() {
        Some('\\') => {
            // Escaped char literal.
            s.bump();
            let mut text = String::from("\\");
            if let Some(e) = s.bump() {
                text.push(e);
                if e == 'u' {
                    // `\u{…}`
                    while let Some(c) = s.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                } else if e == 'x' {
                    for _ in 0..2 {
                        if let Some(c) = s.bump() {
                            text.push(c);
                        }
                    }
                }
            }
            if s.peek() == Some('\'') {
                s.bump();
            }
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` (no closing quote) is a lifetime.
            let mut text = String::new();
            text.push(c);
            s.bump();
            if s.peek() == Some('\'') {
                s.bump();
                return Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                };
            }
            while let Some(c) = s.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                s.bump();
            }
            Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            }
        }
        Some(c) => {
            // Single-char literal like `' '` or `'.'`.
            s.bump();
            let text = c.to_string();
            if s.peek() == Some('\'') {
                s.bump();
            }
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        None => Tok {
            kind: TokKind::Char,
            text: String::new(),
            line,
            col,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_in_strings_and_comments_are_not_idents() {
        let toks = kinds("let x = \"HashMap\"; // HashMap\n/* HashMap */ y");
        assert!(toks
            .iter()
            .all(|(k, t)| !(t == "HashMap" && *k == TokKind::Ident)));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "HashMap"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Comment).count(),
            2
        );
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
        // The `str` after `&'a` must survive as an identifier.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "str"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds("r#\"a \"quoted\" b\"# end");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, "a \"quoted\" b");
        assert!(toks[1].1 == "end");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::Comment);
        assert!(toks[1].1 == "after");
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        let toks = kinds(r#""say \"hi\"" next"#);
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks[1].1 == "next");
    }

    #[test]
    fn numbers_including_ranges_and_floats() {
        let toks = kinds("0..10 1.5e-3 0xFF_u64");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e-3", "0xFF_u64"]);
    }

    #[test]
    fn raw_identifiers_keep_their_prefix_and_do_not_desync() {
        // `r#fn` must not look like the `fn` keyword, and `r#test` must
        // not look like the `test` attribute marker.
        let toks = kinds("let r#fn = 1; fn real() {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
        assert!(
            !toks[..3].iter().any(|(_, t)| t == "fn"),
            "r#fn leaked a bare `fn`"
        );
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
        // A raw identifier at end of input must not lose characters.
        let toks = kinds("r#match");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0], (TokKind::Ident, "r#match".to_owned()));
        // Raw strings are unaffected by the raw-identifier path.
        let toks = kinds("r#\"body\"# r#ident");
        assert_eq!(toks[0], (TokKind::Str, "body".to_owned()));
        assert_eq!(toks[1], (TokKind::Ident, "r#ident".to_owned()));
    }

    #[test]
    fn shift_right_is_two_closing_angles() {
        // `>>` closing nested generics must come through as two `>`
        // puncts so the parser's angle-depth tracking stays in sync.
        let toks = kinds("fn f() -> Vec<Vec<u32>> { g() }");
        let closes = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t == ">")
            .count();
        assert_eq!(closes, 3, "-> plus the two generic closers");
        // The body tokens after the signature survive intact.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "g"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = tokenize("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
