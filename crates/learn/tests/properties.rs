//! Property-based tests of the learning substrate.

use ia_learn::{EpsilonGreedyBandit, FeatureQuantizer, Perceptron, QAgent, QConfig, UcbBandit};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Quantizer output is always a valid bin, for any input including
    /// NaN-free extremes.
    #[test]
    fn quantizer_in_range(lo in -100.0f64..100.0, width in 0.1f64..100.0, bins in 1usize..64, v in -1e6f64..1e6) {
        let q = FeatureQuantizer::new(lo, lo + width, bins).unwrap();
        prop_assert!(q.quantize(v) < bins);
    }

    /// Quantization is monotone: larger values never map to smaller bins.
    #[test]
    fn quantizer_monotone(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let q = FeatureQuantizer::new(0.0, 10.0, 16).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// The agent's chosen actions are always in range and values stay
    /// finite under arbitrary reward streams.
    #[test]
    fn q_agent_stays_finite(
        seed in any::<u64>(),
        rewards in prop::collection::vec(-10.0f64..10.0, 1..100),
    ) {
        let features = vec![FeatureQuantizer::new(0.0, 1.0, 4).unwrap(); 2];
        let mut agent = QAgent::new(features, 3, QConfig::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut state = [0.2, 0.8];
        let a = agent.select_action(&state, &mut rng).unwrap();
        prop_assert!(a < 3);
        for (i, r) in rewards.iter().enumerate() {
            state = [(i % 5) as f64 / 5.0, (i % 3) as f64 / 3.0];
            agent.observe(*r, &state, &mut rng).unwrap();
            for action in 0..3 {
                let v = agent.value(&state, action).unwrap();
                prop_assert!(v.is_finite());
            }
        }
        prop_assert_eq!(agent.updates(), rewards.len() as u64);
    }

    /// Perceptron outputs are bounded by the weight budget.
    #[test]
    fn perceptron_output_bounded(
        inputs in 1usize..32,
        examples in prop::collection::vec((any::<u32>(), any::<bool>()), 0..200),
    ) {
        let mut p = Perceptron::new(inputs).unwrap();
        for (bits, actual) in &examples {
            let features: Vec<bool> = (0..inputs).map(|i| bits >> (i % 32) & 1 == 1).collect();
            p.train(&features, *actual);
        }
        let all_true = vec![true; inputs];
        let out = p.predict(&all_true).output;
        // Bias + n weights, each clamped to ±128.
        prop_assert!(out.abs() <= 128 * (inputs as i32 + 1));
    }

    /// Bandit empirical means always lie within the observed reward range.
    #[test]
    fn bandit_means_within_range(
        seed in any::<u64>(),
        rewards in prop::collection::vec(0.0f64..1.0, 1..100),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut eg = EpsilonGreedyBandit::new(3, 0.2).unwrap();
        let mut ucb = UcbBandit::new(3).unwrap();
        let lo = rewards.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for r in &rewards {
            let a = eg.select(&mut rng);
            eg.update(a, *r);
            let u = ucb.select();
            ucb.update(u, *r);
        }
        for arm in 0..3 {
            let m = eg.mean(arm);
            prop_assert!(m == 0.0 || (lo..=hi).contains(&m));
        }
        prop_assert_eq!(eg.total_pulls(), rewards.len() as u64);
        prop_assert!(ucb.best_arm() < 3);
    }

    /// UCB pull counts always sum to the number of updates.
    #[test]
    fn ucb_pull_accounting(n in 1usize..200) {
        let mut ucb = UcbBandit::new(4).unwrap();
        for i in 0..n {
            let a = ucb.select();
            ucb.update(a, (i % 7) as f64 / 7.0);
        }
        let total: u64 = (0..4).map(|a| ucb.pulls(a)).sum();
        prop_assert_eq!(total, n as u64);
    }
}
