//! # ia-learn — online-learning substrate for data-driven architectures
//!
//! The paper's second principle is that controllers should be *data-driven
//! autonomous agents that automatically learn far-sighted policies*. This
//! crate provides the three learning machines that the architecture
//! literature actually deploys in controllers:
//!
//! * [`QAgent`] — SARSA with CMAC tile coding, as in the self-optimizing
//!   memory controller (Ipek+, ISCA 2008). Used by `ia-memctrl`'s RL
//!   scheduler.
//! * [`Perceptron`] / [`PerceptronPredictor`] — Jiménez–Lin perceptron
//!   prediction (HPCA 2001), reusable for branches, reuse, and prefetch
//!   filtering.
//! * [`EpsilonGreedyBandit`] / [`UcbBandit`] — lightweight policy
//!   selectors for set-dueling-style online policy choice.
//!
//! ## Example
//!
//! ```
//! use ia_learn::{EpsilonGreedyBandit, LearnError};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), LearnError> {
//! let mut selector = EpsilonGreedyBandit::new(2, 0.1)?;
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! for _ in 0..300 {
//!     let policy = selector.select(&mut rng);
//!     let reward = if policy == 0 { 0.3 } else { 0.7 };
//!     selector.update(policy, reward);
//! }
//! assert_eq!(selector.best_arm(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bandit;
mod error;
mod perceptron;
mod qlearning;

pub use bandit::{EpsilonGreedyBandit, UcbBandit};
pub use error::LearnError;
pub use perceptron::{Perceptron, PerceptronPredictor, Prediction};
pub use qlearning::{FeatureQuantizer, QAgent, QConfig};
