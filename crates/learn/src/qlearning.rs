//! Q-learning with CMAC tile coding, the algorithm behind the
//! self-optimizing memory controller (Ipek+, ISCA 2008).
//!
//! The controller's state (queue occupancies, row-hit counts, …) is
//! continuous-ish and high-dimensional; the original work discretizes it
//! with CMAC tile coding and learns action values with SARSA. This module
//! implements both pieces with no external dependencies beyond `rand`.

use rand::Rng;

use crate::LearnError;

/// Quantizes one continuous feature into a fixed number of bins.
///
/// # Examples
///
/// ```
/// use ia_learn::FeatureQuantizer;
/// let q = FeatureQuantizer::new(0.0, 10.0, 5)?;
/// assert_eq!(q.quantize(-3.0), 0);
/// assert_eq!(q.quantize(9.99), 4);
/// assert_eq!(q.bins(), 5);
/// # Ok::<(), ia_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureQuantizer {
    lo: f64,
    hi: f64,
    bins: usize,
}

impl FeatureQuantizer {
    /// Creates a quantizer over `[lo, hi)` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, LearnError> {
        if bins == 0 {
            return Err(LearnError::invalid("quantizer needs at least one bin"));
        }
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(LearnError::invalid("quantizer range must be non-empty"));
        }
        Ok(FeatureQuantizer { lo, hi, bins })
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Maps a value to its bin, clamping out-of-range inputs.
    #[must_use]
    pub fn quantize(&self, value: f64) -> usize {
        let t = (value - self.lo) / (self.hi - self.lo);
        let idx = (t * self.bins as f64).floor();
        (idx.max(0.0) as usize).min(self.bins - 1)
    }

    /// Quantizes with a fractional offset of a bin width (for CMAC tilings).
    #[must_use]
    fn quantize_shifted(&self, value: f64, shift: f64) -> usize {
        let width = (self.hi - self.lo) / self.bins as f64;
        self.quantize(value + shift * width)
    }
}

/// Configuration for [`QAgent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QConfig {
    /// Learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Exploration rate ε.
    pub epsilon: f64,
    /// Number of CMAC tilings (1 = plain table).
    pub tilings: usize,
}

impl Default for QConfig {
    fn default() -> Self {
        // Values from the self-optimizing memory controller paper's setup.
        QConfig {
            alpha: 0.1,
            gamma: 0.95,
            epsilon: 0.05,
            tilings: 4,
        }
    }
}

/// A SARSA agent over a quantized state space with CMAC tile coding.
///
/// Call [`QAgent::select_action`] to act, then [`QAgent::observe`] with the
/// reward and next state; the agent performs the SARSA update internally.
///
/// # Examples
///
/// ```
/// use ia_learn::{FeatureQuantizer, QAgent, QConfig};
/// use rand::SeedableRng;
/// let features = vec![FeatureQuantizer::new(0.0, 1.0, 4)?; 2];
/// let mut agent = QAgent::new(features, 3, QConfig::default())?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let a = agent.select_action(&[0.5, 0.5], &mut rng)?;
/// agent.observe(1.0, &[0.6, 0.4], &mut rng)?;
/// assert!(a < 3);
/// # Ok::<(), ia_learn::LearnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QAgent {
    features: Vec<FeatureQuantizer>,
    actions: usize,
    config: QConfig,
    /// One value table per tiling: `tables[t][state_index * actions + a]`.
    tables: Vec<Vec<f64>>,
    /// Pending (tiled state indices, action) awaiting its reward.
    pending: Option<(Vec<usize>, usize)>,
    /// Recycled tile-index buffer: `select_action`/`observe` sit on the
    /// memory controller's per-cycle path, so steady-state calls must
    /// not allocate. Retired `pending` buffers return here.
    scratch: Vec<usize>,
    updates: u64,
}

impl QAgent {
    /// Creates an agent for the given feature space and action count.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if there are no features, no actions, no
    /// tilings, or the joint state space is unreasonably large (> 2^24).
    pub fn new(
        features: Vec<FeatureQuantizer>,
        actions: usize,
        config: QConfig,
    ) -> Result<Self, LearnError> {
        if features.is_empty() {
            return Err(LearnError::invalid("agent needs at least one feature"));
        }
        if actions == 0 {
            return Err(LearnError::invalid("agent needs at least one action"));
        }
        if config.tilings == 0 {
            return Err(LearnError::invalid("agent needs at least one tiling"));
        }
        let mut states: usize = 1;
        for f in &features {
            states = states
                .checked_mul(f.bins())
                .filter(|&s| s <= (1 << 24))
                .ok_or_else(|| LearnError::invalid("state space too large"))?;
        }
        let tables = vec![vec![0.0; states * actions]; config.tilings];
        let tilings = config.tilings;
        Ok(QAgent {
            features,
            actions,
            config,
            tables,
            pending: None,
            scratch: Vec::with_capacity(tilings),
            updates: 0,
        })
    }

    /// Number of actions.
    #[must_use]
    pub fn action_count(&self) -> usize {
        self.actions
    }

    /// Number of SARSA updates applied so far.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Seeds every state's value for `action` with an initial prior —
    /// the optimistic/designer initialization the self-optimizing
    /// controller literature uses so the agent starts from a sensible
    /// policy instead of arbitrary tie-breaking, and learns from there.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if `action` is out of range.
    pub fn seed_action_value(&mut self, action: usize, value: f64) -> Result<(), LearnError> {
        if action >= self.actions {
            return Err(LearnError::invalid("action out of range"));
        }
        for table in &mut self.tables {
            for slot in table.iter_mut().skip(action).step_by(self.actions) {
                *slot = value;
            }
        }
        Ok(())
    }

    fn state_index(&self, state: &[f64], tiling: usize) -> Result<usize, LearnError> {
        if state.len() != self.features.len() {
            return Err(LearnError::dimension(self.features.len(), state.len()));
        }
        // Each tiling is offset by a different fraction of a bin width.
        let shift = tiling as f64 / self.config.tilings as f64;
        let mut idx = 0usize;
        for (f, &v) in self.features.iter().zip(state) {
            idx = idx * f.bins() + f.quantize_shifted(v, shift);
        }
        Ok(idx)
    }

    /// Fills `out` with one state index per tiling. Reuses the buffer's
    /// capacity, so steady-state callers on the per-cycle path never
    /// allocate.
    fn fill_tiled(&self, state: &[f64], out: &mut Vec<usize>) -> Result<(), LearnError> {
        out.clear();
        for t in 0..self.config.tilings {
            out.push(self.state_index(state, t)?);
        }
        Ok(())
    }

    fn tiled_indices(&self, state: &[f64]) -> Result<Vec<usize>, LearnError> {
        let mut out = Vec::with_capacity(self.config.tilings);
        self.fill_tiled(state, &mut out)?;
        Ok(out)
    }

    /// Q-value of `(state, action)`: the CMAC average across tilings.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if `state` has the wrong dimensionality or
    /// `action` is out of range.
    pub fn value(&self, state: &[f64], action: usize) -> Result<f64, LearnError> {
        if action >= self.actions {
            return Err(LearnError::invalid("action out of range"));
        }
        let idx = self.tiled_indices(state)?;
        Ok(self.value_at(&idx, action))
    }

    fn value_at(&self, tiled: &[usize], action: usize) -> f64 {
        let sum: f64 = tiled
            .iter()
            .enumerate()
            .map(|(t, &s)| self.tables[t][s * self.actions + action])
            .sum();
        sum / self.config.tilings as f64
    }

    fn best_action_at(&self, tiled: &[usize]) -> usize {
        (0..self.actions)
            .max_by(|&a, &b| {
                self.value_at(tiled, a)
                    .partial_cmp(&self.value_at(tiled, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }

    /// Greedy action for `state` (no exploration, no learning).
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] on dimension mismatch.
    pub fn best_action(&self, state: &[f64]) -> Result<usize, LearnError> {
        let tiled = self.tiled_indices(state)?;
        Ok(self.best_action_at(&tiled))
    }

    /// Selects an ε-greedy action and remembers `(state, action)` for the
    /// next [`QAgent::observe`] call.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] on dimension mismatch.
    pub fn select_action<R: Rng + ?Sized>(
        &mut self,
        state: &[f64],
        rng: &mut R,
    ) -> Result<usize, LearnError> {
        let mut tiled = std::mem::take(&mut self.scratch);
        self.fill_tiled(state, &mut tiled)?;
        let action = if rng.gen::<f64>() < self.config.epsilon {
            rng.gen_range(0..self.actions)
        } else {
            self.best_action_at(&tiled)
        };
        if let Some((old, _)) = self.pending.replace((tiled, action)) {
            self.scratch = old;
        }
        Ok(action)
    }

    /// Applies the SARSA update for the pending `(state, action)` with the
    /// observed `reward` and successor `next_state`, then selects (and
    /// stores) the next action internally using ε-greedy.
    ///
    /// If no action is pending this is a no-op returning `Ok(())`, so the
    /// call sequence never has to special-case the first step.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] on dimension mismatch of `next_state`.
    pub fn observe<R: Rng + ?Sized>(
        &mut self,
        reward: f64,
        next_state: &[f64],
        rng: &mut R,
    ) -> Result<(), LearnError> {
        let Some((tiled, action)) = self.pending.take() else {
            return Ok(());
        };
        let mut next_tiled = std::mem::take(&mut self.scratch);
        self.fill_tiled(next_state, &mut next_tiled)?;
        let next_action = if rng.gen::<f64>() < self.config.epsilon {
            rng.gen_range(0..self.actions)
        } else {
            self.best_action_at(&next_tiled)
        };
        let target = reward + self.config.gamma * self.value_at(&next_tiled, next_action);
        let error = target - self.value_at(&tiled, action);
        // CMAC update: each tiling absorbs an equal share of the error.
        let step = self.config.alpha * error / self.config.tilings as f64;
        for (t, &s) in tiled.iter().enumerate() {
            self.tables[t][s * self.actions + action] += step;
        }
        self.updates += 1;
        self.pending = Some((next_tiled, next_action));
        self.scratch = tiled; // recycle the retired buffer
        Ok(())
    }

    /// Clears the pending transition (e.g., at an episode boundary).
    pub fn end_episode(&mut self) {
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xDA7A)
    }

    #[test]
    fn quantizer_rejects_bad_args() {
        assert!(FeatureQuantizer::new(0.0, 1.0, 0).is_err());
        assert!(FeatureQuantizer::new(1.0, 1.0, 4).is_err());
        assert!(FeatureQuantizer::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn quantizer_bins_cover_range() {
        let q = FeatureQuantizer::new(0.0, 8.0, 4).unwrap();
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(1.99), 0);
        assert_eq!(q.quantize(2.0), 1);
        assert_eq!(q.quantize(7.99), 3);
        assert_eq!(q.quantize(100.0), 3, "clamps high");
        assert_eq!(q.quantize(-5.0), 0, "clamps low");
    }

    #[test]
    fn agent_rejects_degenerate_configs() {
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 2).unwrap()];
        assert!(QAgent::new(vec![], 2, QConfig::default()).is_err());
        assert!(QAgent::new(f.clone(), 0, QConfig::default()).is_err());
        let cfg = QConfig {
            tilings: 0,
            ..QConfig::default()
        };
        assert!(QAgent::new(f, 2, cfg).is_err());
    }

    #[test]
    fn agent_rejects_huge_state_space() {
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 4096).unwrap(); 3];
        assert!(QAgent::new(f, 2, QConfig::default()).is_err());
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 2).unwrap(); 2];
        let mut agent = QAgent::new(f, 2, QConfig::default()).unwrap();
        let mut r = rng();
        assert!(agent.select_action(&[0.5], &mut r).is_err());
        assert!(agent.value(&[0.1, 0.2, 0.3], 0).is_err());
    }

    #[test]
    fn learns_a_two_armed_bandit() {
        // State is constant; action 1 pays 1.0, action 0 pays 0.0. After
        // training, the greedy action must be 1.
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 1).unwrap()];
        let cfg = QConfig {
            alpha: 0.2,
            gamma: 0.0,
            epsilon: 0.2,
            tilings: 2,
        };
        let mut agent = QAgent::new(f, 2, cfg).unwrap();
        let mut r = rng();
        let s = [0.5];
        let mut a = agent.select_action(&s, &mut r).unwrap();
        for _ in 0..500 {
            let reward = if a == 1 { 1.0 } else { 0.0 };
            agent.observe(reward, &s, &mut r).unwrap();
            // observe() stored the next action in pending; re-select to read it.
            a = agent.best_action(&s).unwrap();
        }
        assert_eq!(agent.best_action(&s).unwrap(), 1);
        assert!(agent.value(&s, 1).unwrap() > agent.value(&s, 0).unwrap());
        assert!(agent.updates() >= 500);
    }

    #[test]
    fn learns_state_dependent_policy() {
        // Action must match the (binary) state feature to earn reward.
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 2).unwrap()];
        let cfg = QConfig {
            alpha: 0.3,
            gamma: 0.0,
            epsilon: 0.3,
            tilings: 1,
        };
        let mut agent = QAgent::new(f, 2, cfg).unwrap();
        let mut r = rng();
        let mut state = [0.25];
        let mut action = agent.select_action(&state, &mut r).unwrap();
        for step in 0..2000 {
            let want = if state[0] < 0.5 { 0 } else { 1 };
            let reward = if action == want { 1.0 } else { -1.0 };
            state = [if step % 2 == 0 { 0.75 } else { 0.25 }];
            agent.observe(reward, &state, &mut r).unwrap();
            action = agent.select_action(&state, &mut r).unwrap();
        }
        assert_eq!(agent.best_action(&[0.25]).unwrap(), 0);
        assert_eq!(agent.best_action(&[0.75]).unwrap(), 1);
    }

    #[test]
    fn observe_without_pending_is_noop() {
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 2).unwrap()];
        let mut agent = QAgent::new(f, 2, QConfig::default()).unwrap();
        let mut r = rng();
        agent.observe(5.0, &[0.5], &mut r).unwrap();
        assert_eq!(agent.updates(), 0);
    }

    #[test]
    fn end_episode_clears_pending() {
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 2).unwrap()];
        let mut agent = QAgent::new(f, 2, QConfig::default()).unwrap();
        let mut r = rng();
        agent.select_action(&[0.5], &mut r).unwrap();
        agent.end_episode();
        agent.observe(1.0, &[0.5], &mut r).unwrap();
        assert_eq!(agent.updates(), 0);
    }

    #[test]
    fn cmac_generalizes_across_nearby_states() {
        // Train only at 0.30; with 4 tilings the value should bleed into
        // 0.35 (same tiles in most tilings) but not into 0.95.
        let f = vec![FeatureQuantizer::new(0.0, 1.0, 10).unwrap()];
        let cfg = QConfig {
            alpha: 0.5,
            gamma: 0.0,
            epsilon: 0.0,
            tilings: 4,
        };
        let mut agent = QAgent::new(f, 1, cfg).unwrap();
        let mut r = rng();
        agent.select_action(&[0.30], &mut r).unwrap();
        for _ in 0..50 {
            agent.observe(1.0, &[0.30], &mut r).unwrap();
        }
        let near = agent.value(&[0.33], 0).unwrap();
        let far = agent.value(&[0.95], 0).unwrap();
        assert!(
            near > far,
            "CMAC should generalize locally: near={near} far={far}"
        );
        assert!(near > 0.1);
        assert_eq!(far, 0.0);
    }
}
