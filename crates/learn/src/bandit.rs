//! Multi-armed bandit policy selectors.
//!
//! Hardware proposals often choose among a small set of candidate policies
//! online ("set dueling", hybrid predictors choosing a component). This
//! module provides ε-greedy and UCB1 selectors for that pattern.

use rand::Rng;

use crate::LearnError;

/// Per-arm running statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Arm {
    pulls: u64,
    mean: f64,
}

impl Arm {
    fn update(&mut self, reward: f64) {
        self.pulls += 1;
        self.mean += (reward - self.mean) / self.pulls as f64;
    }
}

/// ε-greedy bandit: explore with probability ε, otherwise pick the best
/// empirical mean.
///
/// # Examples
///
/// ```
/// use ia_learn::EpsilonGreedyBandit;
/// use rand::SeedableRng;
/// let mut b = EpsilonGreedyBandit::new(3, 0.1)?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// for _ in 0..500 {
///     let arm = b.select(&mut rng);
///     b.update(arm, if arm == 2 { 1.0 } else { 0.0 });
/// }
/// assert_eq!(b.best_arm(), 2);
/// # Ok::<(), ia_learn::LearnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EpsilonGreedyBandit {
    arms: Vec<Arm>,
    epsilon: f64,
}

impl EpsilonGreedyBandit {
    /// Creates a bandit over `arms` arms with exploration rate `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if `arms == 0` or `epsilon` is outside
    /// `[0, 1]`.
    pub fn new(arms: usize, epsilon: f64) -> Result<Self, LearnError> {
        if arms == 0 {
            return Err(LearnError::invalid("bandit needs at least one arm"));
        }
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(LearnError::invalid("epsilon must be in [0, 1]"));
        }
        Ok(EpsilonGreedyBandit {
            arms: vec![Arm::default(); arms],
            epsilon,
        })
    }

    /// Selects an arm.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.arms.len())
        } else {
            self.best_arm()
        }
    }

    /// Records a reward for `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn update(&mut self, arm: usize, reward: f64) {
        self.arms[arm].update(reward);
    }

    /// Arm with the best empirical mean (ties → lowest index).
    #[must_use]
    pub fn best_arm(&self) -> usize {
        let mut best = 0;
        for (i, a) in self.arms.iter().enumerate() {
            if a.mean > self.arms[best].mean {
                best = i;
            }
        }
        best
    }

    /// Empirical mean reward of `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    #[must_use]
    pub fn mean(&self, arm: usize) -> f64 {
        self.arms[arm].mean
    }

    /// Total pulls across all arms.
    #[must_use]
    pub fn total_pulls(&self) -> u64 {
        self.arms.iter().map(|a| a.pulls).sum()
    }
}

/// UCB1 bandit: deterministic optimism-in-the-face-of-uncertainty.
///
/// # Examples
///
/// ```
/// use ia_learn::UcbBandit;
/// let mut b = UcbBandit::new(2)?;
/// for _ in 0..200 {
///     let arm = b.select();
///     b.update(arm, if arm == 0 { 0.9 } else { 0.1 });
/// }
/// assert_eq!(b.best_arm(), 0);
/// # Ok::<(), ia_learn::LearnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct UcbBandit {
    arms: Vec<Arm>,
    /// Exploration constant (√2 is the classical choice).
    c: f64,
}

impl UcbBandit {
    /// Creates a UCB1 bandit over `arms` arms.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if `arms == 0`.
    pub fn new(arms: usize) -> Result<Self, LearnError> {
        Self::with_exploration(arms, std::f64::consts::SQRT_2)
    }

    /// Creates a UCB1 bandit with a custom exploration constant.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if `arms == 0` or `c < 0`.
    pub fn with_exploration(arms: usize, c: f64) -> Result<Self, LearnError> {
        if arms == 0 {
            return Err(LearnError::invalid("bandit needs at least one arm"));
        }
        if c < 0.0 {
            return Err(LearnError::invalid(
                "exploration constant must be non-negative",
            ));
        }
        Ok(UcbBandit {
            arms: vec![Arm::default(); arms],
            c,
        })
    }

    /// Selects the arm with the highest upper confidence bound; unpulled
    /// arms are tried first.
    #[must_use]
    pub fn select(&self) -> usize {
        if let Some(i) = self.arms.iter().position(|a| a.pulls == 0) {
            return i;
        }
        let total: u64 = self.arms.iter().map(|a| a.pulls).sum();
        let ln_t = (total as f64).ln();
        let mut best = 0;
        let mut best_ucb = f64::NEG_INFINITY;
        for (i, a) in self.arms.iter().enumerate() {
            let ucb = a.mean + self.c * (ln_t / a.pulls as f64).sqrt();
            if ucb > best_ucb {
                best_ucb = ucb;
                best = i;
            }
        }
        best
    }

    /// Records a reward for `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn update(&mut self, arm: usize, reward: f64) {
        self.arms[arm].update(reward);
    }

    /// Arm with the best empirical mean.
    #[must_use]
    pub fn best_arm(&self) -> usize {
        let mut best = 0;
        for (i, a) in self.arms.iter().enumerate() {
            if a.mean > self.arms[best].mean {
                best = i;
            }
        }
        best
    }

    /// Pull count for `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    #[must_use]
    pub fn pulls(&self, arm: usize) -> u64 {
        self.arms[arm].pulls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn epsilon_greedy_validates_args() {
        assert!(EpsilonGreedyBandit::new(0, 0.1).is_err());
        assert!(EpsilonGreedyBandit::new(2, -0.1).is_err());
        assert!(EpsilonGreedyBandit::new(2, 1.5).is_err());
    }

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        let mut b = EpsilonGreedyBandit::new(4, 0.2).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let means = [0.1, 0.5, 0.9, 0.3];
        for _ in 0..2000 {
            let arm = b.select(&mut rng);
            let noise: f64 = rng.gen::<f64>() * 0.1;
            b.update(arm, means[arm] + noise);
        }
        assert_eq!(b.best_arm(), 2);
        assert!(b.mean(2) > b.mean(0));
        assert_eq!(b.total_pulls(), 2000);
    }

    #[test]
    fn zero_epsilon_is_pure_exploitation() {
        let mut b = EpsilonGreedyBandit::new(2, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        b.update(1, 1.0);
        for _ in 0..50 {
            assert_eq!(b.select(&mut rng), 1);
        }
    }

    #[test]
    fn ucb_tries_every_arm_first() {
        let mut b = UcbBandit::new(3).unwrap();
        let mut seen = [false; 3];
        for _ in 0..3 {
            let arm = b.select();
            assert!(!seen[arm], "arm {arm} pulled twice before coverage");
            seen[arm] = true;
            b.update(arm, 0.5);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ucb_converges_to_best_arm() {
        let mut b = UcbBandit::new(3).unwrap();
        for _ in 0..1000 {
            let arm = b.select();
            b.update(arm, [0.2, 0.8, 0.4][arm]);
        }
        assert_eq!(b.best_arm(), 1);
        assert!(b.pulls(1) > b.pulls(0));
        assert!(b.pulls(1) > b.pulls(2));
    }

    #[test]
    fn ucb_validates_args() {
        assert!(UcbBandit::new(0).is_err());
        assert!(UcbBandit::with_exploration(2, -1.0).is_err());
    }
}
