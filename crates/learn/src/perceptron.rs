//! Perceptron-based prediction (Jiménez & Lin, HPCA 2001), the paper's
//! exemplar of data-driven microarchitectural decision making, reusable
//! for branch direction, reuse, and prefetch-filter prediction.

use crate::LearnError;

/// A single perceptron over a boolean feature vector.
///
/// Weights are small saturating integers, exactly as in the hardware
/// proposals (8-bit saturating counters).
///
/// # Examples
///
/// ```
/// use ia_learn::Perceptron;
/// let mut p = Perceptron::new(4)?;
/// // Learn "output equals feature 2".
/// for _ in 0..20 {
///     p.train(&[false, true, true, false], true);
///     p.train(&[true, false, false, true], false);
/// }
/// assert!(p.predict(&[false, false, true, false]).taken);
/// # Ok::<(), ia_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perceptron {
    weights: Vec<i32>,
    bias: i32,
}

/// Output of a perceptron prediction: direction plus confidence margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted outcome.
    pub taken: bool,
    /// The raw dot-product; |output| is the confidence.
    pub output: i32,
}

const WEIGHT_MAX: i32 = 127;
const WEIGHT_MIN: i32 = -128;

impl Perceptron {
    /// Creates a zero-weight perceptron over `inputs` boolean features.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if `inputs == 0`.
    pub fn new(inputs: usize) -> Result<Self, LearnError> {
        if inputs == 0 {
            return Err(LearnError::invalid("perceptron needs at least one input"));
        }
        Ok(Perceptron {
            weights: vec![0; inputs],
            bias: 0,
        })
    }

    /// Number of inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.weights.len()
    }

    /// Training threshold θ ≈ 1.93·n + 14 (the published optimum).
    #[must_use]
    pub fn threshold(&self) -> i32 {
        (1.93 * self.weights.len() as f64 + 14.0) as i32
    }

    /// Computes the prediction for a feature vector.
    ///
    /// Features beyond the perceptron's width are ignored; missing
    /// features are treated as `false`.
    #[must_use]
    pub fn predict(&self, features: &[bool]) -> Prediction {
        let mut sum = self.bias;
        for (w, &f) in self.weights.iter().zip(features) {
            sum += if f { *w } else { -*w };
        }
        Prediction {
            taken: sum >= 0,
            output: sum,
        }
    }

    /// Trains on one example using the perceptron rule: update only on a
    /// mispredict or when confidence is below threshold.
    ///
    /// Returns `true` if the pre-update prediction was correct.
    pub fn train(&mut self, features: &[bool], actual: bool) -> bool {
        let pred = self.predict(features);
        let correct = pred.taken == actual;
        if !correct || pred.output.abs() <= self.threshold() {
            let dir = if actual { 1 } else { -1 };
            self.bias = (self.bias + dir).clamp(WEIGHT_MIN, WEIGHT_MAX);
            for (w, &f) in self.weights.iter_mut().zip(features) {
                let delta = if f { dir } else { -dir };
                *w = (*w + delta).clamp(WEIGHT_MIN, WEIGHT_MAX);
            }
        }
        correct
    }
}

/// A table of perceptrons indexed by a hashed key with a shared global
/// history register — the full Jiménez–Lin branch predictor organization.
///
/// # Examples
///
/// ```
/// use ia_learn::PerceptronPredictor;
/// let mut p = PerceptronPredictor::new(64, 8)?;
/// // A branch perfectly correlated with the last outcome's inverse:
/// let pc = 0x400123;
/// let mut last = false;
/// let mut correct = 0;
/// for i in 0..2000 {
///     let actual = !last;
///     if p.predict(pc) == actual && i >= 1000 { correct += 1 }
///     p.update(pc, actual);
///     last = actual;
/// }
/// assert!(correct > 950, "should learn alternation: {correct}");
/// # Ok::<(), ia_learn::LearnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    table: Vec<Perceptron>,
    history: Vec<bool>,
    lookups: u64,
    correct: u64,
}

impl PerceptronPredictor {
    /// Creates a predictor with `entries` perceptrons over `history_bits`
    /// of global history.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError`] if either argument is zero.
    pub fn new(entries: usize, history_bits: usize) -> Result<Self, LearnError> {
        if entries == 0 {
            return Err(LearnError::invalid("predictor needs at least one entry"));
        }
        let proto = Perceptron::new(history_bits)?;
        Ok(PerceptronPredictor {
            table: vec![proto; entries],
            history: vec![false; history_bits],
            lookups: 0,
            correct: 0,
        })
    }

    fn index(&self, key: u64) -> usize {
        // Simple multiplicative hash; entries need not be a power of two.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % self.table.len()
    }

    /// Predicts the outcome for `key` under the current global history.
    #[must_use]
    pub fn predict(&self, key: u64) -> bool {
        self.table[self.index(key)].predict(&self.history).taken
    }

    /// Trains on the actual outcome and shifts it into the history.
    pub fn update(&mut self, key: u64, actual: bool) {
        let idx = self.index(key);
        let was_correct = self.table[idx].train(&self.history, actual);
        self.lookups += 1;
        if was_correct {
            self.correct += 1;
        }
        self.history.rotate_right(1);
        self.history[0] = actual;
    }

    /// Fraction of updates whose pre-update prediction was correct.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }

    /// Number of predictions scored.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perceptron_rejects_zero_inputs() {
        assert!(Perceptron::new(0).is_err());
    }

    #[test]
    fn weights_saturate() {
        let mut p = Perceptron::new(1).unwrap();
        for _ in 0..10_000 {
            p.train(&[true], true);
        }
        let out = p.predict(&[true]).output;
        assert!(out <= 2 * WEIGHT_MAX, "weights must saturate, got {out}");
    }

    #[test]
    fn learns_negative_correlation() {
        let mut p = Perceptron::new(2).unwrap();
        for _ in 0..50 {
            p.train(&[true, false], false);
            p.train(&[false, true], true);
        }
        assert!(!p.predict(&[true, false]).taken);
        assert!(p.predict(&[false, true]).taken);
    }

    #[test]
    fn threshold_matches_published_formula() {
        let p = Perceptron::new(16).unwrap();
        assert_eq!(p.threshold(), (1.93 * 16.0 + 14.0) as i32);
    }

    #[test]
    fn predictor_rejects_zero_sizes() {
        assert!(PerceptronPredictor::new(0, 8).is_err());
        assert!(PerceptronPredictor::new(8, 0).is_err());
    }

    #[test]
    fn predictor_learns_biased_branch() {
        let mut p = PerceptronPredictor::new(16, 4).unwrap();
        for _ in 0..200 {
            p.update(0xABC, true);
        }
        assert!(p.predict(0xABC));
        assert!(p.accuracy() > 0.9);
    }

    #[test]
    fn predictor_learns_history_pattern() {
        // Pattern: T T N repeating — requires history to disambiguate.
        let mut p = PerceptronPredictor::new(64, 8).unwrap();
        let pattern = [true, true, false];
        let mut hits = 0;
        let total = 3000;
        for i in 0..total {
            let actual = pattern[i % 3];
            if i >= total / 2 && p.predict(7) == actual {
                hits += 1;
            }
            p.update(7, actual);
        }
        assert!(hits as f64 / (total / 2) as f64 > 0.9, "hits={hits}");
    }

    #[test]
    fn accuracy_zero_when_untrained() {
        let p = PerceptronPredictor::new(4, 4).unwrap();
        assert_eq!(p.accuracy(), 0.0);
        assert_eq!(p.lookups(), 0);
    }

    #[test]
    fn distinct_keys_use_distinct_entries() {
        let mut p = PerceptronPredictor::new(1024, 4).unwrap();
        for _ in 0..100 {
            p.update(1, true);
            p.update(2, false);
        }
        // Check each key's prediction in the same history context it was
        // trained under (the history register is global).
        assert!(p.predict(1));
        p.update(1, true);
        assert!(!p.predict(2));
    }
}
