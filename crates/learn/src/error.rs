//! Error type for the learning substrate.

use std::error::Error;
use std::fmt;

/// An invalid argument or configuration for a learning component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnError {
    kind: Kind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    Invalid(&'static str),
    Dimension { expected: usize, got: usize },
}

impl LearnError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        LearnError {
            kind: Kind::Invalid(msg),
        }
    }

    pub(crate) fn dimension(expected: usize, got: usize) -> Self {
        LearnError {
            kind: Kind::Dimension { expected, got },
        }
    }
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            Kind::Invalid(msg) => f.write_str(msg),
            Kind::Dimension { expected, got } => {
                write!(f, "state has {got} features, expected {expected}")
            }
        }
    }
}

impl Error for LearnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        assert!(!LearnError::invalid("boom").to_string().is_empty());
        let d = LearnError::dimension(3, 1);
        assert!(d.to_string().contains('3'));
        assert!(d.to_string().contains('1'));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<LearnError>();
    }
}
