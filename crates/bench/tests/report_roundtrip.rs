//! End-to-end check of the machine-readable report pipeline: run the
//! RowClone experiment through the report path the `exp02_rowclone`
//! binary uses, write the JSON to disk, and parse it back with
//! `ia-telemetry`'s own parser — the same loop `scripts/bench_snapshot.sh`
//! and any downstream tooling rely on.

use ia_bench::report::ExperimentReport;
use ia_telemetry::JsonValue;

#[test]
fn exp02_report_round_trips_through_json_on_disk() {
    let rep = ia_bench::exp02_rowclone::report(true);

    // Write exactly what the binary's `--json <path>` flag writes.
    let mut text = rep.to_json().render();
    text.push('\n');
    let path = std::env::temp_dir().join("ia_bench_exp02_report.json");
    std::fs::write(&path, &text).expect("report written");

    let read_back = std::fs::read_to_string(&path).expect("report read");
    let parsed = JsonValue::parse(&read_back).expect("emitted JSON parses with our own parser");
    let back = ExperimentReport::from_json(&parsed).expect("well-formed report");
    std::fs::remove_file(&path).ok();

    assert_eq!(back, rep);
    assert_eq!(back.name, "exp02_rowclone");
    assert!(back
        .params
        .contains(&("quick".to_owned(), "true".to_owned())));

    // The headline RowClone result must survive the trip: in-DRAM copy
    // is an order of magnitude faster than copying over the channel.
    let speedup = back
        .metric_value("fpm_speedup")
        .expect("headline metric present");
    assert!(
        speedup > 1.0,
        "FPM speedup should beat the channel: {speedup:.2}"
    );
}

#[test]
fn every_experiment_report_names_itself_and_records_quick() {
    // Cheap sanity on the two smallest reports: names match modules and
    // the quick param is recorded, so BENCH_PR.json entries are
    // self-describing.
    let raidr = ia_bench::exp06_raidr::report(true);
    assert_eq!(raidr.name, "exp06_raidr");
    assert!(raidr.metric_value("refresh_reduction").is_some());

    let pnm = ia_bench::exp08_pnm_graph::report(true);
    assert_eq!(pnm.name, "exp08_pnm_graph");
    assert!(!pnm.rows.is_empty(), "sweep reports carry their table");
}
