//! The tentpole acceptance check for `ia-trace`: capturing exp05's
//! scheduler suite must yield a cycle-attribution profile whose
//! controller tracks sum exactly to the runs' simulated cycles, name
//! the hottest components, and render byte-stably.

use std::sync::Mutex;

// Session capture and the ambient thread count are process-global, so
// trace-capturing tests serialize on one lock.
static CAPTURE_GUARD: Mutex<()> = Mutex::new(());

fn captured_exp05() -> (
    Vec<ia_bench::exp05_scheduler_suite::Row>,
    ia_trace::TraceLog,
) {
    let _ = ia_trace::session::take();
    ia_trace::set_capture(true);
    let rows = ia_bench::exp05_scheduler_suite::rows(true);
    ia_trace::set_capture(false);
    (rows, ia_trace::session::take())
}

#[test]
fn exp05_profile_attributes_every_simulated_cycle() {
    let _guard = CAPTURE_GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (rows, log) = captured_exp05();
    let profile = ia_trace::Profile::from_log(&log);

    // Each shared run's controller track partitions that run's cycles
    // into phases; across the suite the ctrl tracks must therefore sum
    // to exactly the total simulated cycles of the seven runs.
    let total_cycles: u64 = rows.iter().map(|r| r.cycles).sum();
    let ctrl_attributed: u64 = log
        .components
        .iter()
        .filter(|c| c.track.ends_with("/ctrl"))
        .map(ia_trace::ComponentTrace::attributed)
        .sum();
    assert_eq!(
        ctrl_attributed, total_cycles,
        "controller tracks must attribute every simulated cycle"
    );
    // Marks only ever come from the controller, so the whole profile's
    // attribution equals the same total.
    assert_eq!(profile.total_attributed, total_cycles);

    // The profile names the top components, hottest first.
    let top = profile.top_components(3);
    assert_eq!(top.len(), 3, "suite has engine, ctrl and dram components");
    assert_eq!(top[0].0, "ctrl", "marks make ctrl the hottest component");
    assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    let text = profile.to_text();
    assert!(text.contains("top components: ctrl"), "{text}");
}

#[test]
fn exp05_trace_renders_byte_stably_and_parses() {
    let _guard = CAPTURE_GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (_, first_log) = captured_exp05();
    let first = ia_trace::chrome::render_chrome(&first_log);
    let (_, second_log) = captured_exp05();
    let second = ia_trace::chrome::render_chrome(&second_log);
    assert_eq!(first, second, "repeat captures must render identically");
    let parsed = ia_telemetry::JsonValue::parse(&first).unwrap_or_else(|e| panic!("parses: {e:?}"));
    assert!(matches!(
        parsed.get("traceEvents"),
        Some(ia_telemetry::JsonValue::Arr(_))
    ));
    // Profile JSON is byte-stable too.
    assert_eq!(
        ia_trace::Profile::from_log(&first_log).to_json().render(),
        ia_trace::Profile::from_log(&second_log).to_json().render()
    );
}
