//! The shared experiment CLI's error contract, tested against a real
//! binary (`exp05_scheduler_suite` stands in for all 24): bad arguments
//! and unwritable output paths must exit with status `2` and a message
//! on stderr — never a panic backtrace, never a silent default run —
//! and the happy-path `--trace` output must be valid Chrome trace-event
//! JSON.

use std::process::{Command, Output};

fn exp05(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_exp05_scheduler_suite"))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn exp05: {e}"))
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = exp05(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{args:?}: stderr missing `{needle}`:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} must not panic:\n{stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "{args:?} must not run the experiment before failing"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&["--qiuck"], "unknown flag `--qiuck`");
    assert_usage_error(&["--quick", "extra"], "unknown flag `extra`");
}

#[test]
fn value_flags_require_a_value() {
    assert_usage_error(&["--threads"], "--threads expects a value");
    assert_usage_error(&["--quick", "--trace"], "--trace expects a value");
    assert_usage_error(&["--json"], "--json expects a value");
    assert_usage_error(&["--csv"], "--csv expects a value");
    assert_usage_error(&["--record-trace"], "--record-trace expects a value");
    assert_usage_error(&["--replay-trace"], "--replay-trace expects a value");
}

#[test]
fn record_and_replay_together_are_a_usage_error() {
    assert_usage_error(
        &["--record-trace", "a.trace", "--replay-trace", "b.trace"],
        "mutually exclusive",
    );
    // Order must not matter.
    assert_usage_error(
        &[
            "--quick",
            "--replay-trace",
            "b.trace",
            "--record-trace",
            "a.trace",
        ],
        "mutually exclusive",
    );
}

#[test]
fn replaying_a_missing_trace_exits_2_with_a_structured_error() {
    let out = exp05(&[
        "--quick",
        "--replay-trace",
        "/nonexistent-dir/missing.trace",
    ]);
    assert_eq!(out.status.code(), Some(2), "got {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: loading replay trace /nonexistent-dir/missing.trace"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(
        out.stdout.is_empty(),
        "must not run the experiment with a bad replay artifact"
    );
}

#[test]
fn recorded_trace_replays_byte_identically() {
    let dir = std::env::temp_dir().join(format!("ia-cli-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir: {e}"));
    let trace = dir.join("exp05.trace");
    let trace = trace.to_str().unwrap_or("bad-path");
    let rec = exp05(&["--quick", "--record-trace", trace]);
    assert!(rec.status.success(), "record run failed: {:?}", rec.status);
    assert!(!rec.stdout.is_empty(), "record run must still report");
    let rep = exp05(&["--quick", "--replay-trace", trace]);
    assert!(rep.status.success(), "replay run failed: {:?}", rep.status);
    assert_eq!(
        rec.stdout, rep.stdout,
        "replayed report must be byte-identical to the recorded run's"
    );
    // The artifact itself must be a valid v1 trace.
    let bytes = std::fs::read(trace).unwrap_or_else(|e| panic!("read trace: {e}"));
    let reader = ia_tracefmt::TraceReader::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("recorded artifact must decode: {e}"));
    assert!(!reader.records().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threads_must_be_a_positive_integer() {
    assert_usage_error(&["--threads", "0"], "positive integer");
    assert_usage_error(&["--threads", "lots"], "positive integer");
}

#[test]
fn unwritable_output_paths_exit_2_consistently() {
    // The run itself succeeds (stdout has the table); the write fails
    // afterwards, uniformly for every output kind.
    for flag in ["--json", "--csv", "--trace"] {
        let out = exp05(&["--quick", flag, "/nonexistent-dir/out.file"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} to unwritable path must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error: writing /nonexistent-dir/out.file"),
            "{flag}: {stderr}"
        );
    }
}

#[test]
fn trace_smoke_writes_valid_chrome_json() {
    let dir = std::env::temp_dir().join(format!("ia-cli-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir: {e}"));
    let path = dir.join("exp05.trace.json");
    let out = exp05(&["--quick", "--trace", path.to_str().unwrap_or("bad-path")]);
    assert!(out.status.success(), "trace run failed: {:?}", out.status);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read trace: {e}"));
    let json = ia_telemetry::JsonValue::parse(&text)
        .unwrap_or_else(|e| panic!("trace output must parse as JSON: {e:?}"));
    let events = match json.get("traceEvents") {
        Some(ia_telemetry::JsonValue::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "trace must contain events");
    // Spot-check the Chrome trace-event shape: every event has a name
    // and a phase, and the first events are thread-name metadata.
    for ev in events {
        assert!(ev.get("name").is_some() && ev.get("ph").is_some());
    }
    assert_eq!(
        events[0].get("ph"),
        Some(&ia_telemetry::JsonValue::Str("M".to_owned()))
    );
    let _ = std::fs::remove_dir_all(&dir);
}
