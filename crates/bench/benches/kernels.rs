//! Wall-clock benchmarks of the simulator's hot kernels: the DRAM command
//! path, the Ambit engine, BDI compression, scheduler selection, the
//! near-memory graph step, SECDED coding, NoC simulation, and the stride
//! prefetcher.
//!
//! Hand-rolled harness (`harness = false`): the build is offline, so
//! criterion is unavailable. Each kernel is timed over enough iterations
//! to exceed a minimum measurement window, and the per-iteration mean is
//! printed in ns. Pass a substring argument to run a subset:
//! `cargo bench --bench kernels -- dram`.

use std::hint::black_box;
use std::time::Instant;

use ia_cache::bdi_compress;
use ia_dram::{AccessKind, Cycle, DramConfig, DramModule, PhysAddr};
use ia_memctrl::{run_closed_loop, FrFcfs, MemRequest, RlScheduler, RlSchedulerConfig};
use ia_noc::{simulate, MeshConfig, RouterKind, Traffic};
use ia_pnm::{PnmGraphEngine, StackConfig};
use ia_prefetch::{PrefetchHarness, StridePrefetcher};
use ia_pum::{AmbitEngine, BitwiseOp};
use ia_reliability::{decode, encode};
use ia_workloads::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Times `f` until at least 200 ms have elapsed (after a warm-up pass)
/// and prints the mean per-iteration cost.
fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    // Warm-up.
    for _ in 0..3 {
        f();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed().as_millis() >= 200 {
            break;
        }
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<32} {per:>14.1} ns/iter  ({iters} iters)");
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let filter = filter.as_str();

    bench(filter, "dram/open_page_access", {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).expect("valid");
        let mut now = Cycle::ZERO;
        let mut addr = 0u64;
        move || {
            let r = dram
                .access(PhysAddr::new(addr), AccessKind::Read, now)
                .expect("access");
            now = r.data_ready;
            addr = addr.wrapping_add(64) % (1 << 30);
            black_box(r.data_ready);
        }
    });

    bench(filter, "ambit/and_row", {
        let mut engine = AmbitEngine::new(&DramConfig::ddr3_1600());
        let w = engine.row_words();
        engine
            .write_row(0, vec![0xAAAA_5555_AAAA_5555; w])
            .expect("row");
        engine
            .write_row(1, vec![0x1234_5678_9ABC_DEF0; w])
            .expect("row");
        move || {
            engine.execute(BitwiseOp::And, 2, 0, Some(1)).expect("and");
            black_box(engine.read_row(2).expect("result")[0]);
        }
    });

    bench(filter, "bdi/compress_pointer_block", {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut block = [0u8; 64];
        for i in 0..8 {
            let ptr = 0x7FFF_0000_0000u64 + rng.gen_range(0..4096u64);
            block[i * 8..][..8].copy_from_slice(&ptr.to_le_bytes());
        }
        move || {
            black_box(bdi_compress(&block).expect("64B"));
        }
    });

    let traces: Vec<Vec<MemRequest>> = (0..4)
        .map(|t| {
            (0..200u64)
                .map(|i| MemRequest::read(((t as u64) << 26) | (i * 64), t))
                .collect()
        })
        .collect();
    bench(filter, "scheduler/frfcfs_800_reqs", {
        let traces = traces.clone();
        move || {
            let r = run_closed_loop(
                DramConfig::ddr3_1600(),
                Box::new(FrFcfs::new()),
                &traces,
                8,
                100_000_000,
            )
            .expect("run");
            black_box(r.cycles);
        }
    });
    bench(filter, "scheduler/rl_800_reqs", {
        move || {
            let r = run_closed_loop(
                DramConfig::ddr3_1600(),
                Box::new(RlScheduler::new(RlSchedulerConfig::default())),
                &traces,
                8,
                100_000_000,
            )
            .expect("run");
            black_box(r.cycles);
        }
    });

    bench(filter, "pnm_graph/pagerank_iteration", {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = Graph::rmat(1024, 16 * 1024, &mut rng).expect("valid");
        move || {
            let engine = PnmGraphEngine::new(StackConfig::hmc_like(), &g).expect("valid");
            black_box(engine.pagerank(0.85, 1).1.total_ns);
        }
    });

    bench(filter, "ecc/secded_encode_decode", {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(decode(encode(x)));
        }
    });

    bench(filter, "noc/bufferless_1k_cycles", {
        let mesh = MeshConfig::new(8, 8).expect("valid mesh");
        let mut seed = 0u64;
        move || {
            seed += 1;
            black_box(
                simulate(
                    RouterKind::BufferlessDeflection,
                    mesh,
                    Traffic::UniformRandom,
                    0.1,
                    1000,
                    seed,
                )
                .expect("valid run")
                .delivered,
            );
        }
    });

    bench(filter, "prefetch/stride_demand", {
        let mut h = PrefetchHarness::new(64 * 1024, 64, 8, Box::new(StridePrefetcher::new(4)))
            .expect("valid harness");
        let mut addr = 0u64;
        move || {
            addr = addr.wrapping_add(64) % (1 << 28);
            h.demand(black_box(addr));
        }
    });
}
