//! Criterion wall-clock benchmarks of the simulator's hot kernels: the
//! DRAM command path, the Ambit engine, BDI compression, scheduler
//! selection, the near-memory graph step, and SECDED coding.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ia_cache::bdi_compress;
use ia_dram::{AccessKind, Cycle, DramConfig, DramModule, PhysAddr};
use ia_memctrl::{run_closed_loop, FrFcfs, MemRequest, RlScheduler, RlSchedulerConfig};
use ia_pnm::{PnmGraphEngine, StackConfig};
use ia_pum::{AmbitEngine, BitwiseOp};
use ia_noc::{simulate, MeshConfig, RouterKind, Traffic};
use ia_prefetch::{PrefetchHarness, StridePrefetcher};
use ia_reliability::{decode, encode};
use ia_workloads::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_dram_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(1));
    group.bench_function("open_page_access", |b| {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).expect("valid");
        let mut now = Cycle::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            let r = dram.access(PhysAddr::new(addr), AccessKind::Read, now).expect("access");
            now = r.data_ready;
            addr = addr.wrapping_add(64) % (1 << 30);
            black_box(r.data_ready)
        });
    });
    group.finish();
}

fn bench_ambit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ambit");
    let mut engine = AmbitEngine::new(&DramConfig::ddr3_1600());
    let w = engine.row_words();
    engine.write_row(0, vec![0xAAAA_5555_AAAA_5555; w]).expect("row");
    engine.write_row(1, vec![0x1234_5678_9ABC_DEF0; w]).expect("row");
    group.throughput(Throughput::Bytes(8 * w as u64));
    group.bench_function("and_row", |b| {
        b.iter(|| {
            engine.execute(BitwiseOp::And, 2, 0, Some(1)).expect("and");
            black_box(engine.read_row(2).expect("result")[0])
        });
    });
    group.finish();
}

fn bench_bdi(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdi");
    let mut rng = SmallRng::seed_from_u64(1);
    let mut block = [0u8; 64];
    for i in 0..8 {
        let ptr = 0x7FFF_0000_0000u64 + rng.gen_range(0..4096);
        block[i * 8..][..8].copy_from_slice(&ptr.to_le_bytes());
    }
    group.throughput(Throughput::Bytes(64));
    group.bench_function("compress_pointer_block", |b| {
        b.iter(|| black_box(bdi_compress(&block).expect("64B")));
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let traces: Vec<Vec<MemRequest>> = (0..4)
        .map(|t| (0..200u64).map(|i| MemRequest::read(((t as u64) << 26) | (i * 64), t)).collect())
        .collect();
    group.bench_function("frfcfs_closed_loop_800_reqs", |b| {
        b.iter(|| {
            let r = run_closed_loop(
                DramConfig::ddr3_1600(),
                Box::new(FrFcfs::new()),
                &traces,
                8,
                100_000_000,
            )
            .expect("run");
            black_box(r.cycles)
        });
    });
    group.bench_function("rl_closed_loop_800_reqs", |b| {
        b.iter(|| {
            let r = run_closed_loop(
                DramConfig::ddr3_1600(),
                Box::new(RlScheduler::new(RlSchedulerConfig::default())),
                &traces,
                8,
                100_000_000,
            )
            .expect("run");
            black_box(r.cycles)
        });
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("pnm_graph");
    let mut rng = SmallRng::seed_from_u64(2);
    let g = Graph::rmat(1024, 16 * 1024, &mut rng).expect("valid");
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    group.bench_function("pagerank_iteration", |b| {
        let engine = PnmGraphEngine::new(StackConfig::hmc_like(), &g).expect("valid");
        b.iter(|| black_box(engine.pagerank(0.85, 1).1.total_ns));
    });
    group.finish();
}

fn bench_ecc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");
    group.throughput(Throughput::Bytes(8));
    group.bench_function("secded_encode_decode", |b| {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(decode(encode(x)))
        });
    });
    group.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc");
    let mesh = MeshConfig::new(8, 8).expect("valid mesh");
    group.bench_function("bufferless_1k_cycles", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                simulate(
                    RouterKind::BufferlessDeflection,
                    mesh,
                    Traffic::UniformRandom,
                    0.1,
                    1000,
                    seed,
                )
                .expect("valid run")
                .delivered,
            )
        });
    });
    group.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetch");
    group.throughput(Throughput::Elements(1));
    group.bench_function("stride_demand", |b| {
        let mut h = PrefetchHarness::new(64 * 1024, 64, 8, Box::new(StridePrefetcher::new(4)))
            .expect("valid harness");
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) % (1 << 28);
            h.demand(black_box(addr));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dram_access,
    bench_ambit,
    bench_bdi,
    bench_scheduler,
    bench_graph,
    bench_ecc,
    bench_noc,
    bench_prefetch
);
criterion_main!(benches);
