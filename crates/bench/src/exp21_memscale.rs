//! **E21 — MemScale: memory DVFS.**
//!
//! Paper citations [127, 132] (David+ ICAC 2011; Deng+ ASPLOS 2011),
//! under the bottom-up push's "energy consumption" head: memory
//! frequency/voltage should track demand. Expected shape: large memory
//! energy savings on low-utilization epochs at a bounded (few percent)
//! performance cost, vanishing as utilization rises.

use ia_core::Table;
use ia_memctrl::{epoch_outcome, standard_points, MemScaleGovernor};

use crate::pct;

/// Sweep rows `(avg utilization, energy vs full-speed, slowdown)`.
#[must_use]
pub fn sweep(quick: bool) -> Vec<(f64, f64, f64)> {
    let epochs = if quick { 100 } else { 2000 };
    // Each utilization level owns its trace and governor — independent
    // tasks for the worker pool, returned in grid order.
    ia_par::par_map(
        ia_par::auto_threads(),
        vec![0.05f64, 0.15, 0.30, 0.50, 0.95],
        |base| {
            // Bursty trace around the base utilization.
            let trace: Vec<f64> = (0..epochs)
                .map(|i| {
                    if i % 10 == 0 {
                        (base * 2.5).min(0.95)
                    } else {
                        base * 0.8
                    }
                })
                .collect();
            let mut g =
                MemScaleGovernor::new(standard_points().to_vec(), 0.10).expect("valid governor");
            let o = g.run(&trace).expect("trace runs");
            (base, o.energy, o.slowdown)
        },
    )
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let mut table = Table::new(&[
        "avg utilization",
        "memory energy (vs full speed)",
        "slowdown",
        "energy saved",
    ]);
    for (u, energy, slowdown) in sweep(quick) {
        table.row(&[
            pct(u),
            format!("{energy:.2}"),
            format!("{slowdown:.3}"),
            pct(1.0 - energy),
        ]);
    }
    // Illustrate the static points the governor chooses among.
    let mut pts = Table::new(&["operating point", "speed", "power", "slowdown @ 20% util"]);
    for p in standard_points() {
        let o = epoch_outcome(0.2, p).expect("valid point");
        pts.row(&[
            format!("{:.0}% clock", p.speed * 100.0),
            format!("{:.2}", p.speed),
            format!("{:.2}", p.power),
            format!("{:.3}", o.slowdown),
        ]);
    }
    format!(
        "E21: memory DVFS (MemScale) with a 10% slowdown budget\n\
         (paper shape: tens-of-percent memory energy savings at low utilization,\n\
          shrinking to zero as the channel fills)\n{table}\n\n{pts}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let data = sweep(quick);
    let best_saving = data.iter().fold(0.0f64, |a, &(_, e, _)| a.max(1.0 - e));
    let mut rep = crate::report::ExperimentReport::new("exp21_memscale", quick)
        .metric("best_energy_saving", best_saving)
        .columns(&["avg_utilization", "memory_energy_vs_full", "slowdown"]);
    for (util, energy, slowdown) in &data {
        rep = rep.row(&[
            format!("{util:.2}"),
            format!("{energy:.3}"),
            format!("{slowdown:.3}"),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_shrink_with_utilization() {
        let s = sweep(true);
        for w in s.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-9,
                "energy must not drop as utilization rises: {w:?}"
            );
        }
        assert!(s[0].1 < 0.5, "idle epochs save >50%: {}", s[0].1);
        let busy = s.last().expect("non-empty").1;
        assert!(
            busy > 0.95,
            "a saturated channel cannot scale down: energy {busy:.2}"
        );
    }

    #[test]
    fn slowdown_budget_is_respected_everywhere() {
        for (u, _, slowdown) in sweep(true) {
            assert!(
                slowdown <= 1.10 + 1e-9,
                "budget violated at {u}: {slowdown}"
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = run(true);
        assert!(s.contains("energy saved"));
        assert!(s.contains("operating point"));
    }
}
