//! **E8 — Near-memory graph processing (Tesseract-class).**
//!
//! Paper claim (§IV): PNM "can greatly accelerate real applications,
//! including … graph analytics", with "up to approximately two orders of
//! magnitude improvement" as internal bandwidth scales; Tesseract (Ahn+,
//! ISCA 2015) reports ≈10x at 16-vault-cube scale.

use ia_core::Table;
use ia_pnm::{host_pagerank_ns, PnmGraphEngine, StackConfig};
use ia_workloads::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{pct, ratio};

/// Outcome for assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Speedup at each vault count (vaults, speedup).
    pub speedups: Vec<(usize, f64)>,
}

/// Computes the vault-scaling sweep.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    static CACHE: crate::report::OutcomeCache<Outcome> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_outcome(quick))
}

fn compute_outcome(quick: bool) -> Outcome {
    let (v, e) = if quick {
        (2048, 32 * 1024)
    } else {
        (16 * 1024, 512 * 1024)
    };
    let mut rng = SmallRng::seed_from_u64(41);
    // lint: allow(P001, v and e are positive literals for both sizes - always a valid RMAT shape)
    let g = Graph::rmat(v, e, &mut rng).expect("valid rmat");
    let iterations = 10;
    // The graph is built once and shared read-only; each vault count is
    // an independent PNM simulation over it.
    let speedups = ia_par::par_map(ia_par::auto_threads(), vec![1usize, 4, 16, 32], |vaults| {
        let stack = StackConfig::hmc_like()
            .with_vaults(vaults)
            // lint: allow(P001, vaults ranges over the literal non-zero list 1/4/16/32)
            .expect("non-zero");
        // lint: allow(P001, the hmc_like preset is valid for every vault count in the list)
        let engine = PnmGraphEngine::new(stack, &g).expect("valid stack");
        let (_, report) = engine.pagerank(0.85, iterations);
        (
            vaults,
            host_pagerank_ns(&stack, &g, iterations) / report.total_ns,
        )
    });
    Outcome { speedups }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let (v, e) = if quick {
        (2048, 32 * 1024)
    } else {
        (16 * 1024, 512 * 1024)
    };
    let mut rng = SmallRng::seed_from_u64(41);
    // lint: allow(P001, v and e are positive literals for both sizes - always a valid RMAT shape)
    let g = Graph::rmat(v, e, &mut rng).expect("valid rmat");
    let iterations = 10;
    let mut table = Table::new(&[
        "vaults",
        "internal GB/s",
        "PNM time (us)",
        "host time (us)",
        "speedup",
        "remote edges",
    ]);
    // Same fan-out as `outcome`; each task returns its preformatted
    // table cells, appended in vault order after the pool joins.
    let rows = ia_par::par_map(ia_par::auto_threads(), vec![1usize, 4, 16, 32], |vaults| {
        let stack = StackConfig::hmc_like()
            .with_vaults(vaults)
            // lint: allow(P001, vaults ranges over the literal non-zero list 1/4/16/32)
            .expect("non-zero");
        // lint: allow(P001, the hmc_like preset is valid for every vault count in the list)
        let engine = PnmGraphEngine::new(stack, &g).expect("valid stack");
        let (ranks, report) = engine.pagerank(0.85, iterations);
        // Sanity: functional result matches the host reference.
        debug_assert_eq!(ranks.len(), g.vertex_count() as usize);
        let host = host_pagerank_ns(&stack, &g, iterations);
        [
            vaults.to_string(),
            format!("{:.0}", stack.internal_gbps_total()),
            format!("{:.1}", report.total_ns / 1000.0),
            format!("{:.1}", host / 1000.0),
            ratio(host, report.total_ns),
            pct(report.remote_edge_fraction),
        ]
    });
    for cells in &rows {
        table.row(cells);
    }
    format!(
        "E8: PageRank on an R-MAT graph ({v} vertices, {e} edges), near-memory vs host\n\
         (paper shape: ≈10x at 16 vaults, scaling with internal bandwidth)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    let best = o.speedups.iter().fold(0.0f64, |a, &(_, s)| a.max(s));
    let mut rep = crate::report::ExperimentReport::new("exp08_pnm_graph", quick)
        .metric("best_speedup", best)
        .columns(&["vaults", "speedup"]);
    for (vaults, s) in &o.speedups {
        rep = rep.row(&[vaults.to_string(), format!("{s:.2}")]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_vaults() {
        let o = outcome(true);
        let s: Vec<f64> = o.speedups.iter().map(|&(_, s)| s).collect();
        assert!(s[1] > s[0], "4 vaults should beat 1: {s:?}");
        assert!(s[2] > s[1], "16 vaults should beat 4: {s:?}");
    }

    #[test]
    fn sixteen_vaults_reach_tesseract_band() {
        let o = outcome(true);
        let s16 = o
            .speedups
            .iter()
            .find(|&&(v, _)| v == 16)
            .expect("16 vaults")
            .1;
        assert!(s16 > 3.0, "16-vault speedup {s16:.1} should be several x");
    }

    #[test]
    fn report_renders() {
        let s = run(true);
        assert!(s.contains("vaults"));
        assert!(s.contains("speedup"));
    }
}
