//! **E12 — X-Mem data-aware cache management.**
//!
//! Paper claim (§IV, Data-Aware): expressive interfaces that convey data
//! semantics (X-Mem, Vijaykumar+ ISCA 2018) let the cache protect
//! critical reused structures from streaming pollution — a benefit
//! invisible to a semantics-blind hierarchy.

use ia_cache::{Cache, CacheOp};
use ia_core::Table;
use ia_workloads::{Op, StreamGen, TraceGenerator, ZipfGen};
use ia_xmem::{AtomRegistry, Criticality, DataAttributes, DataAwareCache, Locality};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::pct;

/// Outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Hit rate of the oblivious cache.
    pub oblivious_hit_rate: f64,
    /// Hit rate of the data-aware cache.
    pub aware_hit_rate: f64,
    /// Hot-line retention after the scan (oblivious).
    pub oblivious_retention: f64,
    /// Hot-line retention after the scan (data-aware).
    pub aware_retention: f64,
}

const HOT_REGION: u64 = 0;
const HOT_BYTES: u64 = 32 * 1024;
const STREAM_REGION: u64 = 1 << 24;
const STREAM_BYTES: u64 = 1 << 22;

fn workload(quick: bool) -> Vec<(u64, Op)> {
    let n = if quick { 4_000 } else { 40_000 };
    let mut rng = SmallRng::seed_from_u64(71);
    let mut hot =
        ZipfGen::new(HOT_REGION, (HOT_BYTES / 4096) as usize, 4096, 1.0, 0.1).expect("valid zipf");
    let mut stream = StreamGen::new(STREAM_REGION, 64, STREAM_BYTES, 0.0).expect("valid stream");
    // Interleave: 1 hot access per 3 stream accesses (a scan sweeping past
    // a latency-critical index structure).
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let r = if i % 4 == 0 {
            hot.next_request(&mut rng)
        } else {
            stream.next_request(&mut rng)
        };
        out.push((r.addr, r.op));
    }
    out
}

fn registry() -> AtomRegistry {
    let mut reg = AtomRegistry::new();
    reg.register(
        HOT_REGION..HOT_REGION + HOT_BYTES,
        DataAttributes::new()
            .criticality(Criticality::Critical)
            .locality(Locality::Reuse),
    )
    .expect("disjoint");
    reg.register(
        STREAM_REGION..STREAM_REGION + STREAM_BYTES,
        DataAttributes::new().locality(Locality::Streaming),
    )
    .expect("disjoint");
    reg
}

fn retention(contains: impl Fn(u64) -> bool) -> f64 {
    let lines = HOT_BYTES / 64;
    let kept = (0..lines)
        .filter(|&l| contains(HOT_REGION + l * 64))
        .count();
    kept as f64 / lines as f64
}

/// Computes the outcome.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let trace = workload(quick);
    let to_op = |op: Op| match op {
        Op::Read => CacheOp::Read,
        Op::Write => CacheOp::Write,
    };

    let mut oblivious = Cache::new(64 * 1024, 64, 16).expect("valid cache");
    for &(addr, op) in &trace {
        oblivious.access(addr, to_op(op));
    }
    let reg = registry();
    let mut aware = DataAwareCache::new(Cache::new(64 * 1024, 64, 16).expect("valid"), &reg);
    for &(addr, op) in &trace {
        aware.access(addr, to_op(op));
    }
    Outcome {
        oblivious_hit_rate: oblivious.stats().hit_rate(),
        aware_hit_rate: aware.cache().stats().hit_rate(),
        oblivious_retention: retention(|a| oblivious.contains(a)),
        aware_retention: retention(|a| aware.cache().contains(a)),
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let o = outcome(quick);
    let mut table = Table::new(&["cache", "LLC hit rate", "hot-set retention"]);
    table.row(&[
        "semantics-oblivious",
        &pct(o.oblivious_hit_rate),
        &pct(o.oblivious_retention),
    ]);
    table.row(&[
        "X-Mem data-aware",
        &pct(o.aware_hit_rate),
        &pct(o.aware_retention),
    ]);
    format!(
        "E12: data-aware cache management (critical hot structure vs streaming scan)\n\
         (paper shape: attribute-guided insertion protects the hot set; hit rate rises)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp12_xmem", quick)
        .metric("oblivious_hit_rate", o.oblivious_hit_rate)
        .metric("aware_hit_rate", o.aware_hit_rate)
        .metric("oblivious_retention", o.oblivious_retention)
        .metric("aware_retention", o.aware_retention)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_awareness_improves_hit_rate() {
        let o = outcome(true);
        assert!(
            o.aware_hit_rate > o.oblivious_hit_rate,
            "aware {:.3} must beat oblivious {:.3}",
            o.aware_hit_rate,
            o.oblivious_hit_rate
        );
    }

    #[test]
    fn data_awareness_protects_the_hot_set() {
        let o = outcome(true);
        assert!(
            o.aware_retention > o.oblivious_retention,
            "aware retention {:.2} must beat oblivious {:.2}",
            o.aware_retention,
            o.oblivious_retention
        );
        assert!(
            o.aware_retention > 0.5,
            "most of the hot set should survive"
        );
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("X-Mem"));
    }
}
