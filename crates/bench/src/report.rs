//! Machine-readable experiment reports and the shared CLI runner.
//!
//! Every experiment module exposes `report(quick) -> ExperimentReport`
//! next to its human-facing `run(quick) -> String`. The `expNN_*`
//! binaries route both through [`cli`], which understands:
//!
//! * `--quick` — run the reduced-size configuration;
//! * `--threads <n>` — worker count for parallel sweeps (`ia-par`);
//!   `1` is the exact serial path, the default is the host's available
//!   parallelism;
//! * `--json <path>` — write the report as JSON;
//! * `--csv <path>` — write the report's table (or metrics) as CSV;
//! * `--trace <path>` — write an `ia-trace` Chrome trace-event JSON
//!   file of the run (cycle-exact, byte-identical across `--threads`);
//! * `--record-trace <path>` — record the run's generated workloads as
//!   an `ia-tracefmt` artifact (see `crates/tracefmt/FORMAT.md`);
//! * `--replay-trace <path>` — drive the run from a recorded artifact
//!   instead of generating workloads (mutually exclusive with
//!   `--record-trace`);
//! * `--profile` — print the cycle-attribution profile and a `trace.*`
//!   telemetry snapshot to stderr.
//!
//! Unknown flags and flags missing their value are rejected with exit
//! status `2`, so sweep scripts fail loudly instead of silently running
//! a default configuration.
//!
//! Reports round-trip through `ia-telemetry`'s own JSON parser — see
//! [`ExperimentReport::from_json`] — so downstream tooling can consume
//! `BENCH_PR.json` without serde (the build is offline by design).
//!
//! ## Determinism vs. observability
//!
//! Everything in the canonical report (params, metrics, table) must be
//! byte-identical across `--threads` settings. Wall-clock-derived
//! numbers — `par_threads`, `par_tasks`, `par_imbalance` — therefore
//! live in a separate [`runtime`](ExperimentReport::runtime) section
//! that is *excluded* from the JSON/CSV emitters and printed to stderr
//! instead.

use std::sync::OnceLock;

use ia_telemetry::{csv, JsonValue};

/// Process-wide memo of an experiment's expensive computation, keyed by
/// the `--quick` flag.
///
/// [`cli`] renders the human-readable run *and* (under `--json`/`--csv`)
/// the machine-readable report in one invocation, and both call the same
/// underlying computation; without the memo each binary simulated its
/// entire workload twice. Experiment results are deterministic by
/// construction — that is exactly what `BENCH_PR.json`'s byte-identity
/// gate asserts — so caching the first computation is invisible
/// everywhere except wall-clock.
///
/// Usage, inside an experiment module:
///
/// ```ignore
/// pub fn rows(quick: bool) -> Vec<Row> {
///     static CACHE: OutcomeCache<Vec<Row>> = OutcomeCache::new();
///     CACHE.get_or_compute(quick, || compute_rows(quick))
/// }
/// ```
#[derive(Debug)]
pub struct OutcomeCache<T> {
    quick: OnceLock<T>,
    full: OnceLock<T>,
}

impl<T: Clone> OutcomeCache<T> {
    /// Creates an empty cache (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        OutcomeCache {
            quick: OnceLock::new(),
            full: OnceLock::new(),
        }
    }

    /// Returns the value for `quick`, running `compute` only on the
    /// first call with that flag.
    pub fn get_or_compute(&self, quick: bool, compute: impl FnOnce() -> T) -> T {
        let slot = if quick { &self.quick } else { &self.full };
        slot.get_or_init(compute).clone()
    }
}

impl<T: Clone> Default for OutcomeCache<T> {
    fn default() -> Self {
        OutcomeCache::new()
    }
}

/// A structured record of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment name (the module name, e.g. `exp02_rowclone`).
    pub name: String,
    /// Run parameters as key/value strings (`quick`, sizes, seeds…).
    pub params: Vec<(String, String)>,
    /// Headline scalar metrics (speedups, rates, energies).
    pub metrics: Vec<(String, f64)>,
    /// Column headers of the result table (may be empty).
    pub headers: Vec<String>,
    /// Result-table rows, one `Vec` of cells per row.
    pub rows: Vec<Vec<String>>,
    /// Runtime-only diagnostics (`par_threads`, `par_imbalance`, …):
    /// wall-clock derived and nondeterministic, so excluded from
    /// [`to_json`](ExperimentReport::to_json) /
    /// [`to_csv`](ExperimentReport::to_csv) and reported on stderr.
    pub runtime: Vec<(String, f64)>,
}

impl ExperimentReport {
    /// Starts a report for `name`; records `quick` as the first param.
    #[must_use]
    pub fn new(name: &str, quick: bool) -> Self {
        ExperimentReport {
            name: name.to_owned(),
            params: vec![("quick".to_owned(), quick.to_string())],
            metrics: Vec::new(),
            headers: Vec::new(),
            rows: Vec::new(),
            runtime: Vec::new(),
        }
    }

    /// Adds a run parameter (chainable).
    #[must_use]
    pub fn param(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.params.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a headline metric (chainable).
    #[must_use]
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.push((key.to_owned(), value));
        self
    }

    /// Adds a runtime-only diagnostic (chainable). Unlike
    /// [`metric`](ExperimentReport::metric), the value never enters the
    /// JSON/CSV output: it is timing-derived and would break the
    /// byte-identity of reports across `--threads` settings.
    #[must_use]
    pub fn runtime_metric(mut self, key: &str, value: f64) -> Self {
        self.runtime.push((key.to_owned(), value));
        self
    }

    /// Sets the result-table headers (chainable).
    #[must_use]
    pub fn columns(mut self, headers: &[&str]) -> Self {
        self.headers = headers.iter().map(|h| (*h).to_owned()).collect();
        self
    }

    /// Appends a result-table row (chainable).
    #[must_use]
    pub fn row(mut self, cells: &[String]) -> Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Looks up a headline metric by name.
    #[must_use]
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Renders the report as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let params = self
            .params
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
            .collect();
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
            .collect();
        let headers = self
            .headers
            .iter()
            .map(|h| JsonValue::Str(h.clone()))
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| JsonValue::Arr(r.iter().map(|c| JsonValue::Str(c.clone())).collect()))
            .collect();
        JsonValue::obj(vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("params", JsonValue::Obj(params)),
            ("metrics", JsonValue::Obj(metrics)),
            ("headers", JsonValue::Arr(headers)),
            ("rows", JsonValue::Arr(rows)),
        ])
    }

    /// Reconstructs a report from the JSON emitted by
    /// [`to_json`](ExperimentReport::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let name = match v.get("name") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("missing string field `name`".to_owned()),
        };
        let params = match v.get("params") {
            Some(JsonValue::Obj(entries)) => entries
                .iter()
                .map(|(k, v)| match v {
                    JsonValue::Str(s) => Ok((k.clone(), s.clone())),
                    _ => Err(format!("param `{k}` is not a string")),
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing object field `params`".to_owned()),
        };
        let metrics = match v.get("metrics") {
            Some(JsonValue::Obj(entries)) => entries
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("metric `{k}` is not a number"))
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing object field `metrics`".to_owned()),
        };
        let headers = match v.get("headers") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|h| match h {
                    JsonValue::Str(s) => Ok(s.clone()),
                    _ => Err("non-string header".to_owned()),
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing array field `headers`".to_owned()),
        };
        let rows = match v.get("rows") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|r| match r {
                    JsonValue::Arr(cells) => cells
                        .iter()
                        .map(|c| match c {
                            JsonValue::Str(s) => Ok(s.clone()),
                            _ => Err("non-string cell".to_owned()),
                        })
                        .collect::<Result<Vec<_>, _>>(),
                    _ => Err("non-array row".to_owned()),
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing array field `rows`".to_owned()),
        };
        Ok(ExperimentReport {
            name,
            params,
            metrics,
            headers,
            rows,
            // Runtime diagnostics are never serialized, so a parsed
            // report always comes back without them.
            runtime: Vec::new(),
        })
    }

    /// Renders the report as CSV: the result table when one is present,
    /// otherwise the metrics as `metric,value` lines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        if self.headers.is_empty() {
            let headers = ["metric".to_owned(), "value".to_owned()];
            let rows: Vec<Vec<String>> = self
                .metrics
                .iter()
                .map(|(k, v)| vec![k.clone(), format!("{v}")])
                .collect();
            csv::render(&headers, &rows)
        } else {
            csv::render(&self.headers, &self.rows)
        }
    }
}

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct CliOptions {
    quick: bool,
    threads: Option<String>,
    json: Option<String>,
    csv: Option<String>,
    trace: Option<String>,
    record_trace: Option<String>,
    replay_trace: Option<String>,
    profile: bool,
}

/// Strictly parses `args` (`args[0]` is the binary name). Every flag
/// must be recognized and every value-taking flag must have a value —
/// anything else is an error, so a typo can't silently run a default
/// configuration.
fn parse_cli(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--profile" => opts.profile = true,
            flag @ ("--threads" | "--json" | "--csv" | "--trace" | "--record-trace"
            | "--replay-trace") => {
                i += 1;
                let Some(value) = args.get(i) else {
                    return Err(format!("{flag} expects a value"));
                };
                let slot = match flag {
                    "--threads" => &mut opts.threads,
                    "--json" => &mut opts.json,
                    "--csv" => &mut opts.csv,
                    "--record-trace" => &mut opts.record_trace,
                    "--replay-trace" => &mut opts.replay_trace,
                    _ => &mut opts.trace,
                };
                *slot = Some(value.clone());
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (expected --quick, --threads <n>, \
                     --json <path>, --csv <path>, --trace <path>, \
                     --record-trace <path>, --replay-trace <path>, --profile)"
                ))
            }
        }
        i += 1;
    }
    if opts.record_trace.is_some() && opts.replay_trace.is_some() {
        return Err(
            "--record-trace and --replay-trace are mutually exclusive (a run either \
             produces the artifact or consumes it)"
                .to_owned(),
        );
    }
    Ok(opts)
}

/// Shared experiment-binary entry point: prints the human-readable run
/// and, when `--json <path>` / `--csv <path>` are given, writes the
/// machine-readable report. `--quick` selects the reduced configuration
/// for both; `--threads <n>` sets the `ia-par` worker count for the
/// whole process (`1` = the exact serial path, default = available
/// parallelism). `--trace <path>` records an `ia-trace` session during
/// the run and writes it as Chrome trace-event JSON; `--profile`
/// additionally prints the cycle-attribution profile to stderr.
/// `--record-trace <path>` captures the run's workloads as an
/// `ia-tracefmt` artifact and `--replay-trace <path>` drives the run
/// from one (mutually exclusive — rejected with exit status `2`).
/// Parallel-execution diagnostics for the invocation are printed to
/// stderr and attached to the report as
/// [runtime metrics](ExperimentReport::runtime_metric).
///
/// # Exits
///
/// Exits with status `2` (after a message on stderr, no backtrace) if
/// an argument is not recognized, `--threads` is not a positive
/// integer, or a requested output file cannot be written — an
/// experiment binary has nothing sensible to do with any of those, and
/// callers (CI, sweep scripts) key off the exit code.
pub fn cli(run: impl FnOnce(bool) -> String, report: impl FnOnce(bool) -> ExperimentReport) {
    let args: Vec<String> = std::env::args().collect();
    let opts = parse_cli(&args).unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        std::process::exit(2);
    });
    if let Some(t) = &opts.threads {
        let n = t
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("error: --threads expects a positive integer, got `{t}`");
                std::process::exit(2);
            });
        ia_par::set_threads(n);
    }
    if let Some(path) = &opts.replay_trace {
        if let Err(e) = crate::replay::start_replay(path) {
            eprintln!("error: loading replay trace {path}: {e}");
            std::process::exit(2);
        }
    }
    if opts.record_trace.is_some() {
        crate::replay::start_record();
    }
    let tracing = opts.trace.is_some() || opts.profile;
    let _ = ia_par::ledger::take();
    if tracing {
        let _ = ia_trace::session::take();
        ia_trace::set_capture(true);
    }
    print!("{}", run(opts.quick));
    if let Some(path) = &opts.record_trace {
        // Workload construction happens inside `run` (and is memoized
        // across `report`), so the session is complete here.
        if let Err(e) = crate::replay::finish_record(path) {
            eprintln!("error: writing recorded trace {path}: {e}");
            std::process::exit(2);
        }
    }
    if tracing {
        // Capture must be off before `report(quick)` re-runs the
        // experiment below, or the session would hold everything twice.
        ia_trace::set_capture(false);
        let log = ia_trace::session::take();
        if let Some(path) = &opts.trace {
            write_or_exit(path, &ia_trace::chrome::render_chrome(&log));
        }
        if opts.profile {
            eprint!("{}", profile_text(&log));
        }
    }
    if opts.json.is_none() && opts.csv.is_none() {
        eprintln!("{}", par_diagnostics_line());
        return;
    }
    let rep = attach_par_diagnostics(report(opts.quick));
    eprintln!("{}", par_diagnostics_from(&rep));
    if let Some(path) = opts.json {
        let mut text = rep.to_json().render();
        text.push('\n');
        write_or_exit(&path, &text);
    }
    if let Some(path) = opts.csv {
        write_or_exit(&path, &rep.to_csv());
    }
}

/// Renders the cycle-attribution profile of `log` plus a `trace.*`
/// telemetry snapshot, for the `--profile` stderr block.
fn profile_text(log: &ia_trace::TraceLog) -> String {
    let profile = ia_trace::Profile::from_log(log);
    let mut reg = ia_telemetry::Registry::new();
    reg.collect("trace.profile", &profile);
    let mut out = profile.to_text();
    for (name, value) in reg.iter() {
        out.push_str(&format!("[trace] {name}={}\n", value.scalar()));
    }
    out
}

/// Writes `text` to `path`, or reports the failure on stderr and exits
/// with status `2` — a clean error for callers instead of a panic
/// backtrace.
fn write_or_exit(path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(2);
    }
}

/// Drains the `ia-par` ledger into the report's runtime section:
/// `par_threads` (configured workers), `par_tasks` (tasks executed this
/// invocation), `par_imbalance` (worst max/mean worker busy time, `1` =
/// balanced or serial), `par_busy_ms` (total worker busy time) and
/// `par_slowest_ms` (longest single task — the wall-clock floor of the
/// sweep no matter how many workers are added).
#[must_use]
pub fn attach_par_diagnostics(rep: ExperimentReport) -> ExperimentReport {
    let ledger = ia_par::ledger::take();
    let imbalance = if ledger.parallel_invocations == 0 {
        1.0
    } else {
        ledger.worst_imbalance.max(1.0)
    };
    rep.runtime_metric("par_threads", ia_par::auto_threads() as f64)
        .runtime_metric("par_tasks", ledger.tasks as f64)
        .runtime_metric("par_imbalance", imbalance)
        .runtime_metric("par_busy_ms", ledger.busy_total.as_secs_f64() * 1e3)
        .runtime_metric("par_slowest_ms", ledger.slowest_task.as_secs_f64() * 1e3)
}

/// Renders the runtime diagnostics of `rep` as a one-line stderr note.
fn par_diagnostics_from(rep: &ExperimentReport) -> String {
    let get = |k: &str| {
        rep.runtime
            .iter()
            .find(|(n, _)| n == k)
            .map_or(0.0, |(_, v)| *v)
    };
    format!(
        "[par] threads={} tasks={} imbalance={:.2} busy={:.1}ms slowest={:.1}ms",
        get("par_threads"),
        get("par_tasks"),
        get("par_imbalance"),
        get("par_busy_ms"),
        get("par_slowest_ms"),
    )
}

/// Diagnostics line for runs that never built a report.
fn par_diagnostics_line() -> String {
    par_diagnostics_from(&attach_par_diagnostics(ExperimentReport::new("", false)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        ExperimentReport::new("exp99_sample", true)
            .param("bytes", 4096)
            .metric("speedup", 11.6)
            .metric("energy_gain", 74.4)
            .columns(&["size", "speedup"])
            .row(&["4 KiB".to_owned(), "11.6x".to_owned()])
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let rep = sample();
        let text = rep.to_json().render();
        let parsed = JsonValue::parse(&text).expect("own output parses");
        let back = ExperimentReport::from_json(&parsed).expect("well-formed");
        assert_eq!(back, rep);
    }

    #[test]
    fn metric_lookup_and_quick_param() {
        let rep = sample();
        assert_eq!(rep.metric_value("speedup"), Some(11.6));
        assert_eq!(rep.metric_value("missing"), None);
        assert!(rep
            .params
            .contains(&("quick".to_owned(), "true".to_owned())));
    }

    #[test]
    fn csv_uses_table_when_present_and_metrics_otherwise() {
        let with_table = sample().to_csv();
        assert!(with_table.starts_with("size,speedup"));
        let metrics_only = ExperimentReport::new("m", false).metric("x", 1.5).to_csv();
        assert!(metrics_only.contains("metric,value"));
        assert!(metrics_only.contains("x,1.5"));
    }

    #[test]
    fn runtime_metrics_stay_out_of_json_and_csv() {
        let rep = sample()
            .runtime_metric("par_threads", 4.0)
            .runtime_metric("par_imbalance", 1.31);
        let json = rep.to_json().render();
        assert!(!json.contains("par_threads"), "runtime leaked into JSON");
        assert!(!rep.to_csv().contains("par_imbalance"));
        let parsed = JsonValue::parse(&json).unwrap();
        let back = ExperimentReport::from_json(&parsed).unwrap();
        assert!(back.runtime.is_empty());
        // Byte-identity: the canonical output ignores runtime entirely.
        assert_eq!(json, sample().to_json().render());
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        std::iter::once("exp99_sample")
            .chain(parts.iter().copied())
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn parse_cli_accepts_every_documented_flag() {
        let opts = parse_cli(&argv(&[
            "--quick",
            "--threads",
            "4",
            "--json",
            "a.json",
            "--csv",
            "b.csv",
            "--trace",
            "t.json",
            "--record-trace",
            "w.trace",
            "--profile",
        ]))
        .expect("all flags are valid");
        assert!(opts.quick && opts.profile);
        assert_eq!(opts.threads.as_deref(), Some("4"));
        assert_eq!(opts.json.as_deref(), Some("a.json"));
        assert_eq!(opts.csv.as_deref(), Some("b.csv"));
        assert_eq!(opts.trace.as_deref(), Some("t.json"));
        assert_eq!(opts.record_trace.as_deref(), Some("w.trace"));
        assert_eq!(opts.replay_trace, None);
        let opts = parse_cli(&argv(&["--replay-trace", "w.trace"])).expect("valid");
        assert_eq!(opts.replay_trace.as_deref(), Some("w.trace"));
        assert_eq!(parse_cli(&argv(&[])).unwrap(), CliOptions::default());
    }

    #[test]
    fn parse_cli_rejects_unknown_flags_and_missing_values() {
        let err = parse_cli(&argv(&["--qiuck"])).unwrap_err();
        assert!(err.contains("unknown flag `--qiuck`"), "{err}");
        for flag in [
            "--threads",
            "--json",
            "--csv",
            "--trace",
            "--record-trace",
            "--replay-trace",
        ] {
            let err = parse_cli(&argv(&[flag])).unwrap_err();
            assert!(err.contains("expects a value"), "{flag}: {err}");
        }
        // A stray positional argument is as suspect as a typoed flag.
        assert!(parse_cli(&argv(&["quick"])).is_err());
    }

    #[test]
    fn parse_cli_rejects_record_and_replay_together() {
        let err = parse_cli(&argv(&[
            "--record-trace",
            "a.trace",
            "--replay-trace",
            "b.trace",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn profile_text_reports_attribution_and_telemetry() {
        let mut tracer = ia_trace::Tracer::new("ctrl", 16);
        tracer.mark("sched.issue", 0);
        tracer.mark_n("dram.burst", 1, 9);
        let mut log = ia_trace::TraceLog::new();
        log.push(tracer.take());
        let text = profile_text(&log);
        assert!(
            text.contains("[profile] attributed 10 simulated cycles"),
            "{text}"
        );
        assert!(
            text.contains("[trace] trace.profile.attributed_cycles=10"),
            "{text}"
        );
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        let v = JsonValue::parse("{\"name\": 3}").unwrap();
        assert!(ExperimentReport::from_json(&v).is_err());
        let v = JsonValue::parse("{\"name\": \"x\"}").unwrap();
        assert!(ExperimentReport::from_json(&v).is_err());
    }
}
