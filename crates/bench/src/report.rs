//! Machine-readable experiment reports and the shared CLI runner.
//!
//! Every experiment module exposes `report(quick) -> ExperimentReport`
//! next to its human-facing `run(quick) -> String`. The `expNN_*`
//! binaries route both through [`cli`], which understands:
//!
//! * `--quick` — run the reduced-size configuration;
//! * `--json <path>` — write the report as JSON;
//! * `--csv <path>` — write the report's table (or metrics) as CSV.
//!
//! Reports round-trip through `ia-telemetry`'s own JSON parser — see
//! [`ExperimentReport::from_json`] — so downstream tooling can consume
//! `BENCH_PR.json` without serde (the build is offline by design).

use ia_telemetry::{csv, JsonValue};

/// A structured record of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment name (the module name, e.g. `exp02_rowclone`).
    pub name: String,
    /// Run parameters as key/value strings (`quick`, sizes, seeds…).
    pub params: Vec<(String, String)>,
    /// Headline scalar metrics (speedups, rates, energies).
    pub metrics: Vec<(String, f64)>,
    /// Column headers of the result table (may be empty).
    pub headers: Vec<String>,
    /// Result-table rows, one `Vec` of cells per row.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentReport {
    /// Starts a report for `name`; records `quick` as the first param.
    #[must_use]
    pub fn new(name: &str, quick: bool) -> Self {
        ExperimentReport {
            name: name.to_owned(),
            params: vec![("quick".to_owned(), quick.to_string())],
            metrics: Vec::new(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a run parameter (chainable).
    #[must_use]
    pub fn param(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.params.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a headline metric (chainable).
    #[must_use]
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.push((key.to_owned(), value));
        self
    }

    /// Sets the result-table headers (chainable).
    #[must_use]
    pub fn columns(mut self, headers: &[&str]) -> Self {
        self.headers = headers.iter().map(|h| (*h).to_owned()).collect();
        self
    }

    /// Appends a result-table row (chainable).
    #[must_use]
    pub fn row(mut self, cells: &[String]) -> Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Looks up a headline metric by name.
    #[must_use]
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Renders the report as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let params = self
            .params
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
            .collect();
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
            .collect();
        let headers = self
            .headers
            .iter()
            .map(|h| JsonValue::Str(h.clone()))
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| JsonValue::Arr(r.iter().map(|c| JsonValue::Str(c.clone())).collect()))
            .collect();
        JsonValue::obj(vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("params", JsonValue::Obj(params)),
            ("metrics", JsonValue::Obj(metrics)),
            ("headers", JsonValue::Arr(headers)),
            ("rows", JsonValue::Arr(rows)),
        ])
    }

    /// Reconstructs a report from the JSON emitted by
    /// [`to_json`](ExperimentReport::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let name = match v.get("name") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("missing string field `name`".to_owned()),
        };
        let params = match v.get("params") {
            Some(JsonValue::Obj(entries)) => entries
                .iter()
                .map(|(k, v)| match v {
                    JsonValue::Str(s) => Ok((k.clone(), s.clone())),
                    _ => Err(format!("param `{k}` is not a string")),
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing object field `params`".to_owned()),
        };
        let metrics = match v.get("metrics") {
            Some(JsonValue::Obj(entries)) => entries
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("metric `{k}` is not a number"))
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing object field `metrics`".to_owned()),
        };
        let headers = match v.get("headers") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|h| match h {
                    JsonValue::Str(s) => Ok(s.clone()),
                    _ => Err("non-string header".to_owned()),
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing array field `headers`".to_owned()),
        };
        let rows = match v.get("rows") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|r| match r {
                    JsonValue::Arr(cells) => cells
                        .iter()
                        .map(|c| match c {
                            JsonValue::Str(s) => Ok(s.clone()),
                            _ => Err("non-string cell".to_owned()),
                        })
                        .collect::<Result<Vec<_>, _>>(),
                    _ => Err("non-array row".to_owned()),
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing array field `rows`".to_owned()),
        };
        Ok(ExperimentReport {
            name,
            params,
            metrics,
            headers,
            rows,
        })
    }

    /// Renders the report as CSV: the result table when one is present,
    /// otherwise the metrics as `metric,value` lines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        if self.headers.is_empty() {
            let headers = ["metric".to_owned(), "value".to_owned()];
            let rows: Vec<Vec<String>> = self
                .metrics
                .iter()
                .map(|(k, v)| vec![k.clone(), format!("{v}")])
                .collect();
            csv::render(&headers, &rows)
        } else {
            csv::render(&self.headers, &self.rows)
        }
    }
}

/// Returns the value following `flag` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Shared experiment-binary entry point: prints the human-readable run
/// and, when `--json <path>` / `--csv <path>` are given, writes the
/// machine-readable report. `--quick` selects the reduced configuration
/// for both.
///
/// # Panics
///
/// Panics if a requested output file cannot be written — an experiment
/// binary has nothing sensible to do with a dead output path.
pub fn cli(run: impl FnOnce(bool) -> String, report: impl FnOnce(bool) -> ExperimentReport) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = flag_value(&args, "--json");
    let csv_path = flag_value(&args, "--csv");
    print!("{}", run(quick));
    if json_path.is_none() && csv_path.is_none() {
        return;
    }
    let rep = report(quick);
    if let Some(path) = json_path {
        let mut text = rep.to_json().render();
        text.push('\n');
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, rep.to_csv()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        ExperimentReport::new("exp99_sample", true)
            .param("bytes", 4096)
            .metric("speedup", 11.6)
            .metric("energy_gain", 74.4)
            .columns(&["size", "speedup"])
            .row(&["4 KiB".to_owned(), "11.6x".to_owned()])
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let rep = sample();
        let text = rep.to_json().render();
        let parsed = JsonValue::parse(&text).expect("own output parses");
        let back = ExperimentReport::from_json(&parsed).expect("well-formed");
        assert_eq!(back, rep);
    }

    #[test]
    fn metric_lookup_and_quick_param() {
        let rep = sample();
        assert_eq!(rep.metric_value("speedup"), Some(11.6));
        assert_eq!(rep.metric_value("missing"), None);
        assert!(rep
            .params
            .contains(&("quick".to_owned(), "true".to_owned())));
    }

    #[test]
    fn csv_uses_table_when_present_and_metrics_otherwise() {
        let with_table = sample().to_csv();
        assert!(with_table.starts_with("size,speedup"));
        let metrics_only = ExperimentReport::new("m", false).metric("x", 1.5).to_csv();
        assert!(metrics_only.contains("metric,value"));
        assert!(metrics_only.contains("x,1.5"));
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        let v = JsonValue::parse("{\"name\": 3}").unwrap();
        assert!(ExperimentReport::from_json(&v).is_err());
        let v = JsonValue::parse("{\"name\": \"x\"}").unwrap();
        assert!(ExperimentReport::from_json(&v).is_err());
    }
}
