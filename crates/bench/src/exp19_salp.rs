//! **E19 — Subarray-Level Parallelism (SALP/MASA).**
//!
//! Paper citation \[86\] (Kim+, ISCA 2012), under the data-centric
//! "low-latency access" family: exposing the subarrays inside a bank
//! turns inter-subarray row conflicts into overlapped activations — the
//! paper reports ~13-17% average speedup, approaching ideal
//! one-subarray-per-bank behaviour on conflict-heavy streams.

use ia_core::Table;
use ia_dram::{serve_stream, BankOrganization, DramConfig, SalpBank};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ratio;

/// Per-workload cycle counts `(name, conventional, salp)`.
#[must_use]
pub fn rows(quick: bool) -> Vec<(String, u64, u64)> {
    let n = if quick { 2_000 } else { 20_000 };
    let mut rng = SmallRng::seed_from_u64(131);
    let subarrays = 8usize;
    let rows_per = 512u64;

    // Workloads over one bank: row streams with varying conflict structure.
    let same_row = vec![3u64; n];
    let two_subarrays: Vec<u64> = (0..n)
        .map(|i| if i % 2 == 0 { 0 } else { rows_per })
        .collect();
    let all_subarrays: Vec<u64> = (0..n)
        .map(|i| (i as u64 % subarrays as u64) * rows_per)
        .collect();
    let intra_subarray: Vec<u64> = (0..n).map(|i| (i % 4) as u64).collect();
    let random: Vec<u64> = (0..n)
        .map(|_| rng.gen_range(0..subarrays as u64 * rows_per))
        .collect();

    [
        ("single row (all hits)", same_row),
        ("2-subarray ping-pong", two_subarrays),
        ("8-subarray round-robin", all_subarrays),
        ("intra-subarray conflicts", intra_subarray),
        ("random rows", random),
    ]
    .into_iter()
    .map(|(name, stream)| {
        let timing = DramConfig::ddr3_1600().timing;
        let mut conv = SalpBank::new(BankOrganization::Conventional, timing, subarrays, rows_per);
        let mut salp = SalpBank::new(BankOrganization::Salp, timing, subarrays, rows_per);
        (
            name.to_owned(),
            serve_stream(&mut conv, &stream),
            serve_stream(&mut salp, &stream),
        )
    })
    .collect()
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let mut table = Table::new(&[
        "row stream",
        "conventional (cy)",
        "SALP/MASA (cy)",
        "speedup",
    ]);
    for (name, conv, salp) in rows(quick) {
        table.row(&[
            name,
            conv.to_string(),
            salp.to_string(),
            ratio(conv as f64, salp as f64),
        ]);
    }
    format!(
        "E19: subarray-level parallelism within one bank\n\
         (paper shape: inter-subarray conflicts overlap — large gains on ping-pong streams,\n\
          none on hits or intra-subarray conflicts)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let mut rep = crate::report::ExperimentReport::new("exp19_salp", quick).columns(&[
        "row_stream",
        "conventional_cycles",
        "salp_cycles",
        "speedup",
    ]);
    for (name, conv, salp) in rows(quick) {
        let key = name.to_lowercase().replace([' ', '-'], "_");
        let speedup = conv as f64 / salp.max(1) as f64;
        rep = rep.metric(&format!("{key}_speedup"), speedup).row(&[
            name.clone(),
            conv.to_string(),
            salp.to_string(),
            format!("{speedup:.2}"),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(rows: &[(String, u64, u64)], name: &str) -> (u64, u64) {
        let r = rows
            .iter()
            .find(|(n, _, _)| n.contains(name))
            .expect("row present");
        (r.1, r.2)
    }

    #[test]
    fn salp_accelerates_cross_subarray_conflicts() {
        let rows = rows(true);
        let (conv, salp) = get(&rows, "ping-pong");
        assert!(
            (salp as f64) < conv as f64 * 0.6,
            "ping-pong: SALP {salp} vs conventional {conv}"
        );
        let (conv, salp) = get(&rows, "round-robin");
        assert!(
            (salp as f64) < conv as f64 * 0.8,
            "round-robin: {salp} vs {conv}"
        );
    }

    #[test]
    fn salp_is_neutral_where_it_cannot_help() {
        let rows = rows(true);
        let (conv, salp) = get(&rows, "single row");
        assert_eq!(conv, salp);
        let (conv, salp) = get(&rows, "intra-subarray");
        assert_eq!(conv, salp);
    }

    #[test]
    fn random_rows_gain_moderately() {
        let rows = rows(true);
        let (conv, salp) = get(&rows, "random");
        assert!(salp <= conv);
        assert!(
            (salp as f64) > conv as f64 * 0.3,
            "random gains are bounded"
        );
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("SALP"));
    }
}
