//! **E20 — EDEN: approximate DRAM for DNN inference.**
//!
//! Paper citation \[54\] (Koppula+, MICRO 2019), the data-aware exemplar
//! for approximability: DNN data tolerates bit errors, so its DRAM can be
//! refreshed far less often. Expected shape: refresh savings grow with
//! the interval while accuracy stays flat below a robustness knee, then
//! collapses; per-layer interval selection stays within an accuracy
//! budget.

use ia_core::Table;
use ia_reliability::{
    dnn_accuracy_loss, select_multiplier, sweep_refresh_multipliers, RetentionModel,
};

use crate::pct;

/// Sweep rows `(multiplier, savings, row error rate, robust-layer loss,
/// sensitive-layer loss)`.
#[must_use]
pub fn sweep() -> Vec<(u32, f64, f64, f64, f64)> {
    let model = RetentionModel::typical();
    // Each refresh-interval point is an independent evaluation of the
    // retention model; fan the grid out on the worker pool.
    ia_par::par_map(
        ia_par::auto_threads(),
        vec![1u32, 2, 4, 8, 16, 32],
        |multiplier| {
            let p = sweep_refresh_multipliers(&model, &[multiplier])
                .pop()
                // lint: allow(P001, the sweep returns exactly one point per multiplier)
                .expect("one point per multiplier");
            (
                p.multiplier,
                p.refresh_savings,
                p.row_error_rate,
                dnn_accuracy_loss(p.row_error_rate, 0.05),
                dnn_accuracy_loss(p.row_error_rate, 1e-5),
            )
        },
    )
}

/// Runs the experiment and renders the tables.
#[must_use]
pub fn run(_quick: bool) -> String {
    let mut table = Table::new(&[
        "refresh interval",
        "refresh savings",
        "row error exposure",
        "robust layer acc. loss",
        "sensitive layer acc. loss",
    ]);
    for (m, savings, err, robust, sensitive) in sweep() {
        table.row(&[
            format!("{}x (={} ms)", m, 64 * m),
            pct(savings),
            format!("{err:.2e}"),
            pct(robust),
            pct(sensitive),
        ]);
    }
    let model = RetentionModel::typical();
    let robust_pick = select_multiplier(&model, 0.05, 0.01);
    let sensitive_pick = select_multiplier(&model, 1e-5, 0.01);
    format!(
        "E20: EDEN-style approximate DRAM for error-tolerant (DNN) data\n\
         (paper shape: large refresh savings at negligible accuracy loss below the\n\
          robustness knee; per-layer interval selection)\n{table}\n\
         selected intervals at 1% accuracy budget: robust layer {robust_pick}x, sensitive layer {sensitive_pick}x\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let data = sweep();
    let max_savings = data.iter().fold(0.0f64, |a, &(_, s, ..)| a.max(s));
    let mut rep = crate::report::ExperimentReport::new("exp20_eden", quick)
        .metric("max_refresh_savings", max_savings)
        .columns(&[
            "interval_multiplier",
            "refresh_savings",
            "row_error_exposure",
            "robust_accuracy_loss",
            "sensitive_accuracy_loss",
        ]);
    for (m, savings, err, robust, sensitive) in &data {
        rep = rep.row(&[
            m.to_string(),
            format!("{savings:.4}"),
            format!("{err:.6}"),
            format!("{robust:.4}"),
            format!("{sensitive:.4}"),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_layers_save_most_refreshes_for_free() {
        let s = sweep();
        let at16 = s.iter().find(|r| r.0 == 16).expect("16x present");
        assert!(at16.1 > 0.9, "16x interval saves >90% of refreshes");
        assert!(
            at16.3 < 0.02,
            "robust layer loses <2% accuracy at 16x, got {}",
            at16.3
        );
    }

    #[test]
    fn sensitive_layers_degrade_past_nominal() {
        let s = sweep();
        let at8 = s.iter().find(|r| r.0 == 8).expect("8x present");
        assert!(
            at8.4 > at8.3,
            "sensitive layer must lose more than robust at the same interval"
        );
    }

    #[test]
    fn selection_separates_the_layers() {
        let model = RetentionModel::typical();
        assert!(select_multiplier(&model, 0.05, 0.01) >= 8);
        assert!(select_multiplier(&model, 1e-5, 0.01) <= 2);
    }

    #[test]
    fn report_renders() {
        let s = run(true);
        assert!(s.contains("refresh savings"));
        assert!(s.contains("selected intervals"));
    }
}
