//! **E11 — GRIM-Filter: in-DRAM seed-location filtering for read mapping.**
//!
//! Paper claim (§I + §IV): genome analysis is the flagship
//! data-overwhelmed workload, and GRIM-Filter (Kim+, BMC Genomics 2018)
//! uses in-DRAM bitvector operations to discard false candidate locations
//! before the expensive alignment step (reported: ≈5.6x fewer false
//! locations, ≈1.8-3.7x faster read mapping).

use ia_core::Table;
use ia_dram::DramConfig;
use ia_pum::{AmbitEngine, BitwiseOp};
use ia_workloads::{edit_distance_banded, random_genome, sample_reads, GrimIndex, SeedIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{pct, ratio};

/// Outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Fraction of candidate locations eliminated by the filter.
    pub candidates_eliminated: f64,
    /// End-to-end mapping speedup (filter cost included).
    pub mapping_speedup: f64,
    /// True mappings lost by the filter (must be zero or tiny).
    pub lost_mappings: u64,
}

/// Nanoseconds to verify one candidate with banded edit distance on the
/// host (cells × ~0.5 ns per DP cell).
fn verify_cost_ns(read_len: usize, band: usize) -> f64 {
    (read_len * (2 * band + 1)) as f64 * 0.5
}

/// Computes the outcome.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    static CACHE: crate::report::OutcomeCache<Outcome> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_outcome(quick))
}

fn compute_outcome(quick: bool) -> Outcome {
    let (genome_len, read_count) = if quick {
        (64 * 1024, 40)
    } else {
        (1 << 20, 400)
    };
    let read_len = 100;
    let band = 5;
    let token_len = 8; // 4^8 = 65536-token space: bins are sparse
    let threshold = 45u32;
    let mut rng = SmallRng::seed_from_u64(61);

    let genome = random_genome(genome_len, &mut rng);
    // lint: allow(P001, genome_len / read_count / read_len are positive literals with read_len < genome_len)
    let reads = sample_reads(&genome, read_count, read_len, 0.02, &mut rng).expect("valid reads");
    // lint: allow(P001, seed length 8 is a literal below the literal genome lengths)
    let seed_index = SeedIndex::build(&genome, 8).expect("valid index");
    // lint: allow(P001, token_len 8 and bin cap 4096 are valid literals for both genome sizes)
    let grim = GrimIndex::build(&genome, token_len, 4096).expect("valid grim");

    // Load bin bitvectors into the Ambit engine once (rows 0..bins), the
    // read vector goes to a scratch row per query.
    let cfg = DramConfig::ddr3_1600();
    let mut engine = AmbitEngine::new(&cfg);
    let words = engine.row_words();
    let pad = |bv: &[u64]| {
        let mut row = bv.to_vec();
        row.resize(words, 0);
        row
    };
    for bin in 0..grim.bin_count() {
        engine
            .write_row(bin as u64, pad(grim.bin_bitvector(bin)))
            // lint: allow(P001, bin_count is capped at 4096 so every bin index fits the subarray rows and pad sizes the row exactly)
            .expect("row fits");
    }
    let read_row = grim.bin_count() as u64;
    let and_row = read_row + 1;

    let mut baseline_verifications = 0u64;
    let mut filtered_verifications = 0u64;
    let mut baseline_found = 0u64;
    let mut filtered_found = 0u64;
    for read in &reads {
        let candidates = seed_index.candidates(&read.seq, 4);
        baseline_verifications += candidates.len() as u64;
        let verify = |pos: u32| -> bool {
            let start = pos as usize;
            if start + read_len > genome.len() {
                return false;
            }
            edit_distance_banded(&read.seq, &genome[start..start + read_len], band).is_some()
        };
        if candidates.iter().any(|&c| verify(c)) {
            baseline_found += 1;
        }

        // GRIM path: one in-DRAM AND + popcount per distinct bin touched
        // by any candidate's span. A read may straddle a bin boundary, so
        // a candidate's score sums the bins its span covers.
        let read_bv = grim.read_bitvector(&read.seq);
        // lint: allow(P001, read_row is bin_count which leaves two in-bounds scratch rows past the bins)
        engine.write_row(read_row, pad(&read_bv)).expect("row fits");
        let bins_of = |c: u32| -> (usize, usize) {
            let first = c as usize / grim.bin_size();
            let last = (c as usize + read_len - 1) / grim.bin_size();
            (
                first.min(grim.bin_count() - 1),
                last.min(grim.bin_count() - 1),
            )
        };
        let mut bins: Vec<usize> = candidates
            .iter()
            .flat_map(|&c| {
                let (a, b) = bins_of(c);
                a..=b
            })
            .collect();
        bins.sort_unstable();
        bins.dedup();
        let mut match_count = std::collections::BTreeMap::new();
        for bin in bins {
            engine
                .execute(BitwiseOp::And, and_row, bin as u64, Some(read_row))
                // lint: allow(P001, both operand rows were written above before any AND is issued)
                .expect("operands loaded");
            let matches: u32 = engine
                .read_row(and_row)
                // lint: allow(P001, the AND on the line above just wrote and_row)
                .expect("result written")
                .iter()
                .map(|w| w.count_ones())
                .sum();
            match_count.insert(bin, matches);
        }
        let survivors: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&c| {
                let (a, b) = bins_of(c);
                let score: u32 = (a..=b)
                    .map(|bin| match_count.get(&bin).copied().unwrap_or(0))
                    .sum();
                score >= threshold
            })
            .collect();
        filtered_verifications += survivors.len() as u64;
        if survivors.iter().any(|&c| verify(c)) {
            filtered_found += 1;
        }
    }

    // Bins are examined concurrently across banks, as in the original
    // design (one bitvector row per bank's subarray).
    let filter_ns =
        engine.stats().cycles as f64 * cfg.timing.tck_ns() / engine.parallelism() as f64;
    let v = verify_cost_ns(read_len, band);
    let baseline_ns = baseline_verifications as f64 * v;
    let filtered_ns = filtered_verifications as f64 * v + filter_ns;
    Outcome {
        candidates_eliminated: 1.0
            - filtered_verifications as f64 / baseline_verifications.max(1) as f64,
        mapping_speedup: baseline_ns / filtered_ns,
        lost_mappings: baseline_found.saturating_sub(filtered_found),
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let o = outcome(quick);
    let mut table = Table::new(&["metric", "value"]);
    table.row(&[
        "candidate locations eliminated",
        &pct(o.candidates_eliminated),
    ]);
    table.row(&["end-to-end mapping speedup", &ratio(o.mapping_speedup, 1.0)]);
    table.row(&["true mappings lost", &o.lost_mappings.to_string()]);
    format!(
        "E11: GRIM-Filter seed-location filtering via in-DRAM bitwise AND\n\
         (paper shape: large candidate reduction, 2-4x mapping speedup, no lost mappings)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp11_grim_filter", quick)
        .metric("candidates_eliminated", o.candidates_eliminated)
        .metric("mapping_speedup", o.mapping_speedup)
        .metric("lost_mappings", o.lost_mappings as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_eliminates_most_candidates_without_losing_mappings() {
        let o = outcome(true);
        assert!(
            o.candidates_eliminated > 0.3,
            "filter should prune candidates, got {}",
            o.candidates_eliminated
        );
        assert_eq!(
            o.lost_mappings, 0,
            "the filter must not reject true locations"
        );
    }

    #[test]
    fn filtering_speeds_up_mapping() {
        let o = outcome(true);
        assert!(
            o.mapping_speedup > 1.1,
            "speedup {:.2} should exceed 1x",
            o.mapping_speedup
        );
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("eliminated"));
    }
}
