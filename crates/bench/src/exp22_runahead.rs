//! **E22 — Runahead execution.**
//!
//! Paper citation \[154\] (Mutlu+, HPCA 2003), invoked as part of the
//! "top-down pull": tolerating memory latency from the core side.
//! Expected shape: large speedups on independent-miss workloads that grow
//! with the runahead window, collapsing to nothing on dependent
//! (pointer-chasing) chains — the gap PIM exists to fill.

use ia_core::Table;
use ia_prefetch::runahead::{build_trace, execute, CoreModel};

use crate::ratio;

/// Matrix rows `(dependence ‰, window, stall cycles, runahead cycles)`.
#[must_use]
pub fn matrix(quick: bool) -> Vec<(u32, usize, u64, u64)> {
    let loads = if quick { 500 } else { 5000 };
    // The 3×3 (dependence, window) grid: every cell builds its own
    // trace and runs two core models — independent tasks for the
    // worker pool, returned in row-major grid order.
    let grid: Vec<(u32, usize)> = [0u32, 500, 1000]
        .into_iter()
        .flat_map(|dep| [16usize, 64, 256].into_iter().map(move |w| (dep, w)))
        .collect();
    ia_par::par_map(ia_par::auto_threads(), grid, |(dep, window)| {
        let trace = build_trace(loads, 5, dep);
        let stall = execute(
            &trace,
            CoreModel {
                miss_latency: 200,
                runahead_window: 0,
            },
        );
        let ra = execute(
            &trace,
            CoreModel {
                miss_latency: 200,
                runahead_window: window,
            },
        );
        (dep, window, stall, ra)
    })
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let mut table = Table::new(&[
        "dependent loads",
        "runahead window",
        "stall-on-miss (kcy)",
        "runahead (kcy)",
        "speedup",
    ]);
    for (dep, window, stall, ra) in matrix(quick) {
        table.row(&[
            format!("{:.0}%", f64::from(dep) / 10.0),
            window.to_string(),
            format!("{:.0}", stall as f64 / 1000.0),
            format!("{:.0}", ra as f64 / 1000.0),
            ratio(stall as f64, ra as f64),
        ]);
    }
    format!(
        "E22: runahead execution vs stall-on-miss\n\
         (paper shape: big wins on independent misses, growing with the window;\n\
          zero on fully dependent chains — which is where PIM takes over)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let data = matrix(quick);
    let max_speedup = data.iter().fold(0.0f64, |a, &(_, _, stall, ra)| {
        a.max(stall as f64 / ra.max(1) as f64)
    });
    let mut rep = crate::report::ExperimentReport::new("exp22_runahead", quick)
        .metric("max_speedup", max_speedup)
        .columns(&[
            "dependent_load_permille",
            "runahead_window",
            "stall_cycles",
            "runahead_cycles",
            "speedup",
        ]);
    for (dep, window, stall, ra) in &data {
        rep = rep.row(&[
            dep.to_string(),
            window.to_string(),
            stall.to_string(),
            ra.to_string(),
            format!("{:.2}", *stall as f64 / (*ra).max(1) as f64),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_misses_speed_up_with_window() {
        let m = matrix(true);
        let at = |dep: u32, w: usize| {
            m.iter()
                .find(|r| r.0 == dep && r.1 == w)
                .map(|r| r.2 as f64 / r.3 as f64)
                .expect("cell")
        };
        assert!(
            at(0, 64) > 3.0,
            "independent loads must overlap: {:.1}",
            at(0, 64)
        );
        assert!(at(0, 256) >= at(0, 16), "bigger windows help");
    }

    #[test]
    fn dependent_chains_gain_nothing() {
        let m = matrix(true);
        for r in m.iter().filter(|r| r.0 == 1000) {
            assert_eq!(r.2, r.3, "fully dependent chain must not speed up");
        }
    }

    #[test]
    fn half_dependent_sits_between() {
        let m = matrix(true);
        let s = |dep: u32| {
            m.iter()
                .find(|r| r.0 == dep && r.1 == 64)
                .map(|r| r.2 as f64 / r.3 as f64)
                .expect("cell")
        };
        assert!(s(500) > s(1000) - 1e-9);
        assert!(s(500) < s(0));
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("runahead window"));
    }
}
