//! **E13 — Low-latency DRAM operating modes.**
//!
//! Paper claim (§IV, Data-Centric): an intelligent architecture "provides
//! low-latency and low-energy access to data" — exemplified by AL-DRAM
//! (common-case timing margins, Lee+ HPCA 2015) and ChargeCache
//! (recently-closed rows are highly charged, Hassan+ HPCA 2016).

use ia_core::Table;
use ia_dram::{DramConfig, LatencyMode};
use ia_memctrl::{run_closed_loop_with, FrFcfs, MemRequest, MemoryController, RunReport};
use ia_sim::SnapshotState;

use crate::mixes::interference_mix;
use crate::ratio;

/// Outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Baseline average request latency (cycles).
    pub standard_latency: f64,
    /// AL-DRAM average latency.
    pub aldram_latency: f64,
    /// ChargeCache average latency.
    pub chargecache_latency: f64,
    /// ChargeCache hit rate observed.
    pub chargecache_hit_rate: f64,
}

/// The warm controller and trace set every mode run forks from: one
/// construction per sweep instead of one per mode. `with_latency_mode`
/// applies to future commands only, so a fork with a mode swapped in is
/// bit-identical to a cold-built controller with that mode.
fn substrate(quick: bool) -> (MemoryController, Vec<Vec<MemRequest>>) {
    let n = if quick { 400 } else { 4000 };
    let warm = MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new()))
        // lint: allow(P001, ddr3_1600 is a valid preset)
        .expect("valid config");
    (warm, interference_mix(n, 77))
}

fn run_mode(
    warm: &MemoryController,
    traces: &[Vec<MemRequest>],
    mode: Option<LatencyMode>,
) -> RunReport {
    let mut ctrl = warm.fork();
    if let Some(mode) = mode {
        ctrl = ctrl.with_latency_mode(mode);
    }
    // lint: allow(P001, interference_mix traces are non-empty by construction)
    run_closed_loop_with(ctrl, traces, 8, 500_000_000).expect("run completes")
}

/// The standard / AL-DRAM / ChargeCache runs shared by the table and the
/// machine-readable report (memoized: each mode simulates once per
/// process, per `quick` flag).
fn shared_runs(quick: bool) -> (RunReport, RunReport, RunReport) {
    static CACHE: crate::report::OutcomeCache<(RunReport, RunReport, RunReport)> =
        crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || {
        let (warm, traces) = substrate(quick);
        let cc_mode = LatencyMode::ChargeCache {
            entries_per_bank: 16,
            window: 200_000,
            scale: 0.65,
        };
        (
            run_mode(&warm, &traces, None),
            run_mode(&warm, &traces, Some(LatencyMode::AlDram { scale: 0.7 })),
            run_mode(&warm, &traces, Some(cc_mode)),
        )
    })
}

/// Computes the outcome.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let (std_r, al_r, cc_r) = shared_runs(quick);
    Outcome {
        standard_latency: std_r.stats.avg_latency(),
        aldram_latency: al_r.stats.avg_latency(),
        chargecache_latency: cc_r.stats.avg_latency(),
        chargecache_hit_rate: cc_r.charge_cache_hit_rate,
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let (std_r, al_r, cc_r) = shared_runs(quick);
    let tl_mode = LatencyMode::TieredLatency {
        near_fraction: 0.25,
        near_scale: 0.6,
        far_scale: 1.1,
    };
    let (warm, traces) = substrate(quick);
    let tl_r = run_mode(&warm, &traces, Some(tl_mode));

    let mut table = Table::new(&["DRAM mode", "avg latency (cy)", "req/kcycle", "speedup"]);
    let base_tp = std_r.throughput_rpkc();
    for (name, r) in [
        ("standard timing", &std_r),
        ("AL-DRAM (0.7x tRCD/tRAS/tRP)", &al_r),
        ("ChargeCache (0.65x on hit)", &cc_r),
        ("TL-DRAM (near 25% @0.6x, far @1.1x)", &tl_r),
    ] {
        table.row(&[
            name.to_owned(),
            format!("{:.1}", r.stats.avg_latency()),
            format!("{:.2}", r.throughput_rpkc()),
            ratio(r.throughput_rpkc(), base_tp),
        ]);
    }
    format!(
        "E13: reduced-latency DRAM (paper shape: AL-DRAM and ChargeCache cut average latency,\n\
         improving throughput, with ChargeCache gated by reopened-row locality)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp13_low_latency_dram", quick)
        .metric("standard_latency", o.standard_latency)
        .metric("aldram_latency", o.aldram_latency)
        .metric("chargecache_latency", o.chargecache_latency)
        .metric("chargecache_hit_rate", o.chargecache_hit_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aldram_reduces_latency() {
        let o = outcome(true);
        assert!(
            o.aldram_latency < o.standard_latency,
            "AL-DRAM {:.1} must beat standard {:.1}",
            o.aldram_latency,
            o.standard_latency
        );
    }

    #[test]
    fn chargecache_is_no_worse_than_standard() {
        let o = outcome(true);
        assert!(
            o.chargecache_latency <= o.standard_latency * 1.01,
            "ChargeCache {:.1} vs standard {:.1}",
            o.chargecache_latency,
            o.standard_latency
        );
    }

    #[test]
    fn chargecache_hit_rate_is_a_real_fraction() {
        let o = outcome(true);
        assert!(
            o.chargecache_hit_rate.is_finite(),
            "hit rate must be measured, not NaN"
        );
        assert!(
            (0.0..=1.0).contains(&o.chargecache_hit_rate),
            "hit rate {} outside [0, 1]",
            o.chargecache_hit_rate
        );
        assert!(
            o.chargecache_hit_rate > 0.0,
            "the interference mix reopens rows inside the window; some hits must occur"
        );
    }

    #[test]
    fn report_renders_modes() {
        let s = run(true);
        assert!(s.contains("AL-DRAM"));
        assert!(s.contains("ChargeCache"));
    }
}
