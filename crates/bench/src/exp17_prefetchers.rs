//! **E17 — The prefetch-controller lineage.**
//!
//! Paper claim (§III): the prefetch controller is another fixed-policy
//! component that "sees a vast amount of data … yet is incapable of
//! learning from it". The cited lineage: stride/GHB heuristics
//! (Nesbit & Smith HPCA'04), feedback-directed throttling (Srinath+
//! HPCA'07), and perceptron-based filtering (Bhatia+ ISCA'19).
//! Expected shape: heuristics win on regular streams and pollute on
//! irregular ones; the adaptive generations keep the coverage while
//! recovering accuracy.

use ia_core::Table;
use ia_prefetch::{
    FeedbackDirected, GhbPrefetcher, NextLinePrefetcher, PerceptronFilter, PrefetchHarness,
    PrefetchMetrics, Prefetcher, StridePrefetcher,
};
use ia_workloads::{PointerChaseGen, StreamGen, TraceGenerator, ZipfGen};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::pct;

fn prefetchers() -> Vec<Box<dyn Prefetcher>> {
    vec![
        Box::new(NextLinePrefetcher::new(2)),
        Box::new(StridePrefetcher::new(4)),
        Box::new(GhbPrefetcher::new(256, 4)),
        Box::new(FeedbackDirected::new(4)),
        Box::new(PerceptronFilter::new(StridePrefetcher::new(4))),
    ]
}

fn workloads(quick: bool) -> Vec<(&'static str, Vec<u64>)> {
    let n = if quick { 3_000 } else { 30_000 };
    let mut rng = SmallRng::seed_from_u64(117);
    let stream = StreamGen::new(0, 64, 4 << 20, 0.0)
        // lint: allow(P001, generator parameters are compile-time constants)
        .expect("static")
        .generate(n, &mut rng)
        .into_iter()
        .map(|r| r.addr)
        .collect();
    let strided = StreamGen::new(1 << 26, 320, 4 << 20, 0.0)
        // lint: allow(P001, generator parameters are compile-time constants)
        .expect("static")
        .generate(n, &mut rng)
        .into_iter()
        .map(|r| r.addr)
        .collect();
    let zipf = ZipfGen::new(2 << 26, 8192, 4096, 1.0, 0.0)
        // lint: allow(P001, generator parameters are compile-time constants)
        .expect("static")
        .generate(n, &mut rng)
        .into_iter()
        .map(|r| r.addr)
        .collect();
    let mut chase_gen = PointerChaseGen::new(3 << 26, 128 * 1024, 64, &mut rng)
        // lint: allow(P001, generator parameters are compile-time constants)
        .expect("static");
    let chase = chase_gen
        .generate(n, &mut rng)
        .into_iter()
        .map(|r| r.addr)
        .collect();
    vec![
        ("stream", stream),
        ("strided", strided),
        ("zipf", zipf),
        ("pointer-chase", chase),
    ]
}

/// One row of the result matrix: a workload name and its per-prefetcher
/// metrics.
type MatrixRow = (String, Vec<(String, PrefetchMetrics)>);

/// Metrics per (workload, prefetcher) cell (memoized: `run` and
/// `report` share one simulation per process).
#[must_use]
pub fn matrix(quick: bool) -> Vec<MatrixRow> {
    static CACHE: crate::report::OutcomeCache<Vec<MatrixRow>> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_matrix(quick))
}

fn compute_matrix(quick: bool) -> Vec<MatrixRow> {
    // Trace generation shares one RNG stream and stays serial; the 4×5
    // (workload, prefetcher) harness runs are independent, so flatten
    // the grid into tasks for the worker pool. `par_map` preserves the
    // row-major task order, so the reassembled matrix is identical to
    // the nested serial loops.
    let workloads = workloads(quick);
    let lanes = prefetchers().len();
    let tasks: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..lanes).map(move |pi| (wi, pi)))
        .collect();
    let cells = ia_par::par_map(ia_par::auto_threads(), tasks, |(wi, pi)| {
        let p = prefetchers().swap_remove(pi);
        let name = p.name().to_owned();
        let mut h = PrefetchHarness::new(64 * 1024, 64, 8, p)
            // lint: allow(P001, harness geometry is a compile-time constant)
            .expect("valid harness");
        for &a in &workloads[wi].1 {
            h.demand(a);
        }
        (name, *h.metrics())
    });
    workloads
        .iter()
        .zip(cells.chunks(lanes))
        .map(|((wname, _), row)| ((*wname).to_owned(), row.to_vec()))
        .collect()
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let mut table = Table::new(&[
        "workload",
        "prefetcher",
        "coverage",
        "accuracy",
        "issued/kdemand",
    ]);
    for (wname, cells) in matrix(quick) {
        for (pname, m) in cells {
            table.row(&[
                wname.clone(),
                pname,
                pct(m.coverage()),
                pct(m.accuracy()),
                format!("{:.0}", m.issued as f64 / m.demands as f64 * 1000.0),
            ]);
        }
    }
    format!(
        "E17: prefetcher lineage across workload classes\n\
         (paper shape: heuristics cover streams but pollute on irregular traffic;\n\
          feedback/learning recover accuracy by throttling or filtering)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let mut rep = crate::report::ExperimentReport::new("exp17_prefetchers", quick).columns(&[
        "workload",
        "prefetcher",
        "coverage",
        "accuracy",
        "issued",
    ]);
    let mut best_coverage = 0.0f64;
    for (workload, cells) in matrix(quick) {
        for (prefetcher, m) in cells {
            best_coverage = best_coverage.max(m.coverage());
            rep = rep.row(&[
                workload.clone(),
                prefetcher,
                format!("{:.4}", m.coverage()),
                format!("{:.4}", m.accuracy()),
                m.issued.to_string(),
            ]);
        }
    }
    rep.metric("best_coverage", best_coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(m: &[(String, Vec<(String, PrefetchMetrics)>)], w: &str, p: &str) -> PrefetchMetrics {
        m.iter()
            .find(|(n, _)| n == w)
            .expect("workload present")
            .1
            .iter()
            .find(|(n, _)| n.contains(p))
            .expect("prefetcher present")
            .1
    }

    #[test]
    fn stride_covers_regular_streams() {
        let m = matrix(true);
        assert!(cell(&m, "stream", "stride").coverage() > 0.7);
        assert!(cell(&m, "strided", "stride").coverage() > 0.7);
        assert!(cell(&m, "stream", "GHB").coverage() > 0.5);
    }

    #[test]
    fn nothing_covers_pointer_chasing() {
        let m = matrix(true);
        for p in ["next-line", "stride", "GHB"] {
            assert!(
                cell(&m, "pointer-chase", p).coverage() < 0.1,
                "{p} cannot prefetch dependent chains"
            );
        }
    }

    #[test]
    fn feedback_throttles_where_accuracy_dies() {
        let m = matrix(true);
        let naive = cell(&m, "pointer-chase", "stride");
        let fd = cell(&m, "pointer-chase", "feedback");
        let naive_rate = naive.issued as f64 / naive.demands.max(1) as f64;
        let fd_rate = fd.issued as f64 / fd.demands.max(1) as f64;
        assert!(
            fd_rate <= naive_rate + 0.01,
            "feedback-directed must not issue more useless prefetches ({fd_rate:.3} vs {naive_rate:.3})"
        );
    }

    #[test]
    fn report_renders() {
        let s = run(true);
        assert!(s.contains("stride"));
        assert!(s.contains("pointer-chase"));
    }
}
