//! **E6 — RAIDR retention-aware refresh.**
//!
//! Paper claim (§IV, bottom-up push): intelligent controllers must solve
//! "data retention" economically; RAIDR (Liu+, ISCA 2012) removes ≈74.6%
//! of refreshes with a few kilobits of Bloom-filter state, and the win
//! grows with device density.

use ia_core::Table;
use ia_reliability::{Raidr, RetentionModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::pct;

/// Outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Refresh reduction at the largest density.
    pub reduction: f64,
    /// Controller storage in bits at the largest density.
    pub storage_bits: usize,
}

/// Computes the outcome.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    static CACHE: crate::report::OutcomeCache<Outcome> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_outcome(quick))
}

fn compute_outcome(quick: bool) -> Outcome {
    let rows = if quick { 64 * 1024 } else { 1024 * 1024 };
    let mut rng = SmallRng::seed_from_u64(23);
    let profile = RetentionModel::typical().profile(rows, &mut rng);
    let raidr = Raidr::from_profile(&profile).expect("non-empty profile");
    Outcome {
        reduction: raidr.reduction_over(8),
        storage_bits: raidr.storage_bits(),
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let densities: &[(u64, &str)] = if quick {
        &[(32 * 1024, "4Gb-class"), (64 * 1024, "8Gb-class")]
    } else {
        &[
            (32 * 1024, "4Gb-class"),
            (64 * 1024, "8Gb-class"),
            (256 * 1024, "32Gb-class"),
            (1024 * 1024, "64Gb-class"),
        ]
    };
    let mut rng = SmallRng::seed_from_u64(23);
    let mut table = Table::new(&[
        "device (rows/bank)",
        "weak <64ms",
        "weak <128ms",
        "refresh reduction",
        "controller storage",
    ]);
    for &(rows, label) in densities {
        let profile = RetentionModel::typical().profile(rows, &mut rng);
        let raidr = Raidr::from_profile(&profile).expect("non-empty profile");
        table.row(&[
            format!("{label} ({rows})"),
            profile.weak64.len().to_string(),
            profile.weak128.len().to_string(),
            pct(raidr.reduction_over(8)),
            format!("{:.1} Kib", raidr.storage_bits() as f64 / 1024.0),
        ]);
    }
    let o = outcome(quick);
    format!(
        "E6: RAIDR retention-aware refresh (paper: ≈74.6% refresh reduction, kilobits of state)\n{table}\n\
         headline: {} reduction with {:.1} Kib of Bloom filters\n",
        pct(o.reduction),
        o.storage_bits as f64 / 1024.0
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp06_raidr", quick)
        .metric("refresh_reduction", o.reduction)
        .metric("storage_bits", o.storage_bits as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_approaches_three_quarters() {
        let o = outcome(true);
        assert!(
            (0.70..0.76).contains(&o.reduction),
            "reduction {:.3} should bracket 74.6%",
            o.reduction
        );
    }

    #[test]
    fn storage_stays_in_kilobits() {
        let o = outcome(true);
        assert!(
            o.storage_bits < 1 << 20,
            "storage {} bits should be small",
            o.storage_bits
        );
    }

    #[test]
    fn report_renders_densities() {
        let s = run(true);
        assert!(s.contains("4Gb-class"));
        assert!(s.contains("refresh reduction"));
    }
}
