//! **E16 — The three principles compose (full-system ablation).**
//!
//! Paper claim (§II/§IV): an intelligent architecture satisfies all three
//! principles simultaneously; each should contribute, and the composition
//! should not regress. This experiment climbs the ladder baseline →
//! +data-centric → +data-driven → +data-aware on one mixed data-intensive
//! workload.

use ia_core::{run_ablation, AblationRow, SystemConfig, Table};
use ia_workloads::{StreamGen, TraceGenerator, TraceRequest, ZipfGen};
use ia_xmem::{AtomRegistry, Criticality, DataAttributes, Locality};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::pct;

// The hot structure is 4x the experiment's 64 KiB LLC: plain LRU
// thrashes under the streaming pollution, giving the cache-policy
// principles (data-driven DIP, data-aware hints) real headroom, and the
// Zipf-scattered misses span many DRAM rows, giving AL-DRAM activations
// to accelerate. A hot set that fits in the LLC makes every rung tie at
// the baseline (all misses compulsory + sequential), which is what this
// experiment originally mismeasured.
const HOT_REGION: u64 = 0;
const HOT_BYTES: u64 = 256 * 1024;
const STREAM_REGION: u64 = 1 << 26;
const STREAM_BYTES: u64 = 1 << 22;

fn workload(quick: bool) -> Vec<TraceRequest> {
    let n = if quick { 6_000 } else { 30_000 };
    let mut rng = SmallRng::seed_from_u64(97);
    let mut hot =
        ZipfGen::new(HOT_REGION, (HOT_BYTES / 4096) as usize, 4096, 1.3, 0.2).expect("valid zipf");
    let mut stream = StreamGen::new(STREAM_REGION, 64, STREAM_BYTES, 0.1).expect("valid stream");
    // Two hot accesses per stream access: the reusable structure carries
    // the run, the stream pollutes it.
    (0..n)
        .map(|i| {
            if i % 3 != 0 {
                hot.next_request(&mut rng)
            } else {
                stream.next_request(&mut rng).on_thread(1)
            }
        })
        .collect()
}

/// The system configuration all rungs share: a 64 KiB LLC the workload
/// actually fills and overflows, so cache policy is on the critical path.
fn config() -> SystemConfig {
    SystemConfig {
        llc_bytes: 64 * 1024,
        ..SystemConfig::default()
    }
}

fn registry() -> AtomRegistry {
    let mut reg = AtomRegistry::new();
    reg.register(
        HOT_REGION..HOT_REGION + HOT_BYTES,
        DataAttributes::new()
            .criticality(Criticality::Critical)
            .locality(Locality::Reuse),
    )
    .expect("disjoint");
    reg.register(
        STREAM_REGION..STREAM_REGION + STREAM_BYTES,
        DataAttributes::new().locality(Locality::Streaming),
    )
    .expect("disjoint");
    reg
}

/// The ablation ladder's rows (memoized: `run`, `report`, and
/// `speedups` share one simulation per process).
fn rows(quick: bool) -> Vec<AblationRow> {
    static CACHE: crate::report::OutcomeCache<Vec<AblationRow>> =
        crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || {
        let trace = workload(quick);
        // lint: allow(P001, the ladder configs are static and the trace is non-empty)
        run_ablation(&config(), &registry(), &trace).expect("ablation runs")
    })
}

/// The ladder's speedups (baseline = 1.0).
#[must_use]
pub fn speedups(quick: bool) -> Vec<f64> {
    rows(quick).into_iter().map(|r| r.speedup).collect()
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let mut table = Table::new(&[
        "configuration",
        "cycles",
        "LLC hit rate",
        "DRAM row-hit rate",
        "speedup vs baseline",
    ]);
    for r in &rows {
        table.row(&[
            r.principles.to_string(),
            r.report.cycles().to_string(),
            pct(r.report.llc_hit_rate),
            pct(r.report.memory.row_hit_rate),
            format!("{:.3}x", r.speedup),
        ]);
    }
    format!(
        "E16: principle ablation on a mixed hot-structure + streaming workload\n\
         (paper shape: each principle contributes; the full system is fastest or tied)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let s = speedups(quick);
    let mut rep = crate::report::ExperimentReport::new("exp16_ablation", quick)
        .metric("baseline_speedup", s[0])
        .metric("data_centric_speedup", s[1])
        .metric("data_driven_speedup", s[2])
        .metric("full_system_speedup", s[3])
        .columns(&["rung", "speedup"]);
    let rungs = ["baseline", "+data-centric", "+data-driven", "+data-aware"];
    for (rung, sp) in rungs.iter().zip(&s) {
        rep = rep.row(&[(*rung).to_owned(), format!("{sp:.3}")]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_system_is_fastest() {
        let s = speedups(true);
        assert_eq!(s.len(), 4);
        assert!((s[0] - 1.0).abs() < 1e-12);
        let best = s.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            s[3] >= best * 0.99,
            "full system {:.3} should be at or near the best rung {best:.3}",
            s[3]
        );
        assert!(
            s[3] > 1.05,
            "full system must clearly beat the baseline: {:.3}",
            s[3]
        );
    }

    #[test]
    fn every_rung_contributes() {
        let s = speedups(true);
        // The workload is sized so each principle has headroom: AL-DRAM
        // accelerates the Zipf-scattered activations, DIP resists the
        // stream's pollution, and the data-aware hints protect the hot
        // structure outright. A small slack absorbs scheduler
        // interleaving shifts between rungs.
        assert!(
            s[1] > 1.0,
            "data-centric rung {:.3} must beat baseline",
            s[1]
        );
        assert!(
            s[2] >= s[1] * 0.99,
            "data-driven rung {:.3} must not undo {:.3}",
            s[2],
            s[1]
        );
        assert!(
            s[3] >= s[2],
            "data-aware rung {:.3} must not undo {:.3}",
            s[3],
            s[2]
        );
    }

    #[test]
    fn report_renders_ladder() {
        let s = run(true);
        assert!(s.contains("processor-centric baseline"));
        assert!(s.contains("data-centric+data-driven+data-aware"));
    }
}
