//! **E15 — Perceptron prediction vs. counter tables.**
//!
//! Paper claim (§IV, Data-Driven): perceptron-based prediction (Jiménez &
//! Lin, HPCA 2001) is a canonical data-driven controller — it exploits
//! long histories that saturating-counter tables cannot, winning on
//! history-correlated behaviour.

use ia_core::Table;
use ia_learn::PerceptronPredictor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::pct;

/// A classic bimodal (2-bit saturating counter) predictor baseline.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    counters: Vec<i8>,
}

impl BimodalPredictor {
    /// Creates a table of `entries` 2-bit counters.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        BimodalPredictor {
            counters: vec![0; entries.max(1)],
        }
    }

    fn index(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % self.counters.len()
    }

    /// Predicts the outcome for `key`.
    #[must_use]
    pub fn predict(&self, key: u64) -> bool {
        self.counters[self.index(key)] >= 0
    }

    /// Trains on the actual outcome.
    pub fn update(&mut self, key: u64, actual: bool) {
        let idx = self.index(key);
        let c = &mut self.counters[idx];
        *c = (*c + if actual { 1 } else { -1 }).clamp(-2, 1);
    }
}

/// Branch-stream generators with different predictability structure.
fn streams(quick: bool) -> Vec<(&'static str, Vec<bool>)> {
    let n = if quick { 4_000 } else { 40_000 };
    let mut rng = SmallRng::seed_from_u64(91);
    let biased: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.9)).collect();
    let pattern: Vec<bool> = (0..n)
        .map(|i| [true, true, false, true, false][i % 5])
        .collect();
    // History-correlated: taken iff exactly one of the last two was taken.
    let mut corr = Vec::with_capacity(n);
    let (mut h1, mut h2) = (false, true);
    for _ in 0..n {
        let t = h1 ^ h2;
        corr.push(t);
        h2 = h1;
        h1 = t;
    }
    let random: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    vec![
        ("biased (90% taken)", biased),
        ("short pattern (TTNTN)", pattern),
        ("history-correlated (XOR)", corr),
        ("random", random),
    ]
}

fn accuracy_of(stream: &[bool], mut predict: impl FnMut(bool) -> bool) -> f64 {
    let warmup = stream.len() / 4;
    let mut correct = 0usize;
    for (i, &actual) in stream.iter().enumerate() {
        let hit = predict(actual);
        if i >= warmup && hit {
            correct += 1;
        }
    }
    correct as f64 / (stream.len() - warmup) as f64
}

/// Per-stream accuracies `(name, bimodal, perceptron)`.
#[must_use]
pub fn rows(quick: bool) -> Vec<(String, f64, f64)> {
    streams(quick)
        .into_iter()
        .map(|(name, stream)| {
            let mut bim = BimodalPredictor::new(1024);
            let bim_acc = accuracy_of(&stream, |actual| {
                let p = bim.predict(7);
                bim.update(7, actual);
                p == actual
            });
            let mut per = PerceptronPredictor::new(1024, 16).expect("valid predictor");
            let per_acc = accuracy_of(&stream, |actual| {
                let p = per.predict(7);
                per.update(7, actual);
                p == actual
            });
            (name.to_owned(), bim_acc, per_acc)
        })
        .collect()
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let mut table = Table::new(&["branch stream", "bimodal 2-bit", "perceptron"]);
    for (name, bim, per) in rows(quick) {
        table.row(&[name, pct(bim), pct(per)]);
    }
    format!(
        "E15: perceptron vs counter-table prediction\n\
         (paper shape: perceptrons win on history-correlated streams, tie elsewhere)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let data = rows(quick);
    let n = data.len().max(1) as f64;
    let mean_bim = data.iter().map(|(_, b, _)| b).sum::<f64>() / n;
    let mean_per = data.iter().map(|(_, _, p)| p).sum::<f64>() / n;
    let mut rep = crate::report::ExperimentReport::new("exp15_perceptron", quick)
        .metric("mean_bimodal_accuracy", mean_bim)
        .metric("mean_perceptron_accuracy", mean_per)
        .columns(&["branch_stream", "bimodal_accuracy", "perceptron_accuracy"]);
    for (name, bim, per) in &data {
        rep = rep.row(&[name.clone(), format!("{bim:.4}"), format!("{per:.4}")]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perceptron_wins_on_history_correlation() {
        let rows = rows(true);
        let (_, bim, per) = rows
            .iter()
            .find(|(n, _, _)| n.contains("XOR"))
            .expect("correlated stream present")
            .clone();
        assert!(
            per > 0.95,
            "perceptron should nail the XOR pattern, got {per:.3}"
        );
        assert!(
            per > bim + 0.2,
            "perceptron {per:.3} must clearly beat bimodal {bim:.3}"
        );
    }

    #[test]
    fn both_handle_biased_branches() {
        let rows = rows(true);
        let (_, bim, per) = rows
            .iter()
            .find(|(n, _, _)| n.contains("biased"))
            .expect("present")
            .clone();
        assert!(bim > 0.8);
        assert!(per > 0.8);
    }

    #[test]
    fn nobody_predicts_randomness() {
        let rows = rows(true);
        let (_, bim, per) = rows
            .iter()
            .find(|(n, _, _)| n.contains("random"))
            .expect("present")
            .clone();
        assert!((0.4..0.6).contains(&bim));
        assert!((0.4..0.6).contains(&per));
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("perceptron"));
    }
}
