//! **E14 — Hybrid DRAM+PCM main memory.**
//!
//! Paper claim (§IV, Data-Centric): intelligent architectures enable
//! "low-cost data storage … via new memory technologies \[and\] hybrid
//! memory systems". Row-buffer-locality-aware placement (Yoon+, ICCD
//! 2012) recovers most of all-DRAM performance with a small DRAM tier in
//! front of large PCM, beating the conventional LRU DRAM cache by caching
//! only the pages that actually suffer on PCM.

use ia_core::Table;
use ia_memctrl::{HybridMemory, HybridTiming, PlacementPolicy};
use ia_workloads::{TraceGenerator, ZipfGen};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::pct;

/// Outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Average access cost, all-PCM.
    pub all_pcm: f64,
    /// Average cost with an LRU DRAM cache.
    pub lru: f64,
    /// Average cost with RBLA placement.
    pub rbla: f64,
    /// Migrations performed by LRU.
    pub lru_migrations: u64,
    /// Migrations performed by RBLA.
    pub rbla_migrations: u64,
}

fn run_policy(policy: PlacementPolicy, dram_pages: usize, quick: bool) -> HybridMemory {
    let n = if quick { 8_000 } else { 80_000 };
    let mut rng = SmallRng::seed_from_u64(83);
    // Zipf over 4096 pages: a hot head plus a long tail of sequential,
    // row-hit-friendly pages.
    let mut gen = ZipfGen::new(0, 4096, 4096, 1.2, 0.3).expect("valid zipf");
    // Page migration rides the in-package bus: ~4 KiB at burst rate.
    let timing = HybridTiming {
        migration: 300,
        ..HybridTiming::default()
    };
    let mut mem = HybridMemory::new(dram_pages, 4096, timing, policy).expect("valid hybrid");
    for r in gen.generate(n, &mut rng) {
        mem.access(r.addr, matches!(r.op, ia_workloads::Op::Write));
    }
    mem
}

/// Computes the outcome (DRAM tier = 1/16 of the pages).
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    static CACHE: crate::report::OutcomeCache<Outcome> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_outcome(quick))
}

fn compute_outcome(quick: bool) -> Outcome {
    let dram_pages = 256;
    // "All-PCM": a 1-page DRAM tier with promotion disabled.
    let all_pcm = run_policy(
        PlacementPolicy::Rbla {
            miss_threshold: u32::MAX,
        },
        1,
        quick,
    );
    let lru = run_policy(PlacementPolicy::Lru, dram_pages, quick);
    let rbla = run_policy(
        PlacementPolicy::Rbla { miss_threshold: 2 },
        dram_pages,
        quick,
    );
    Outcome {
        all_pcm: all_pcm.avg_cost(),
        lru: lru.avg_cost(),
        rbla: rbla.avg_cost(),
        lru_migrations: lru.migrations,
        rbla_migrations: rbla.migrations,
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let dram_pages = 256;
    let mut table = Table::new(&[
        "configuration",
        "avg access cost (cy)",
        "DRAM serve rate",
        "migrations",
    ]);
    let all_pcm = run_policy(
        PlacementPolicy::Rbla {
            miss_threshold: u32::MAX,
        },
        1,
        quick,
    );
    let lru = run_policy(PlacementPolicy::Lru, dram_pages, quick);
    let rbla = run_policy(
        PlacementPolicy::Rbla { miss_threshold: 2 },
        dram_pages,
        quick,
    );
    let all_dram = run_policy(PlacementPolicy::Lru, 4096, quick);
    for (name, m) in [
        ("all-PCM (no DRAM tier)", &all_pcm),
        ("hybrid, LRU DRAM cache (1/16)", &lru),
        ("hybrid, RBLA placement (1/16)", &rbla),
        ("all-DRAM (upper bound)", &all_dram),
    ] {
        table.row(&[
            name.to_owned(),
            format!("{:.1}", m.avg_cost()),
            pct(m.dram_serve_rate()),
            m.migrations.to_string(),
        ]);
    }
    format!(
        "E14: hybrid DRAM+PCM memory, zipf working set over 16 MiB, DRAM tier 1 MiB\n\
         (paper shape: hybrid recovers most of all-DRAM performance; RBLA needs fewer migrations)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp14_hybrid_memory", quick)
        .metric("all_pcm_avg_cost", o.all_pcm)
        .metric("lru_avg_cost", o.lru)
        .metric("rbla_avg_cost", o.rbla)
        .metric("lru_migrations", o.lru_migrations as f64)
        .metric("rbla_migrations", o.rbla_migrations as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_beats_all_pcm() {
        let o = outcome(true);
        assert!(
            o.lru < o.all_pcm,
            "LRU hybrid {:.1} must beat all-PCM {:.1}",
            o.lru,
            o.all_pcm
        );
        assert!(o.rbla < o.all_pcm);
    }

    #[test]
    fn rbla_migrates_less_than_lru() {
        let o = outcome(true);
        assert!(
            o.rbla_migrations < o.lru_migrations,
            "RBLA migrations {} should be below LRU {}",
            o.rbla_migrations,
            o.lru_migrations
        );
    }

    #[test]
    fn report_renders_configurations() {
        let s = run(true);
        assert!(s.contains("all-PCM"));
        assert!(s.contains("RBLA"));
    }
}
