//! # ia-bench — experiment harness
//!
//! One module per experiment in DESIGN.md's index (E1–E16). Each module
//! exposes `run(quick) -> String`, producing the table/series recorded in
//! `EXPERIMENTS.md`, plus `report(quick) -> ExperimentReport` with the
//! same results in machine-readable form. The `expNN_*` binaries route
//! both through [`report::cli`] (`--quick`, `--threads <n>`,
//! `--json <path>`, `--csv <path>`), and the integration tests assert
//! the qualitative shape on `run(true)`. Independent-configuration
//! sweeps fan out on the `ia-par` worker pool; reports are
//! byte-identical at every `--threads` setting (see
//! `tests/parallel_determinism.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp01_data_movement;
pub mod exp02_rowclone;
pub mod exp03_ambit;
pub mod exp04_rl_memctrl;
pub mod exp05_scheduler_suite;
pub mod exp06_raidr;
pub mod exp07_bdi;
pub mod exp08_pnm_graph;
pub mod exp09_pointer_chase;
pub mod exp10_rowhammer;
pub mod exp11_grim_filter;
pub mod exp12_xmem;
pub mod exp13_low_latency_dram;
pub mod exp14_hybrid_memory;
pub mod exp15_perceptron;
pub mod exp16_ablation;
pub mod exp17_prefetchers;
pub mod exp18_noc;
pub mod exp19_salp;
pub mod exp20_eden;
pub mod exp21_memscale;
pub mod exp22_runahead;
pub mod exp23_gsdram;
pub mod exp24_fault_injection;

pub mod fuzz;
pub mod mixes;
pub mod replay;
pub mod report;

/// Formats a ratio as `N.NNx`.
#[must_use]
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_owned()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(4.0, 2.0), "2.00x");
        assert_eq!(ratio(1.0, 0.0), "inf");
        assert_eq!(pct(0.627), "62.7%");
    }
}
