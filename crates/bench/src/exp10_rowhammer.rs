//! **E10 — RowHammer across device generations, and mitigation.**
//!
//! Paper claim (§IV, bottom-up push): RowHammer is the flagship scaling
//! problem demanding intelligent controllers. The revisit study (Kim+,
//! ISCA 2020) shows `HC_first` collapsing from ≈139k (2013 DDR3) to
//! ≈4.8k (2020 LPDDR4); PARA and counter-based TRR suppress the flips.

use ia_core::Table;
use ia_reliability::{
    double_sided_pattern, run_attack, CounterTrr, DeviceGeneration, Para, RowHammerModel,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Outcome for assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// (generation, unmitigated flips) at a fixed hammer count.
    pub unmitigated: Vec<(DeviceGeneration, u64)>,
    /// Flips on the newest device under PARA.
    pub para_flips: u64,
    /// Flips on the newest device under counter-TRR.
    pub trr_flips: u64,
}

/// One independent attack configuration.
#[derive(Debug, Clone, Copy)]
enum Attack {
    /// No mitigation, on this generation.
    Unmitigated(DeviceGeneration),
    /// PARA (p = 0.01) on the newest generation.
    Para,
    /// Counter-based TRR on the newest generation.
    Trr,
}

/// Computes the outcome. Every attack owns a seeded RNG derived from
/// the base seed and its task index (instead of the pre-`ia-par`
/// single stream threaded through all five runs), so the five
/// configurations are independent and fan out on the worker pool with
/// results identical at any `--threads` setting.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    static CACHE: crate::report::OutcomeCache<Outcome> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_outcome(quick))
}

fn compute_outcome(quick: bool) -> Outcome {
    let hammers = if quick { 300_000 } else { 2_000_000 };
    let rows = 1 << 14;
    let victim = 5000;
    let pattern = double_sided_pattern(victim, hammers);
    let newest = DeviceGeneration::Lpddr4Y2020;

    let mut tasks: Vec<Attack> = DeviceGeneration::all()
        .into_iter()
        .map(Attack::Unmitigated)
        .collect();
    tasks.push(Attack::Para);
    tasks.push(Attack::Trr);

    let flips = ia_par::par_map_indexed(ia_par::auto_threads(), tasks, |i, attack| {
        let mut rng = SmallRng::seed_from_u64(53 + i as u64);
        match attack {
            Attack::Unmitigated(g) => {
                let mut m = RowHammerModel::new(g, rows);
                run_attack(&mut m, None, pattern.clone(), &mut rng).0
            }
            Attack::Para => {
                let mut m = RowHammerModel::new(newest, rows);
                let mut para = Para::with_probability(0.01);
                run_attack(&mut m, Some(&mut para), pattern.clone(), &mut rng).0
            }
            Attack::Trr => {
                let mut m = RowHammerModel::new(newest, rows);
                let mut trr = CounterTrr::new(32, newest.hc_first() / 2);
                run_attack(&mut m, Some(&mut trr), pattern.clone(), &mut rng).0
            }
        }
    });

    let generations = DeviceGeneration::all();
    Outcome {
        unmitigated: generations.into_iter().zip(flips.iter().copied()).collect(),
        para_flips: flips[generations.len()],
        trr_flips: flips[generations.len() + 1],
    }
}

/// Runs the experiment and renders the tables.
#[must_use]
pub fn run(quick: bool) -> String {
    let hammers = if quick { 300_000 } else { 2_000_000 };
    let o = outcome(quick);
    let mut gen_table = Table::new(&["device generation", "HC_first", "flips (double-sided)"]);
    for &(g, flips) in &o.unmitigated {
        gen_table.row(&[
            g.label().to_owned(),
            g.hc_first().to_string(),
            flips.to_string(),
        ]);
    }
    let newest_flips = o.unmitigated.last().map_or(0, |&(_, f)| f);
    let mut mit_table = Table::new(&["mitigation (LPDDR4-2020)", "flips", "suppression"]);
    mit_table.row(&["none".to_owned(), newest_flips.to_string(), "1x".to_owned()]);
    mit_table.row(&[
        "PARA (p=0.01)".to_owned(),
        o.para_flips.to_string(),
        if o.para_flips == 0 {
            "complete".to_owned()
        } else {
            format!("{:.0}x", newest_flips as f64 / o.para_flips as f64)
        },
    ]);
    mit_table.row(&[
        "Counter-TRR".to_owned(),
        o.trr_flips.to_string(),
        if o.trr_flips == 0 {
            "complete".to_owned()
        } else {
            format!("{:.0}x", newest_flips as f64 / o.trr_flips as f64)
        },
    ]);
    format!(
        "E10: RowHammer, {hammers} double-sided activations in one refresh window\n\
         (paper shape: flips explode as HC_first drops 139k→4.8k; mitigations suppress them)\n\
         {gen_table}\n\n{mit_table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    let worst = o.unmitigated.iter().map(|&(_, f)| f).max().unwrap_or(0);
    let mut rep = crate::report::ExperimentReport::new("exp10_rowhammer", quick)
        .metric("worst_unmitigated_flips", worst as f64)
        .metric("para_flips", o.para_flips as f64)
        .metric("trr_flips", o.trr_flips as f64)
        .columns(&["generation", "unmitigated_flips"]);
    for (generation, flips) in &o.unmitigated {
        rep = rep.row(&[format!("{generation:?}"), flips.to_string()]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_devices_flip_more() {
        let o = outcome(true);
        let flips: Vec<u64> = o.unmitigated.iter().map(|&(_, f)| f).collect();
        assert!(
            flips[2] > flips[1],
            "2020 device must flip more than 2017: {flips:?}"
        );
        assert!(
            flips[1] > flips[0],
            "2017 device must flip more than 2013: {flips:?}"
        );
    }

    #[test]
    fn mitigations_suppress_flips() {
        let o = outcome(true);
        let unmitigated = o.unmitigated.last().map(|&(_, f)| f).unwrap_or(0);
        assert!(unmitigated > 0);
        assert!(
            o.para_flips < unmitigated / 5,
            "PARA: {} vs {unmitigated}",
            o.para_flips
        );
        assert_eq!(
            o.trr_flips, 0,
            "counter-TRR below HC_first must stop the attack"
        );
    }

    #[test]
    fn report_renders_generations() {
        let s = run(true);
        assert!(s.contains("DDR3 (2013)"));
        assert!(s.contains("PARA"));
    }
}
