//! **E5 — The fixed-policy scheduler lineage.**
//!
//! Paper claim (§III): every controller "keeps executing exactly the same
//! fixed policy", and the literature's answer has been a succession of
//! heuristics (FR-FCFS → PAR-BS → ATLAS → TCM → BLISS) trading throughput
//! against fairness. This experiment reproduces the classic comparison:
//! weighted speedup and maximum slowdown over a 4-thread interference mix.

use ia_core::{SchedulerKind, Table};
use ia_dram::DramConfig;
use ia_memctrl::{max_slowdown, run_closed_loop_with, weighted_speedup, MemoryController};
use ia_par::{auto_threads, par_map};
use ia_sim::SnapshotState;

use crate::mixes::interference_mix;

/// Result per scheduler for assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Scheduler name.
    pub name: String,
    /// Weighted speedup (higher better).
    pub weighted_speedup: f64,
    /// Maximum slowdown (lower better).
    pub max_slowdown: f64,
    /// Requests per kilo-cycle.
    pub throughput: f64,
    /// Total simulated cycles of the shared run.
    pub cycles: u64,
    /// Event-driven engine counters for the shared run.
    pub engine: ia_sim::EngineStats,
}

/// Runs every scheduler over the mix and returns the rows (memoized:
/// `run` and `report` share one simulation per process).
#[must_use]
pub fn rows(quick: bool) -> Vec<Row> {
    static CACHE: crate::report::OutcomeCache<Vec<Row>> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_rows(quick))
}

fn compute_rows(quick: bool) -> Vec<Row> {
    let n = if quick { 300 } else { 3000 };
    let traces = interference_mix(n, 11);

    // Warm-fork: build the DRAM substrate and controller scaffolding
    // exactly once, then fork every run in the sweep from the same warm
    // controller (`SnapshotState`). Construction is scheduler-
    // independent, so a fork with a swapped policy is bit-identical to a
    // cold-built controller — the reports below are byte-for-byte the
    // same as the per-run-construction path at every `--threads`.
    let warm = MemoryController::new(DramConfig::ddr3_1600(), SchedulerKind::FrFcfs.build(1))
        // lint: allow(P001, ddr3_1600 is a valid preset)
        .expect("valid config");

    // Alone runs (per-thread baselines) are scheduler-independent:
    // a single thread cannot interfere with itself across schedulers in a
    // way that changes the comparison, so use FR-FCFS. Each solo run is
    // an independent simulation — fan them out on the worker pool.
    let alone_jobs: Vec<(MemoryController, Vec<_>)> = traces
        .iter()
        .map(|t| (warm.fork(), vec![t.clone()]))
        .collect();
    let alone: Vec<u64> = par_map(auto_threads(), alone_jobs, |(ctrl, solo)| {
        run_closed_loop_with(ctrl, &solo, 8, 200_000_000)
            // lint: allow(P001, every mix trace is non-empty)
            .expect("solo run")
            .threads[0]
            .finish
    });

    // The seven shared runs are likewise independent; `par_map` returns
    // rows in `SchedulerKind::all()` order, so the table and every
    // metric reduction downstream match the serial run byte-for-byte.
    // Each run carries its `ia-trace` log (when capture is on) back to
    // this thread, where the logs are submitted in input order — the
    // session trace is therefore byte-identical across `--threads`.
    let shared_jobs: Vec<(SchedulerKind, MemoryController)> = SchedulerKind::all()
        .iter()
        .map(|&kind| (kind, warm.fork().with_scheduler(kind.build(traces.len()))))
        .collect();
    let runs = par_map(auto_threads(), shared_jobs, |(kind, ctrl)| {
        let mut report = run_closed_loop_with(ctrl, &traces, 8, 500_000_000)
            // lint: allow(P001, every mix trace is non-empty)
            .expect("shared run");
        let trace = report.trace.take();
        let row = Row {
            name: kind.name().to_owned(),
            weighted_speedup: weighted_speedup(&alone, &report),
            max_slowdown: max_slowdown(&alone, &report),
            throughput: report.throughput_rpkc(),
            cycles: report.cycles,
            engine: report.engine,
        };
        (row, trace)
    });
    runs.into_iter()
        .map(|(row, trace)| {
            if let Some(log) = trace {
                ia_trace::submit(log.prefixed(&row.name));
            }
            row
        })
        .collect()
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let mut table = Table::new(&[
        "scheduler",
        "weighted speedup",
        "max slowdown",
        "req/kcycle",
    ]);
    for r in &rows {
        table.row(&[
            r.name.clone(),
            format!("{:.3}", r.weighted_speedup),
            format!("{:.2}", r.max_slowdown),
            format!("{:.2}", r.throughput),
        ]);
    }
    format!(
        "E5: scheduler lineage on a 4-thread interference mix\n\
         (paper shape: FR-FCFS beats FCFS on throughput; fairness schedulers cut max slowdown)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let mut rep = crate::report::ExperimentReport::new("exp05_scheduler_suite", quick).columns(&[
        "scheduler",
        "weighted_speedup",
        "max_slowdown",
        "req_per_kcycle",
    ]);
    let mut engine = ia_sim::EngineStats::default();
    for r in rows(quick) {
        let key = r.name.to_lowercase().replace([' ', '-'], "_");
        engine.merge(&r.engine);
        rep = rep
            .metric(&format!("{key}_weighted_speedup"), r.weighted_speedup)
            .row(&[
                r.name.clone(),
                format!("{:.3}", r.weighted_speedup),
                format!("{:.3}", r.max_slowdown),
                format!("{:.2}", r.throughput),
            ]);
    }
    // The cycle-skipping engine's aggregate work/savings over the seven
    // shared runs: proof the event-driven refactor is actually engaged.
    rep.metric("engine_events_processed", engine.events_processed as f64)
        .metric("engine_cycles_skipped", engine.cycles_skipped as f64)
        .metric("engine_skips", engine.skips as f64)
        .metric("engine_sink_high_water", engine.sink_high_water as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frfcfs_outperforms_fcfs_on_throughput() {
        let rows = rows(true);
        let get = |n: &str| rows.iter().find(|r| r.name == n).expect("present").clone();
        let fcfs = get("FCFS");
        let frfcfs = get("FR-FCFS");
        assert!(
            frfcfs.throughput > fcfs.throughput,
            "FR-FCFS {:.2} must beat FCFS {:.2}",
            frfcfs.throughput,
            fcfs.throughput
        );
    }

    #[test]
    fn fairness_schedulers_bound_slowdown() {
        let rows = rows(true);
        let get = |n: &str| rows.iter().find(|r| r.name == n).expect("present").clone();
        let frfcfs = get("FR-FCFS");
        let best_fair = ["PAR-BS", "ATLAS", "TCM", "BLISS"]
            .iter()
            .map(|n| get(n).max_slowdown)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_fair <= frfcfs.max_slowdown * 1.10,
            "at least one fairness scheduler ({best_fair:.2}) should match or beat FR-FCFS \
             unfairness ({:.2})",
            frfcfs.max_slowdown
        );
    }

    #[test]
    fn all_schedulers_complete_the_mix() {
        let rows = rows(true);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| r.weighted_speedup > 0.0));
    }
}
