//! **E7 — Base-Delta-Immediate compression.**
//!
//! Paper claim (§III, data-aware): "if we knew the relative
//! compressibility of different types of data … components could
//! adaptively scale their capability". BDI (Pekhimenko+, PACT 2012)
//! achieves ≈1.5x average compression and a corresponding effective-cache
//! enlargement on real data patterns.

use ia_cache::{bdi_compress, CompressedCache};
use ia_core::Table;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Mean compression ratio across the pattern suite.
    pub mean_ratio: f64,
    /// Hit-rate gain of the compressed cache on the pointer workload.
    pub hit_rate_gain: f64,
}

fn pattern_block(kind: &str, rng: &mut SmallRng) -> [u8; 64] {
    let mut b = [0u8; 64];
    match kind {
        "zeros" => {}
        "repeated" => {
            let v: u64 = 0x0102_0304_0506_0708;
            for i in 0..8 {
                b[i * 8..][..8].copy_from_slice(&v.to_le_bytes());
            }
        }
        "narrow-ints" => {
            for i in 0..16 {
                let v: u32 = rng.gen_range(0..100);
                b[i * 4..][..4].copy_from_slice(&v.to_le_bytes());
            }
        }
        "pointers" => {
            let base: u64 = 0x7F3A_0000_0000 + u64::from(rng.gen::<u16>()) * 4096;
            for i in 0..8 {
                let v = base + rng.gen_range(0..4096u64);
                b[i * 8..][..8].copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => rng.fill(&mut b[..]),
    }
    b
}

/// Mean compression ratio per pattern over `blocks` samples.
fn pattern_ratio(kind: &str, blocks: usize, rng: &mut SmallRng) -> f64 {
    let mut total = 0usize;
    for _ in 0..blocks {
        total += bdi_compress(&pattern_block(kind, rng))
            .expect("64B block")
            .bytes;
    }
    (blocks * 64) as f64 / total as f64
}

/// Computes the outcome.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let blocks = if quick { 50 } else { 1000 };
    let mut rng = SmallRng::seed_from_u64(31);
    let kinds = ["zeros", "repeated", "narrow-ints", "pointers", "random"];
    let mean: f64 = kinds
        .iter()
        .map(|k| pattern_ratio(k, blocks, &mut rng))
        .sum::<f64>()
        / kinds.len() as f64;

    // Effective capacity: a compressed cache vs. a plain one of equal
    // bytes, over a pointer-heavy working set 2x the plain capacity.
    let mut rng2 = SmallRng::seed_from_u64(32);
    let lines: Vec<u64> = (0..256u64).map(|i| i * 64).collect();
    let sizes: Vec<usize> = lines
        .iter()
        .map(|_| {
            bdi_compress(&pattern_block("pointers", &mut rng2))
                .expect("64B")
                .bytes
        })
        .collect();
    let mut plain = CompressedCache::new(8192, 8, 64).expect("valid");
    let mut compressed = CompressedCache::new(8192, 8, 64).expect("valid");
    for round in 0..4 {
        for (i, &a) in lines.iter().enumerate() {
            let _ = round;
            plain.access(a, 64);
            compressed.access(a, sizes[i]);
        }
    }
    let plain_hr = plain.stats.hit_rate();
    let comp_hr = compressed.stats.hit_rate();
    Outcome {
        mean_ratio: mean,
        hit_rate_gain: comp_hr - plain_hr,
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let blocks = if quick { 50 } else { 1000 };
    let mut rng = SmallRng::seed_from_u64(31);
    let mut table = Table::new(&["data pattern", "BDI compression ratio"]);
    for kind in ["zeros", "repeated", "narrow-ints", "pointers", "random"] {
        table.row(&[
            kind.to_owned(),
            format!("{:.2}x", pattern_ratio(kind, blocks, &mut rng)),
        ]);
    }
    let o = outcome(quick);
    format!(
        "E7: BDI cache compression (paper: ≈1.5x average ratio, larger effective cache)\n{table}\n\
         mean ratio across patterns: {:.2}x | compressed-cache hit-rate gain on pointer data: +{:.1} pts\n",
        o.mean_ratio,
        o.hit_rate_gain * 100.0
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp07_bdi", quick)
        .metric("mean_compression_ratio", o.mean_ratio)
        .metric("hit_rate_gain", o.hit_rate_gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ratio_matches_paper_band() {
        let o = outcome(true);
        assert!(
            o.mean_ratio > 1.4,
            "mean ratio {:.2} should be ≈1.5x+",
            o.mean_ratio
        );
    }

    #[test]
    fn compression_enlarges_effective_cache() {
        let o = outcome(true);
        assert!(
            o.hit_rate_gain > 0.1,
            "hit-rate gain {:.3} should be substantial",
            o.hit_rate_gain
        );
    }

    #[test]
    fn report_lists_patterns() {
        let s = run(true);
        for k in ["zeros", "pointers", "random"] {
            assert!(s.contains(k));
        }
    }
}
