//! **E1 — Data-movement energy in consumer workloads.**
//!
//! Paper claim (§I): "more than 60% of the entire mobile system energy is
//! spent on data movement across the memory hierarchy when executing four
//! major commonly-used consumer workloads" (Boroumand+, ASPLOS 2018), and
//! PIM offload substantially reduces it.

use ia_core::Table;
use ia_workloads::{energy_breakdown, energy_with_pim, MobileWorkload, SystemEnergyModel};

use crate::pct;

/// Parsed outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Suite-wide movement energy fraction.
    pub movement_fraction: f64,
    /// Suite-wide energy reduction from 80% PIM offload.
    pub pim_reduction: f64,
}

/// Computes the outcome without formatting.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let scale = if quick { 1 } else { 100 };
    let model = SystemEnergyModel::default();
    let suite = MobileWorkload::consumer_suite(scale);
    let mut total = 0.0;
    let mut movement = 0.0;
    let mut pim_total = 0.0;
    for w in &suite {
        let b = energy_breakdown(w, &model);
        total += b.total_pj();
        movement += b.movement_pj;
        pim_total += energy_with_pim(w, &model, 0.8).total_pj();
    }
    Outcome {
        movement_fraction: movement / total,
        pim_reduction: 1.0 - pim_total / total,
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let scale = if quick { 1 } else { 100 };
    let model = SystemEnergyModel::default();
    let suite = MobileWorkload::consumer_suite(scale);
    let mut table = Table::new(&[
        "workload",
        "compute (uJ)",
        "movement (uJ)",
        "movement share",
        "total w/ PIM-80% (uJ)",
        "PIM saving",
    ]);
    for w in &suite {
        let b = energy_breakdown(w, &model);
        let pim = energy_with_pim(w, &model, 0.8);
        table.row(&[
            w.name.clone(),
            format!("{:.1}", b.compute_pj / 1e6),
            format!("{:.1}", b.movement_pj / 1e6),
            pct(b.movement_fraction()),
            format!("{:.1}", pim.total_pj() / 1e6),
            pct(1.0 - pim.total_pj() / b.total_pj()),
        ]);
    }
    let o = outcome(quick);
    format!(
        "E1: data-movement energy in consumer workloads (paper: 62.7% of system energy)\n{table}\n\
         suite-wide movement share: {} | suite-wide PIM(80%) energy reduction: {}\n",
        pct(o.movement_fraction),
        pct(o.pim_reduction)
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp01_data_movement", quick)
        .metric("movement_fraction", o.movement_fraction)
        .metric("pim_reduction", o.pim_reduction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_share_matches_paper_shape() {
        let o = outcome(true);
        assert!(
            (0.55..0.80).contains(&o.movement_fraction),
            "movement share {:.3} should bracket the paper's 62.7%",
            o.movement_fraction
        );
        // Offloading 80% of DRAM traffic removes its I/O share of total
        // energy — a double-digit-percent total-energy cut in this model
        // (the original reports ~55% on the PIM-offloaded functions
        // themselves, a superset of what our accounting attributes).
        assert!(
            o.pim_reduction > 0.1,
            "PIM offload must cut a double-digit share of energy, got {:.3}",
            o.pim_reduction
        );
    }

    #[test]
    fn table_renders_all_workloads() {
        let s = run(true);
        for name in [
            "tensorflow-inference",
            "video-playback",
            "video-capture",
            "chrome-browsing",
        ] {
            assert!(s.contains(name), "missing {name}:\n{s}");
        }
    }
}
