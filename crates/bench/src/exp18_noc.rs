//! **E18 — Bufferless deflection routing vs buffered mesh.**
//!
//! Paper lineage (§III references [200, 205, 207]): "A Case for
//! Bufferless Routing in On-Chip Networks" (Moscibroda & Mutlu, ISCA
//! 2009) — at realistic loads a network with *no buffers at all* matches
//! the buffered mesh's latency while eliminating its dominant area/power
//! cost; the price is deflections and earlier saturation at high load.

use ia_core::Table;
use ia_noc::{simulate, simulate_traced, MeshConfig, NocReport, RouterKind, Traffic};

/// Latency-vs-load series for both routers (memoized: `run` and
/// `report` share one simulation per process).
#[must_use]
pub fn sweep(quick: bool) -> Vec<(f64, NocReport, NocReport)> {
    static CACHE: crate::report::OutcomeCache<Vec<(f64, NocReport, NocReport)>> =
        crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_sweep(quick))
}

fn compute_sweep(quick: bool) -> Vec<(f64, NocReport, NocReport)> {
    // lint: allow(P001, 8x8 are compile-time dims MeshConfig::new accepts)
    let mesh = MeshConfig::new(8, 8).expect("valid mesh");
    let cycles = if quick { 2_000 } else { 20_000 };
    let rates = [0.02f64, 0.05, 0.10, 0.20, 0.30];
    // 5 rates × 2 router kinds = 10 independent simulations, each with
    // its own seeded RNG inside `simulate`; fan them out and zip the
    // order-preserved results back into per-rate rows. When the bench
    // CLI's `--trace`/`--profile` session capture is on, each task also
    // records a mesh-activity trace; the logs ride back with the
    // results and are submitted here in input order, keeping the
    // session trace byte-identical across `--threads`.
    let tracing = ia_trace::capture_enabled();
    let tasks: Vec<(f64, RouterKind)> = rates
        .iter()
        .flat_map(|&rate| {
            [
                (rate, RouterKind::Buffered),
                (rate, RouterKind::BufferlessDeflection),
            ]
        })
        .collect();
    let runs = ia_par::par_map(ia_par::auto_threads(), tasks, |(rate, kind)| {
        if tracing {
            let (report, log) =
                simulate_traced(kind, mesh, Traffic::UniformRandom, rate, cycles, 11)
                    // lint: allow(P001, swept rates are constants inside [0, 1])
                    .expect("valid run");
            (report, Some(log), rate, kind)
        } else {
            let report = simulate(kind, mesh, Traffic::UniformRandom, rate, cycles, 11)
                // lint: allow(P001, swept rates are constants inside [0, 1])
                .expect("valid run");
            (report, None, rate, kind)
        }
    });
    let reports: Vec<NocReport> = runs
        .into_iter()
        .map(|(report, log, rate, kind)| {
            if let Some(log) = log {
                let label = match kind {
                    RouterKind::Buffered => format!("buffered@{rate:.2}"),
                    RouterKind::BufferlessDeflection => format!("bufferless@{rate:.2}"),
                };
                ia_trace::submit(log.prefixed(&label));
            }
            report
        })
        .collect();
    rates
        .iter()
        .zip(reports.chunks(2))
        .map(|(&rate, pair)| (rate, pair[0], pair[1]))
        .collect()
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let mut table = Table::new(&[
        "inj. rate",
        "buffered lat (cy)",
        "bufferless lat (cy)",
        "deflections/pkt",
        "peak buffers (buffered)",
    ]);
    for (rate, b, d) in sweep(quick) {
        table.row(&[
            format!("{rate:.2}"),
            format!("{:.1}", b.avg_latency),
            format!("{:.1}", d.avg_latency),
            format!("{:.2}", d.deflections as f64 / d.delivered.max(1) as f64),
            b.peak_buffering.to_string(),
        ]);
    }
    format!(
        "E18: 8x8 mesh, uniform-random traffic — buffered XY vs bufferless deflection\n\
         (paper shape: near-identical latency at low-to-medium load with zero buffers;\n\
          deflections grow as the bufferless network approaches saturation)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let data = sweep(quick);
    let mut rep = crate::report::ExperimentReport::new("exp18_noc", quick).columns(&[
        "injection_rate",
        "buffered_latency",
        "bufferless_latency",
        "deflections_per_packet",
    ]);
    for (rate, buffered, bufferless) in &data {
        let defl = if bufferless.delivered == 0 {
            0.0
        } else {
            bufferless.deflections as f64 / bufferless.delivered as f64
        };
        rep = rep.row(&[
            format!("{rate:.2}"),
            format!("{:.1}", buffered.avg_latency),
            format!("{:.1}", bufferless.avg_latency),
            format!("{defl:.2}"),
        ]);
    }
    if let Some((_, buffered, bufferless)) = data.last() {
        rep = rep
            .metric("peak_buffered_latency", buffered.avg_latency)
            .metric("peak_bufferless_latency", bufferless.avg_latency);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bufferless_is_competitive_at_low_load() {
        let s = sweep(true);
        let (_, b, d) = &s[0];
        assert!(
            d.avg_latency < b.avg_latency + 3.0,
            "bufferless {:.1} vs buffered {:.1} at 2% load",
            d.avg_latency,
            b.avg_latency
        );
    }

    #[test]
    fn deflections_grow_with_load() {
        let s = sweep(true);
        let low = s[0].2.deflections as f64 / s[0].2.delivered.max(1) as f64;
        let high = s.last().expect("non-empty").2.deflections as f64
            / s.last().expect("non-empty").2.delivered.max(1) as f64;
        assert!(
            high > low,
            "deflections/pkt must rise with load: {low:.3} -> {high:.3}"
        );
    }

    #[test]
    fn buffered_queues_grow_with_load() {
        let s = sweep(true);
        assert!(s.last().expect("non-empty").1.peak_buffering > s[0].1.peak_buffering);
    }

    #[test]
    fn report_renders() {
        let out = run(true);
        assert!(out.contains("deflections"));
        assert!(out.contains("0.02"));
    }
}
