//! **E23 — Gather-Scatter DRAM.**
//!
//! Paper citation \[24\] (Seshadri+, MICRO 2015): in-DRAM address
//! translation makes non-unit-strided access pattern-dense on the
//! channel. Expected shape: traffic/energy reduction approaching the
//! stride factor for large strides, nothing for dense access.

use ia_core::Table;
use ia_dram::DramConfig;
use ia_pum::{conventional_gather, gather_elements, gs_dram_gather};

use crate::{pct, ratio};

/// Sweep rows `(stride, conventional bytes, gs bytes, traffic cut,
/// energy cut)`.
#[must_use]
pub fn sweep(quick: bool) -> Vec<(u64, u64, u64, f64, f64)> {
    let elements = if quick { 10_000 } else { 100_000 };
    let cfg = DramConfig::ddr3_1600();
    [8u64, 16, 32, 64, 128, 256]
        .into_iter()
        .map(|stride| {
            let conv = conventional_gather(&cfg, elements, 8, stride).expect("valid");
            let gs = gs_dram_gather(&cfg, elements, 8, stride).expect("valid");
            (
                stride,
                conv.bytes_moved,
                gs.bytes_moved,
                conv.bytes_moved as f64 / gs.bytes_moved as f64,
                conv.io_energy_pj / gs.io_energy_pj,
            )
        })
        .collect()
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    // Functional sanity: the hardware paths compute the same gather.
    let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    let gathered = gather_elements(&data, 64, 8, 64).expect("valid gather");
    assert_eq!(gathered.len(), 512);

    let mut table = Table::new(&[
        "stride (8B elements)",
        "conventional MB moved",
        "GS-DRAM MB moved",
        "traffic cut",
        "channel efficiency (conv -> GS)",
    ]);
    let cfg = DramConfig::ddr3_1600();
    let elements = if quick { 10_000 } else { 100_000 };
    for (stride, conv_b, gs_b, cut, _energy) in sweep(quick) {
        let conv = conventional_gather(&cfg, elements, 8, stride).expect("valid");
        let gs = gs_dram_gather(&cfg, elements, 8, stride).expect("valid");
        table.row(&[
            format!("{stride} B"),
            format!("{:.2}", conv_b as f64 / 1e6),
            format!("{:.2}", gs_b as f64 / 1e6),
            ratio(cut, 1.0),
            format!("{} -> {}", pct(conv.efficiency()), pct(gs.efficiency())),
        ]);
    }
    format!(
        "E23: Gather-Scatter DRAM on strided (array-of-structs field) access\n\
         (paper shape: traffic and I/O energy cut approaching the stride factor)\n{table}\n"
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let data = sweep(quick);
    let max_cut = data.iter().fold(0.0f64, |a, &(_, _, _, cut, _)| a.max(cut));
    let mut rep = crate::report::ExperimentReport::new("exp23_gsdram", quick)
        .metric("max_traffic_cut", max_cut)
        .columns(&[
            "stride",
            "conventional_bytes",
            "gsdram_bytes",
            "traffic_cut",
            "efficiency_gain",
        ]);
    for (stride, conv, gs, cut, eff) in &data {
        rep = rep.row(&[
            stride.to_string(),
            conv.to_string(),
            gs.to_string(),
            format!("{cut:.4}"),
            format!("{eff:.4}"),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_cut_tracks_the_stride() {
        let s = sweep(true);
        for (stride, _, _, cut, energy_cut) in &s {
            if *stride >= 64 {
                // The cut saturates at line/element = 8x: once each element
                // drags exactly one line, a larger stride adds no waste.
                let factor = (*stride.min(&64) / 8) as f64;
                assert!(
                    *cut > factor * 0.7,
                    "stride {stride}: cut {cut:.1} should approach {factor:.0}"
                );
                assert!(*energy_cut > factor * 0.7);
            }
        }
    }

    #[test]
    fn cuts_are_monotone_in_stride() {
        let s = sweep(true);
        for w in s.windows(2) {
            assert!(w[1].3 >= w[0].3 * 0.99, "larger stride, larger cut: {w:?}");
        }
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("traffic cut"));
    }
}
