//! Shared workload mixes for the scheduler experiments.

use ia_memctrl::MemRequest;
use ia_workloads::{Op, PointerChaseGen, RandomGen, StreamGen, TraceGenerator, ZipfGen};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Converts workload trace requests into controller requests.
#[must_use]
pub fn to_mem_requests(trace: &[ia_workloads::TraceRequest], thread: usize) -> Vec<MemRequest> {
    trace
        .iter()
        .map(|r| match r.op {
            Op::Read => MemRequest::read(r.addr, thread),
            Op::Write => MemRequest::write(r.addr, thread),
        })
        .collect()
}

/// The four-thread interference mix used by the scheduler experiments:
/// a row-hit-friendly stream, a bank-hammering random thread, a hot-set
/// zipf thread, and a dependent pointer chaser — the workload archetypes
/// of the scheduling papers. `per_thread` requests each.
#[must_use]
pub fn interference_mix(per_thread: usize, seed: u64) -> Vec<Vec<MemRequest>> {
    // Routed through the record/replay session (the CLI's
    // `--record-trace` / `--replay-trace`); pass-through when off.
    crate::replay::intercept(seed, || {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Disjoint 64 MiB regions per thread.
        let region = 64 << 20;
        let stream = StreamGen::new(0, 64, 1 << 20, 0.1)
            .expect("static")
            .generate(per_thread, &mut rng);
        let random = RandomGen::new(region, 32 << 20, 64, 0.3)
            .expect("static")
            .generate(per_thread, &mut rng);
        let zipf = ZipfGen::new(2 * region, 4096, 4096, 1.2, 0.2)
            .expect("static")
            .generate(per_thread, &mut rng);
        let mut chase = PointerChaseGen::new(3 * region, 64 * 1024, 64, &mut rng).expect("static");
        let chase = chase.generate(per_thread, &mut rng);
        vec![
            to_mem_requests(&stream, 0),
            to_mem_requests(&random, 1),
            to_mem_requests(&zipf, 2),
            to_mem_requests(&chase, 3),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_has_four_threads_with_disjoint_regions() {
        let mix = interference_mix(100, 1);
        assert_eq!(mix.len(), 4);
        for (t, trace) in mix.iter().enumerate() {
            assert_eq!(trace.len(), 100);
            assert!(trace.iter().all(|r| r.thread == t));
        }
        // Thread regions must not overlap.
        let max0 = mix[0].iter().map(|r| r.addr.as_u64()).max().unwrap();
        let min1 = mix[1].iter().map(|r| r.addr.as_u64()).min().unwrap();
        assert!(max0 < min1);
    }
}
