//! The full-stack fuzz harness behind the `fuzz_stack` binary.
//!
//! Each case draws a random multi-threaded workload (via the in-tree
//! `proptest` strategies), a randomized [`FaultPlan`], one of the 7
//! schedulers, and one rung of the mitigation ladder (none / ecc-only /
//! full), runs the whole stack closed-loop, and asserts four invariant
//! oracles:
//!
//! 1. **no-silent-corruption** — under the full ladder the SECDED
//!    miscorrection counter stays 0: the pipeline never delivers wrong
//!    data while claiming success.
//! 2. **no-stall** — the run completes; a watchdog [`CtrlError`] (or any
//!    other controller error) is a violation.
//! 3. **conservation** — requests in == completions: quarantined rows
//!    are *remapped*, never dropped, so every submitted request must
//!    complete, and the per-thread completion counts must sum to the
//!    aggregate.
//! 4. **replay-determinism** — rebuilding the identical (trace, plan,
//!    scheduler, ladder) case and re-running yields byte-identical
//!    simulated results ([`RunReport::same_results`]).
//!
//! A failing case is shrunk by a built-in ddmin-style minimizer to a
//! minimal workload that still trips the *same* oracle, written as an
//! `ia-tracefmt` repro artifact (header seed = the fault-plan seed), and
//! reported with the full seed tuple so the exact case can be re-run.

use std::path::PathBuf;

use ia_core::SchedulerKind;
use ia_dram::DramConfig;
use ia_faults::{FaultPlan, FaultStats, FlipMask, Inject, RowSite};
use ia_memctrl::{
    run_closed_loop_with, MemRequest, MemoryController, Mitigation, RefreshMode, ReliabilityConfig,
    ReliabilityPipeline, RunReport,
};
use ia_tracefmt::TraceWriter;
use proptest::collection;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outstanding requests per thread during the closed-loop run.
const WINDOW: usize = 4;
/// Cycle budget per run — generous: fuzz workloads are ≤ a few hundred
/// requests, so hitting this means the stack wedged (oracle 2 then
/// reports the shortfall through oracle 3's conservation check if the
/// watchdog somehow stayed quiet).
const MAX_CYCLES: u64 = 20_000_000;
/// Neighbor-activation count at which RowHammer flips start rolling.
const HAMMER_THRESHOLD: u64 = 128;
/// Exposure count at which the full tier quarantines a victim row.
const QUARANTINE_THRESHOLD: u64 = 256;
/// Spare rows provisioned per bank (the remap pool).
const SPARE_ROWS: u64 = 8;
/// Codeword bits {0, 1, 2} — the `--inject-violation` mask. Three
/// persistent flips give Hamming syndrome 3 with odd overall parity, so
/// the SECDED decoder "corrects" a wrong bit and delivers wrong data: a
/// guaranteed miscorrection for oracle 1 to catch.
const MISCORRECTION_MASK: u128 = 0b111;

/// The mitigation ladder the grid sweeps.
const LADDER: [Mitigation; 3] = [Mitigation::None, Mitigation::EccOnly, Mitigation::Full];

/// Fuzz-run parameters (the `fuzz_stack` CLI surface).
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of cases to run.
    pub cases: u32,
    /// Master seed; every case derives deterministically from it.
    pub seed: u64,
    /// Directory for minimized repro artifacts.
    pub repro_dir: PathBuf,
    /// Self-test mode: wrap every injector in a saboteur that forces a
    /// miscorrection, proving the oracle + minimizer pipeline works.
    pub inject_violation: bool,
    /// Publish each case's fault seed to the process-wide replay
    /// context so controller errors carry it (the `fuzz_stack` binary
    /// turns this on; library tests leave the global alone).
    pub annotate_errors: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            cases: 64,
            seed: 0xF022_5EED,
            repro_dir: PathBuf::from("."),
            inject_violation: false,
            annotate_errors: false,
        }
    }
}

/// One minimized invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the failing case.
    pub case_idx: u32,
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// Human-readable failure detail.
    pub detail: String,
    /// Scheduler under test.
    pub scheduler: &'static str,
    /// Mitigation rung under test.
    pub mitigation: &'static str,
    /// The case's fault-plan seed.
    pub fault_seed: u64,
    /// Requests in the original failing workload.
    pub original_requests: usize,
    /// Requests after minimization.
    pub minimized_requests: usize,
    /// Where the minimized repro trace was written.
    pub repro_path: PathBuf,
}

/// Result of a fuzz run.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Cases executed (stops at the first violation).
    pub cases_run: u32,
    /// The first violation found, already minimized, if any.
    pub violation: Option<Violation>,
}

/// Probabilistic fault rates for one case, drawn once and reused for
/// every rebuild (re-replay oracle, minimizer) of that case.
#[derive(Debug, Clone, Copy)]
struct Rates {
    transient: f64,
    retention_weak: f64,
    hammer_flip: f64,
    stuck: f64,
}

/// One fully-derived fuzz case.
#[derive(Debug, Clone)]
struct Case {
    idx: u32,
    scheduler: SchedulerKind,
    mitigation: Mitigation,
    fault_seed: u64,
    rates: Rates,
    inject_violation: bool,
}

/// Derives case `idx` from the master seed: scheduler and ladder rung
/// round-robin over the 7×3 grid, everything else comes from a
/// per-case RNG.
fn make_case(opts: &FuzzOptions, idx: u32) -> (Case, Vec<Vec<MemRequest>>) {
    let mut rng = SmallRng::seed_from_u64(
        opts.seed
            .wrapping_add(u64::from(idx).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let schedulers = SchedulerKind::all();
    let scheduler = schedulers[idx as usize % schedulers.len()];
    let mitigation = if opts.inject_violation {
        // Oracle 1 only applies under the full rung; the self-test must
        // land there every time.
        Mitigation::Full
    } else {
        LADDER[(idx as usize / schedulers.len()) % LADDER.len()]
    };
    // Low rates on purpose: frequent enough to exercise the detect →
    // correct → degrade loop, sparse enough that three persistent flips
    // never pile into one codeword (which would be a *legitimate*
    // miscorrection, not a stack bug).
    let rates = Rates {
        transient: (0.0..0.008).generate(&mut rng),
        retention_weak: (0.0..0.04).generate(&mut rng),
        hammer_flip: (0.0..0.3).generate(&mut rng),
        stuck: (0.0..0.000_4).generate(&mut rng),
    };
    let fault_seed: u64 = rng.gen();
    let mut workload = draw_workload(&mut rng);
    if opts.inject_violation {
        // The saboteur fires on the first read; make sure there is one.
        if let Some(first) = workload.first_mut().and_then(|t| t.first_mut()) {
            *first = MemRequest::read(first.addr.as_u64(), first.thread);
        }
    }
    (
        Case {
            idx,
            scheduler,
            mitigation,
            fault_seed,
            rates,
            inject_violation: opts.inject_violation,
        },
        workload,
    )
}

/// Draws one multi-threaded workload from proptest strategies: 1–4
/// threads, 8–64 requests each, mixing uniform-random lines with a
/// shared pool of hot rows (repeated activations are what give
/// RowHammer exposure and retention decay something to bite on).
fn draw_workload(rng: &mut SmallRng) -> Vec<Vec<MemRequest>> {
    // 64-byte lines across a 256 MiB span.
    let line = collection::vec(0u64..(1u64 << 22), 4usize);
    let hot = line.generate(rng);
    let threads = (1usize..=4).generate(rng);
    (0..threads)
        .map(|t| {
            let picks = collection::vec(
                (any::<bool>(), 0usize..4, 0u64..(1u64 << 22), any::<bool>()),
                8usize..=64,
            )
            .generate(rng);
            picks
                .into_iter()
                .map(|(use_hot, hot_idx, cold, is_write)| {
                    let addr = if use_hot { hot[hot_idx] } else { cold } << 6;
                    if is_write {
                        MemRequest::write(addr, t)
                    } else {
                        MemRequest::read(addr, t)
                    }
                })
                .collect()
        })
        .collect()
}

/// A wrapper hook for `--inject-violation`: delegates every event to
/// the real injector but ORs [`MISCORRECTION_MASK`] into the first
/// read's flip mask as persistent bits, forcing a SECDED miscorrection.
#[derive(Debug, Clone)]
struct Saboteur {
    inner: Box<dyn Inject>,
    fired: bool,
}

impl Inject for Saboteur {
    fn on_activate(&mut self, site: &RowSite, now: u64) {
        self.inner.on_activate(site, now);
    }
    fn on_read(&mut self, site: &RowSite, word: u64, now: u64) -> FlipMask {
        let mut mask = self.inner.on_read(site, word, now);
        if !self.fired {
            self.fired = true;
            mask.bits |= MISCORRECTION_MASK;
            mask.transient &= !MISCORRECTION_MASK;
        }
        mask
    }
    fn on_write(&mut self, site: &RowSite, word: u64, now: u64) {
        self.inner.on_write(site, word, now);
    }
    fn on_refresh(&mut self, channel: usize, rank: usize, now: u64) {
        self.inner.on_refresh(channel, rank, now);
    }
    fn on_row_refresh(&mut self, site: &RowSite, now: u64) {
        self.inner.on_row_refresh(site, now);
    }
    fn stats(&self) -> FaultStats {
        self.inner.stats()
    }
    fn clone_box(&self) -> Box<dyn Inject> {
        Box::new(self.clone())
    }
}

/// Builds the case's reliability pipeline. `words_per_row = 1` mirrors
/// exp24: every injected flip lands in the column the workload reads,
/// for maximum observability per simulated cycle.
fn pipeline_for(case: &Case, config: &DramConfig) -> ReliabilityPipeline {
    let rows = config.geometry.rows_per_bank;
    let reliability = ReliabilityConfig {
        mitigation: case.mitigation,
        spare_rows_per_bank: SPARE_ROWS,
        quarantine_threshold: match case.mitigation {
            Mitigation::Full => QUARANTINE_THRESHOLD,
            _ => 0,
        },
    };
    let injector = FaultPlan::new(case.fault_seed)
        .transient(case.rates.transient)
        .retention(case.rates.retention_weak, 60_000, 8192)
        .rowhammer(HAMMER_THRESHOLD, case.rates.hammer_flip)
        .stuck(case.rates.stuck)
        .geometry(rows, 1)
        .spare_floor(rows - SPARE_ROWS)
        .build();
    let hook: Box<dyn Inject> = if case.inject_violation {
        Box::new(Saboteur {
            inner: Box::new(injector),
            fired: false,
        })
    } else {
        Box::new(injector)
    };
    ReliabilityPipeline::with_hook(reliability, hook, rows)
}

/// Runs the case once from a cold build. Errors other than controller
/// run errors (which are oracle material) are configuration bugs and
/// surface as `Err(String)`.
fn run_once(
    case: &Case,
    workload: &[Vec<MemRequest>],
) -> Result<Result<RunReport, ia_memctrl::CtrlError>, String> {
    let config = DramConfig::ddr3_1600();
    let ctrl = MemoryController::new(config.clone(), case.scheduler.build(workload.len()))
        .map_err(|e| format!("controller config: {e}"))?
        .with_refresh_mode(RefreshMode::AllBank)
        .with_reliability(pipeline_for(case, &config));
    Ok(run_closed_loop_with(ctrl, workload, WINDOW, MAX_CYCLES))
}

/// The oracle battery: runs the case and returns the first violated
/// oracle (name + detail), or `None` when all four hold.
fn check_oracles(
    case: &Case,
    workload: &[Vec<MemRequest>],
) -> Result<Option<(&'static str, String)>, String> {
    // Oracle 2: no watchdog stall (any controller error is a violation).
    let report = match run_once(case, workload)? {
        Ok(r) => r,
        Err(e) => return Ok(Some(("no-stall", format!("controller error: {e}")))),
    };
    // Oracle 3: conservation. Quarantine remaps rows, it never drops
    // requests, so completions must equal submissions exactly.
    let submitted: u64 = workload.iter().map(|t| t.len() as u64).sum();
    if report.stats.completed != submitted {
        return Ok(Some((
            "conservation",
            format!(
                "submitted {submitted} requests but {} completed",
                report.stats.completed
            ),
        )));
    }
    let per_thread: u64 = report.threads.iter().map(|t| t.completed).sum();
    if per_thread != report.stats.completed {
        return Ok(Some((
            "conservation",
            format!(
                "thread completions sum to {per_thread}, aggregate says {}",
                report.stats.completed
            ),
        )));
    }
    // Oracle 1: no silent corruption under the full ladder.
    if case.mitigation == Mitigation::Full {
        if let Some(rel) = &report.reliability {
            if rel.stats.miscorrections != 0 {
                return Ok(Some((
                    "no-silent-corruption",
                    format!(
                        "{} miscorrection(s) under the full ladder \
                         ({} corrected, {} uncorrected, {} injected)",
                        rel.stats.miscorrections,
                        rel.stats.corrected,
                        rel.stats.uncorrected,
                        rel.faults.injected()
                    ),
                )));
            }
        }
    }
    // Oracle 4: byte-identical re-replay of the same (trace, plan,
    // scheduler, ladder) tuple.
    match run_once(case, workload)? {
        Err(e) => Ok(Some((
            "replay-determinism",
            format!("re-replay errored where the first run succeeded: {e}"),
        ))),
        Ok(second) => {
            if report.same_results(&second) {
                Ok(None)
            } else {
                Ok(Some((
                    "replay-determinism",
                    format!(
                        "re-replay diverged: {} vs {} completed, {} vs {} cycles",
                        report.stats.completed,
                        second.stats.completed,
                        report.cycles,
                        second.cycles
                    ),
                )))
            }
        }
    }
}

/// Flattens a workload into `(thread, request)` pairs for the minimizer.
fn flatten(workload: &[Vec<MemRequest>]) -> Vec<(usize, MemRequest)> {
    workload
        .iter()
        .enumerate()
        .flat_map(|(t, reqs)| reqs.iter().map(move |&r| (t, r)))
        .collect()
}

/// Rebuilds per-thread traces from flattened pairs. Empty threads are
/// dropped; the closed-loop runner reassigns thread ids by position, so
/// the result is always well-formed.
fn rebuild(flat: &[(usize, MemRequest)]) -> Vec<Vec<MemRequest>> {
    let threads = flat.iter().map(|&(t, _)| t + 1).max().unwrap_or(0);
    let mut groups: Vec<Vec<MemRequest>> = vec![Vec::new(); threads];
    for &(t, r) in flat {
        groups[t].push(r);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// True when the candidate still trips the same oracle. Hard errors
/// during re-runs are treated as "did not reproduce" (conservative:
/// minimization never widens the failure).
fn reproduces(case: &Case, flat: &[(usize, MemRequest)], oracle: &'static str) -> bool {
    if flat.is_empty() {
        return false;
    }
    matches!(
        check_oracles(case, &rebuild(flat)),
        Ok(Some((o, _))) if o == oracle
    )
}

/// ddmin-style delta debugging over the flattened request list, plus a
/// final single-element sweep. Returns the smallest workload found that
/// still trips `oracle`.
fn minimize(
    case: &Case,
    workload: &[Vec<MemRequest>],
    oracle: &'static str,
) -> Vec<Vec<MemRequest>> {
    let mut flat = flatten(workload);
    let mut n = 2usize;
    while flat.len() >= 2 && n <= flat.len() {
        let chunk = flat.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < flat.len() {
            let end = (start + chunk).min(flat.len());
            let mut candidate = flat.clone();
            candidate.drain(start..end);
            if reproduces(case, &candidate, oracle) {
                flat = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= flat.len() {
                break;
            }
            n = (n * 2).min(flat.len());
        }
    }
    // Final pass: drop single requests while the failure persists.
    let mut i = 0usize;
    while flat.len() > 1 && i < flat.len() {
        let mut candidate = flat.clone();
        candidate.remove(i);
        if reproduces(case, &candidate, oracle) {
            flat = candidate;
        } else {
            i += 1;
        }
    }
    rebuild(&flat)
}

/// Writes the minimized workload as an `ia-tracefmt` artifact whose
/// header seed is the case's fault-plan seed.
fn write_repro(
    opts: &FuzzOptions,
    case: &Case,
    minimized: &[Vec<MemRequest>],
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(&opts.repro_dir)
        .map_err(|e| format!("creating {}: {e}", opts.repro_dir.display()))?;
    let path = opts
        .repro_dir
        .join(format!("fuzz-case{:04}.trace", case.idx));
    let mut w = TraceWriter::new(case.fault_seed);
    ia_memctrl::record_workload(minimized, 0, &mut w);
    let path_str = path
        .to_str()
        .ok_or_else(|| format!("repro path is not UTF-8: {}", path.display()))?;
    w.write_to_path(path_str).map_err(|e| e.to_string())?;
    Ok(path)
}

/// Runs the fuzz campaign: derives and checks cases in order, stopping
/// at (and minimizing) the first violation.
///
/// # Errors
///
/// `Err(String)` only for harness-level failures (bad DRAM config,
/// unwritable repro dir) — oracle violations are *data*, returned in
/// [`FuzzOutcome::violation`].
pub fn run_fuzz(opts: &FuzzOptions) -> Result<FuzzOutcome, String> {
    let mut cases_run = 0u32;
    for idx in 0..opts.cases {
        let (case, workload) = make_case(opts, idx);
        if opts.annotate_errors {
            ia_memctrl::set_replay_context(ia_memctrl::ReplayContext {
                trace_path: None,
                fault_seed: Some(case.fault_seed),
            });
        }
        let checked = check_oracles(&case, &workload);
        if opts.annotate_errors {
            ia_memctrl::clear_replay_context();
        }
        cases_run += 1;
        if let Some((oracle, detail)) = checked? {
            let minimized = minimize(&case, &workload, oracle);
            let repro_path = write_repro(opts, &case, &minimized)?;
            return Ok(FuzzOutcome {
                cases_run,
                violation: Some(Violation {
                    case_idx: idx,
                    oracle,
                    detail,
                    scheduler: case.scheduler.name(),
                    mitigation: case.mitigation.label(),
                    fault_seed: case.fault_seed,
                    original_requests: workload.iter().map(Vec::len).sum(),
                    minimized_requests: minimized.iter().map(Vec::len).sum(),
                    repro_path,
                }),
            });
        }
    }
    Ok(FuzzOutcome {
        cases_run,
        violation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_tracefmt::TraceReader;

    fn temp_repro_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ia-fuzz-{tag}-{}", std::process::id()))
    }

    #[test]
    fn one_grid_pass_is_green_under_the_fixed_seed() {
        let opts = FuzzOptions {
            cases: 21, // one full scheduler × ladder pass
            repro_dir: temp_repro_dir("green"),
            ..FuzzOptions::default()
        };
        let outcome = run_fuzz(&opts).unwrap_or_else(|e| panic!("harness error: {e}"));
        assert_eq!(outcome.cases_run, 21);
        assert!(
            outcome.violation.is_none(),
            "fixed-seed grid pass must be green: {:?}",
            outcome.violation
        );
    }

    #[test]
    fn injected_violation_is_caught_and_minimized() {
        let dir = temp_repro_dir("inject");
        let opts = FuzzOptions {
            cases: 4,
            repro_dir: dir.clone(),
            inject_violation: true,
            ..FuzzOptions::default()
        };
        let outcome = run_fuzz(&opts).unwrap_or_else(|e| panic!("harness error: {e}"));
        let v = outcome
            .violation
            .unwrap_or_else(|| panic!("saboteur must trip an oracle"));
        assert_eq!(v.oracle, "no-silent-corruption", "{}", v.detail);
        assert_eq!(v.case_idx, 0, "the very first case must already trip");
        assert_eq!(v.mitigation, "ecc+remap+quarantine");
        assert!(
            v.minimized_requests <= 2 && v.minimized_requests >= 1,
            "saboteur fires on the first read, so the repro must shrink \
             to at most a couple of requests, got {}",
            v.minimized_requests
        );
        assert!(v.minimized_requests <= v.original_requests);
        // The repro artifact must be a valid v1 trace carrying the
        // fault seed and the minimized requests.
        let reader = TraceReader::from_path(
            v.repro_path
                .to_str()
                .unwrap_or_else(|| panic!("utf-8 path")),
        )
        .unwrap_or_else(|e| panic!("repro must decode: {e}"));
        assert_eq!(reader.seed(), v.fault_seed);
        assert_eq!(reader.records().len(), v.minimized_requests);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_drops_empty_threads_and_keeps_order() {
        let w = vec![
            vec![MemRequest::read(0x40, 0), MemRequest::write(0x80, 0)],
            vec![MemRequest::read(0xC0, 1)],
        ];
        let flat = flatten(&w);
        assert_eq!(flat.len(), 3);
        // Drop thread 1 entirely: rebuild yields a single-thread trace.
        let only_t0: Vec<_> = flat.iter().filter(|&&(t, _)| t == 0).copied().collect();
        let rebuilt = rebuild(&only_t0);
        assert_eq!(rebuilt.len(), 1);
        assert_eq!(rebuilt[0].len(), 2);
        assert_eq!(rebuilt[0][0].addr.as_u64(), 0x40);
    }
}
