//! **E3 — Ambit bulk bitwise operations.**
//!
//! Paper claim (§IV): in-DRAM bulk bitwise execution yields large
//! throughput and energy gains over moving data to the CPU — the original
//! reports ~32x average throughput and 25-60x energy across operations.

use ia_core::Table;
use ia_dram::DramConfig;
use ia_pum::{cpu_bitwise_baseline, AmbitEngine, BitwiseOp};

use crate::ratio;

/// Aggregate outcome across operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Geometric-mean throughput gain across the seven operations.
    pub mean_throughput_gain: f64,
    /// Geometric-mean energy gain.
    pub mean_energy_gain: f64,
}

/// Computes gains at 8 MiB vectors (1 MiB in quick mode).
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let bytes = if quick { 1 << 20 } else { 8 << 20 };
    let cfg = DramConfig::ddr3_1600();
    let engine = AmbitEngine::new(&cfg);
    let mut tp = 1.0f64;
    let mut en = 1.0f64;
    let ops = BitwiseOp::all();
    for op in ops {
        let in_dram_ns = bytes as f64 / engine.throughput_gb_s(op);
        let (cpu_ns, cpu_pj) = cpu_bitwise_baseline(&cfg, op, bytes);
        tp *= cpu_ns / in_dram_ns;
        en *= cpu_pj / (engine.energy_pj_per_byte(op) * bytes as f64);
    }
    Outcome {
        mean_throughput_gain: tp.powf(1.0 / ops.len() as f64),
        mean_energy_gain: en.powf(1.0 / ops.len() as f64),
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let bytes: u64 = if quick { 1 << 20 } else { 8 << 20 };
    let cfg = DramConfig::ddr3_1600();
    let engine = AmbitEngine::new(&cfg);
    let mut table = Table::new(&[
        "op",
        "AAPs/row",
        "Ambit GB/s",
        "CPU GB/s",
        "throughput gain",
        "energy gain",
    ]);
    for op in BitwiseOp::all() {
        let in_dram = engine.throughput_gb_s(op);
        let (cpu_ns, cpu_pj) = cpu_bitwise_baseline(&cfg, op, bytes);
        let cpu_gbps = bytes as f64 / cpu_ns;
        let energy_gain = cpu_pj / (engine.energy_pj_per_byte(op) * bytes as f64);
        table.row(&[
            op.name().to_owned(),
            op.aap_count().to_string(),
            format!("{in_dram:.1}"),
            format!("{cpu_gbps:.1}"),
            ratio(in_dram, cpu_gbps),
            format!("{energy_gain:.1}x"),
        ]);
    }
    let o = outcome(quick);
    format!(
        "E3: Ambit in-DRAM bulk bitwise ops, {} MiB vectors, {} banks in parallel\n\
         (paper: ~32x average throughput, 25-60x energy vs processor-centric)\n{table}\n\
         geomean: {:.1}x throughput, {:.1}x energy\n",
        bytes >> 20,
        engine.parallelism(),
        o.mean_throughput_gain,
        o.mean_energy_gain
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp03_ambit", quick)
        .param("vector_bytes", if quick { 1u64 << 20 } else { 8 << 20 })
        .metric("mean_throughput_gain", o.mean_throughput_gain)
        .metric("mean_energy_gain", o.mean_energy_gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_match_paper_shape() {
        let o = outcome(true);
        assert!(
            o.mean_throughput_gain > 10.0,
            "mean throughput gain {:.1} should be tens of x",
            o.mean_throughput_gain
        );
        assert!(o.mean_energy_gain > 10.0);
    }

    #[test]
    fn table_lists_all_ops() {
        let s = run(true);
        for op in BitwiseOp::all() {
            assert!(s.contains(op.name()));
        }
    }
}
