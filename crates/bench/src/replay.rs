//! The bench record/replay session: the CLI's `--record-trace` /
//! `--replay-trace` plumbing.
//!
//! Workload generation is intercepted at the mix-construction sites
//! ([`crate::mixes::interference_mix`], exp24's fault workload), which
//! all run **serially, before any parallel fan-out** — so recording and
//! replaying are deterministic at every `--threads` setting, and the
//! replayed run's canonical report is byte-identical to the generated
//! run's. The default path costs one relaxed atomic load per workload
//! construction.
//!
//! One session file can hold several workloads (an experiment may build
//! more than one): each [`intercept`] call is a *segment*, tagged via
//! the trace records' `at` field. On replay, segments are handed back in
//! call order; if the experiment asks for more segments than the file
//! holds (or the file came from a different experiment), the session
//! falls back to generating — the workload seed makes that equivalent —
//! and says so on stderr.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

use ia_memctrl::MemRequest;
use ia_tracefmt::{TraceError, TraceReader, TraceWriter};

const OFF: u8 = 0;
const RECORD: u8 = 1;
const REPLAY: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(OFF);
static STATE: Mutex<State> = Mutex::new(State::empty());

struct State {
    /// Record mode: segments captured so far, with the seed of the first.
    recorded: Vec<Vec<Vec<MemRequest>>>,
    first_seed: u64,
    /// Replay mode: decoded segments and the next one to hand out.
    segments: Vec<Vec<Vec<MemRequest>>>,
    next: usize,
}

impl State {
    const fn empty() -> Self {
        State {
            recorded: Vec::new(),
            first_seed: 0,
            segments: Vec::new(),
            next: 0,
        }
    }
}

fn state() -> std::sync::MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms record mode: every subsequent [`intercept`] captures its
/// workload. Seal with [`finish_record`].
pub fn start_record() {
    *state() = State::empty();
    MODE.store(RECORD, Ordering::Release);
}

/// Loads `path` and arms replay mode: subsequent [`intercept`] calls
/// return the file's segments instead of generating.
///
/// # Errors
///
/// Any [`TraceError`] from decoding the artifact.
pub fn start_replay(path: &str) -> Result<(), TraceError> {
    let reader = TraceReader::from_path(path)?;
    // Split the flat record list into segments on the `at` tag (see
    // module docs), preserving file order within each.
    let mut segments: Vec<Vec<Vec<MemRequest>>> = Vec::new();
    let mut current: Vec<ia_tracefmt::TraceRecord> = Vec::new();
    let mut current_at: Option<u64> = None;
    for rec in reader.records() {
        if current_at.is_some_and(|at| at != rec.at) {
            segments.push(ia_memctrl::workload_from_records(&current));
            current.clear();
        }
        current_at = Some(rec.at);
        current.push(*rec);
    }
    if !current.is_empty() {
        segments.push(ia_memctrl::workload_from_records(&current));
    }
    let mut s = state();
    *s = State::empty();
    s.segments = segments;
    MODE.store(REPLAY, Ordering::Release);
    ia_memctrl::set_replay_context(ia_memctrl::ReplayContext {
        trace_path: Some(path.to_owned()),
        fault_seed: None,
    });
    Ok(())
}

/// The interception point, called by every workload-construction site:
/// returns `make()` when the session is off or recording (capturing a
/// copy in the latter case), or the next recorded segment when
/// replaying.
pub fn intercept(seed: u64, make: impl FnOnce() -> Vec<Vec<MemRequest>>) -> Vec<Vec<MemRequest>> {
    match MODE.load(Ordering::Acquire) {
        RECORD => {
            let workload = make();
            let mut s = state();
            if s.recorded.is_empty() {
                s.first_seed = seed;
            }
            s.recorded.push(workload.clone());
            workload
        }
        REPLAY => {
            let mut s = state();
            if let Some(segment) = s.segments.get(s.next) {
                let segment = segment.clone();
                s.next += 1;
                segment
            } else {
                drop(s);
                eprintln!(
                    "warning: replay trace has no segment for this workload \
                     (seed {seed:#x}); generating instead"
                );
                make()
            }
        }
        _ => make(),
    }
}

/// Seals a record session into the artifact at `path` and disarms the
/// session. The file's header seed is the first captured workload's
/// generator seed.
///
/// # Errors
///
/// [`TraceError::Io`] if the file cannot be written.
pub fn finish_record(path: &str) -> Result<(), TraceError> {
    MODE.store(OFF, Ordering::Release);
    let s = std::mem::replace(&mut *state(), State::empty());
    let mut w = TraceWriter::new(s.first_seed);
    for (i, segment) in s.recorded.iter().enumerate() {
        ia_memctrl::record_workload(segment, i as u64, &mut w);
    }
    w.write_to_path(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the global session (tests run in parallel threads
    // within one process), so the whole lifecycle is exercised here.
    #[test]
    fn record_then_replay_round_trips_segments_in_order() {
        let dir = std::env::temp_dir().join("ia_bench_replay_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.trace");
        let path = path.to_str().unwrap();

        let seg_a = vec![
            vec![MemRequest::read(0x1000, 0), MemRequest::write(0x1040, 0)],
            vec![MemRequest::read(0x2000, 1)],
        ];
        let seg_b = vec![vec![MemRequest::write(0x4000, 0)]];

        // Off: intercept is pass-through.
        assert_eq!(intercept(1, || seg_a.clone()), seg_a);

        start_record();
        assert_eq!(intercept(0xAA, || seg_a.clone()), seg_a);
        assert_eq!(intercept(0xBB, || seg_b.clone()), seg_b);
        finish_record(path).unwrap();

        let reader = TraceReader::from_path(path).unwrap();
        assert_eq!(reader.seed(), 0xAA, "header carries the first seed");

        start_replay(path).unwrap();
        assert_eq!(
            ia_memctrl::replay_context().and_then(|c| c.trace_path),
            Some(path.to_owned())
        );
        // Replay ignores the generator entirely.
        assert_eq!(intercept(0xAA, || unreachable!()), seg_a);
        assert_eq!(intercept(0xBB, || unreachable!()), seg_b);
        // Exhausted: falls back to generating.
        assert_eq!(intercept(0xCC, || seg_b.clone()), seg_b);

        // Disarm and clean up the global state for other tests.
        MODE.store(OFF, Ordering::Release);
        *state() = State::empty();
        ia_memctrl::clear_replay_context();
        std::fs::remove_file(path).unwrap();
    }
}
