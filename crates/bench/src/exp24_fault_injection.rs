//! **E24 — deterministic fault injection and the mitigation ladder.**
//!
//! Paper claim (§IV): technology scaling hands the memory controller a
//! reliability problem — retention failures, RowHammer disturbance,
//! transient bus errors — that only *intelligent* mitigation solves
//! economically. This experiment closes the loop built across
//! `ia-faults` → `ia-dram` → `ia-memctrl`: a seed-deterministic fault
//! process drives a read-heavy workload (periodic scans plus a
//! double-sided aggressor pair) while the controller runs one of three
//! mitigation tiers:
//!
//! * **none** — flips reach the requester: silent data corruption;
//! * **ecc-only** — SECDED corrects singles and retries transients, but
//!   never repairs the array, so persistent flips accumulate into
//!   uncorrectable pairs;
//! * **ecc+remap+quarantine** — the full detect → correct → degrade
//!   loop: scrub-on-correct, RAIDR-bin refresh escalation, spare-row
//!   remap on uncorrectable, victim quarantine on hammer exposure.
//!
//! The sweep crosses fault-rate multipliers with the three tiers. The
//! headline: at the highest rate the intelligent tier holds the
//! uncorrected-read rate to a small fraction (≤ 1/10) of the
//! unprotected baseline. Every cell is an independent simulation; the
//! sweep fans out on `ia-par` and the report is byte-identical at every
//! `--threads` setting.

use ia_core::Table;
use ia_dram::{AddressMapping, DramConfig, Location};
use ia_faults::FaultPlan;
use ia_memctrl::{
    run_closed_loop_with, Fcfs, MemRequest, MemoryController, Mitigation, RefreshMode,
    ReliabilityConfig, ReliabilityPipeline,
};
use ia_par::{auto_threads, par_map};
use ia_sim::SnapshotState;

use crate::pct;

/// Aggressor rows (bank 0): double-sided hammer around the victim.
const AGGRESSOR_LOW: u64 = 1000;
const AGGRESSOR_HIGH: u64 = 1002;
/// The victim row between the aggressors, also part of the scan set.
const VICTIM: u64 = 1001;
/// Neighbor-activation count at which RowHammer flips start rolling.
const HAMMER_THRESHOLD: u64 = 128;
/// Neighbor-activation count at which the full tier quarantines; below
/// the flip threshold times the exposure a sweep accumulates, so the
/// victim is retired before disturbance does real damage.
const QUARANTINE_THRESHOLD: u64 = 256;

/// One cell of the sweep, for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Fault-rate multiplier.
    pub rate: f64,
    /// Mitigation tier.
    pub mitigation: Mitigation,
    /// Faults the model injected.
    pub injected: u64,
    /// Reads corrected by ECC.
    pub corrected: u64,
    /// Reads that delivered wrong data.
    pub uncorrected: u64,
    /// Fraction of reads that delivered wrong data.
    pub uncorrected_rate: f64,
    /// Rows retired to spares after uncorrectable errors.
    pub remaps: u64,
    /// Victim rows quarantined on hammer exposure.
    pub quarantines: u64,
    /// Targeted refreshes for escalated (retention-weak) rows.
    pub escalated_refreshes: u64,
}

/// Sweep dimensions: fault-rate multipliers × mitigation tiers.
fn rates(quick: bool) -> &'static [f64] {
    if quick {
        &[1.0, 16.0]
    } else {
        &[1.0, 4.0, 16.0]
    }
}

const TIERS: [Mitigation; 3] = [Mitigation::None, Mitigation::EccOnly, Mitigation::Full];

/// Physical address of (bank, row, column 0) under the default mapping.
fn addr(config: &DramConfig, bank: usize, row: u64) -> u64 {
    let loc = Location {
        channel: 0,
        rank: 0,
        bank_group: 0,
        bank,
        subarray: config.geometry.subarray_of_row(row),
        row,
        column: 0,
    };
    AddressMapping::RowInterleaved
        .encode(&loc, &config.geometry)
        .as_u64()
}

/// The workload: `sweeps` passes, each a scan over `scan_rows` distinct
/// rows (retention exposure: a weak row whose limit is shorter than the
/// revisit period decays between visits) followed by a double-sided
/// hammer burst on the aggressor pair. Reads only — repair traffic is
/// the pipeline's job, which is exactly what the tiers differ in.
fn trace(config: &DramConfig, quick: bool) -> Vec<MemRequest> {
    let (sweeps, scan_rows, hammer_pairs) = if quick { (4, 192, 400) } else { (6, 384, 800) };
    let mut out = Vec::new();
    for _ in 0..sweeps {
        for i in 0..scan_rows {
            // Spread over all 8 banks, rows spaced by 4 so scan rows are
            // never each other's hammer neighbors.
            let bank = i % 8;
            let row = 64 + (i as u64 / 8) * 4;
            out.push(MemRequest::read(addr(config, bank, row), 0));
        }
        // The victim is scanned too: hammer flips must be *read* to count.
        out.push(MemRequest::read(addr(config, 0, VICTIM), 0));
        for _ in 0..hammer_pairs {
            out.push(MemRequest::read(addr(config, 0, AGGRESSOR_LOW), 0));
            out.push(MemRequest::read(addr(config, 0, AGGRESSOR_HIGH), 0));
        }
    }
    out
}

/// The fault process for one rate multiplier. The seed depends only on
/// the rate, so all three tiers face the *same* fault pattern and differ
/// only in how they respond — the comparison the ladder needs.
fn plan(rate: f64, rate_idx: usize) -> FaultPlan {
    FaultPlan::new(0xE24 + rate_idx as u64)
        .transient(0.004 * rate)
        .retention(0.02 * rate, 60_000, 8192)
        .rowhammer(HAMMER_THRESHOLD, (0.25 * rate).min(1.0))
        .stuck(0.000_2 * rate)
}

/// Runs one sweep cell from a warm-forked base controller and the
/// shared workload trace. The optional `ia-trace` log (captured when
/// the bench CLI's `--trace`/`--profile` session is on) rides back with
/// the cell so [`cells`] can submit it on the calling thread in input
/// order.
fn cell(
    base: MemoryController,
    config: &DramConfig,
    trace: &[Vec<MemRequest>],
    rate: f64,
    rate_idx: usize,
    mitigation: Mitigation,
) -> (Cell, Option<ia_trace::TraceLog>) {
    let reliability = ReliabilityConfig {
        mitigation,
        spare_rows_per_bank: 8,
        quarantine_threshold: match mitigation {
            Mitigation::Full => QUARANTINE_THRESHOLD,
            _ => 0,
        },
    };
    // words_per_row = 1: every injected flip lands in column 0, the
    // column the workload reads — maximum observability per simulated
    // cycle without changing the relative tier comparison. Built via
    // `with_hook` because `ReliabilityPipeline::new` would derive the
    // device's real 128 words per row instead.
    let rows = config.geometry.rows_per_bank;
    let injector = plan(rate, rate_idx)
        .geometry(rows, 1)
        .spare_floor(rows - reliability.spare_rows_per_bank)
        .build();
    let pipeline = ReliabilityPipeline::with_hook(reliability, Box::new(injector), rows);
    let ctrl = base.with_reliability(pipeline);
    let mut report = run_closed_loop_with(ctrl, trace, 4, 50_000_000)
        // lint: allow(P001, the trace is non-empty by construction)
        .expect("run completes");
    let log = report.trace.take();
    // lint: allow(P001, with_reliability attached a pipeline two statements up)
    let rel = report.reliability.expect("pipeline attached");
    let cell = Cell {
        rate,
        mitigation,
        injected: rel.faults.injected(),
        corrected: rel.stats.corrected,
        uncorrected: rel.stats.uncorrected,
        uncorrected_rate: rel.stats.uncorrected_rate(),
        remaps: rel.stats.remaps,
        quarantines: rel.stats.quarantines,
        escalated_refreshes: rel.stats.escalated_refreshes,
    };
    (cell, log)
}

/// Runs the full sweep. Cells are independent simulations; `par_map`
/// returns them in input order, so results — and any submitted traces —
/// are identical at any thread count. Memoized: `run` and `report`
/// share one sweep per process.
#[must_use]
pub fn cells(quick: bool) -> Vec<Cell> {
    static CACHE: crate::report::OutcomeCache<Vec<Cell>> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || compute_cells(quick))
}

fn compute_cells(quick: bool) -> Vec<Cell> {
    // Warm-fork: the DRAM config, the workload trace, and the base
    // controller (scheduler + refresh mode) are identical across every
    // cell — build and decode them once, snapshot the warm controller,
    // and fork one copy per cell. Only the reliability pipeline (the
    // swept variable) is built per fork, so the reports stay
    // byte-identical to the build-everything-per-cell path.
    let config = DramConfig::ddr3_1600();
    let base = MemoryController::new(config.clone(), Box::new(Fcfs::new()))
        // lint: allow(P001, ddr3_1600 is a valid preset)
        .expect("valid config")
        .with_refresh_mode(RefreshMode::AllBank);
    // Routed through the record/replay session so `--record-trace` /
    // `--replay-trace` cover the fault-injection workload too.
    let shared_trace = crate::replay::intercept(0xE24, || vec![trace(&config, quick)]);
    let jobs: Vec<(usize, f64, Mitigation, MemoryController)> = rates(quick)
        .iter()
        .enumerate()
        .flat_map(|(i, &r)| TIERS.iter().map(move |&m| (i, r, m)))
        .map(|(i, r, m)| (i, r, m, base.fork()))
        .collect();
    let runs = par_map(auto_threads(), jobs, |(i, r, m, ctrl)| {
        cell(ctrl, &config, &shared_trace, r, i, m)
    });
    runs.into_iter()
        .map(|(cell, log)| {
            if let Some(log) = log {
                ia_trace::submit(log.prefixed(&format!(
                    "{:.0}x-{}",
                    cell.rate,
                    cell.mitigation.label()
                )));
            }
            cell
        })
        .collect()
}

/// Headline numbers at the highest swept rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Uncorrected-read rate with no mitigation.
    pub baseline_rate: f64,
    /// Uncorrected-read rate with the full intelligent tier.
    pub mitigated_rate: f64,
}

/// Extracts the headline comparison from sweep results.
#[must_use]
pub fn outcome(cells: &[Cell]) -> Outcome {
    let max_rate = cells.iter().map(|c| c.rate).fold(0.0, f64::max);
    let at = |m: Mitigation| {
        cells
            .iter()
            .find(|c| c.rate == max_rate && c.mitigation == m)
            // lint: allow(P001, the sweep crosses every rate with every tier)
            .expect("cell present")
            .uncorrected_rate
    };
    Outcome {
        baseline_rate: at(Mitigation::None),
        mitigated_rate: at(Mitigation::Full),
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let cells = cells(quick);
    let mut table = Table::new(&[
        "fault rate",
        "mitigation",
        "injected",
        "corrected",
        "uncorrected",
        "uncorrected rate",
        "remaps",
        "quarantines",
    ]);
    for c in &cells {
        table.row(&[
            format!("{:.0}x", c.rate),
            c.mitigation.label().to_owned(),
            c.injected.to_string(),
            c.corrected.to_string(),
            c.uncorrected.to_string(),
            pct(c.uncorrected_rate),
            c.remaps.to_string(),
            c.quarantines.to_string(),
        ]);
    }
    let o = outcome(&cells);
    format!(
        "E24: fault injection vs. the mitigation ladder (retention + RowHammer + transients)\n\
         (paper shape: intelligent mitigation holds uncorrected reads near zero where the\n\
         unprotected baseline collapses)\n{table}\n\
         headline: at the highest fault rate, ecc+remap+quarantine delivers {} uncorrected reads\n\
         vs {} unprotected — {}\n",
        pct(o.mitigated_rate),
        pct(o.baseline_rate),
        if o.mitigated_rate > 0.0 {
            format!("a {:.0}x reduction", o.baseline_rate / o.mitigated_rate)
        } else {
            "every uncorrected read eliminated".to_string()
        },
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let cells = cells(quick);
    let mut rep = crate::report::ExperimentReport::new("exp24_fault_injection", quick)
        .param("rates", format!("{:?}", rates(quick)))
        .param("hammer_threshold", HAMMER_THRESHOLD)
        .param("quarantine_threshold", QUARANTINE_THRESHOLD)
        .columns(&[
            "rate",
            "mitigation",
            "injected",
            "corrected",
            "uncorrected",
            "uncorrected_rate",
            "remaps",
            "quarantines",
            "escalated_refreshes",
        ]);
    for c in &cells {
        let key = format!(
            "r{:.0}_{}",
            c.rate,
            match c.mitigation {
                Mitigation::None => "none",
                Mitigation::EccOnly => "ecc",
                Mitigation::Full => "full",
            }
        );
        rep = rep
            .metric(&format!("{key}_injected"), c.injected as f64)
            .metric(&format!("{key}_corrected"), c.corrected as f64)
            .metric(&format!("{key}_uncorrected"), c.uncorrected as f64)
            .metric(&format!("{key}_uncorrected_rate"), c.uncorrected_rate)
            .metric(&format!("{key}_remaps"), c.remaps as f64)
            .metric(&format!("{key}_quarantines"), c.quarantines as f64)
            .row(&[
                format!("{:.0}x", c.rate),
                c.mitigation.label().to_owned(),
                c.injected.to_string(),
                c.corrected.to_string(),
                c.uncorrected.to_string(),
                format!("{:.6}", c.uncorrected_rate),
                c.remaps.to_string(),
                c.quarantines.to_string(),
                c.escalated_refreshes.to_string(),
            ]);
    }
    let o = outcome(&cells);
    rep.metric("baseline_uncorrected_rate", o.baseline_rate)
        .metric("mitigated_uncorrected_rate", o.mitigated_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intelligent_mitigation_beats_baseline_by_10x() {
        let o = outcome(&cells(true));
        assert!(
            o.baseline_rate > 0.01,
            "unprotected baseline should visibly collapse, got {:.4}",
            o.baseline_rate
        );
        assert!(
            o.mitigated_rate <= o.baseline_rate / 10.0,
            "full tier ({:.5}) must hold uncorrected reads to <= 1/10th of baseline ({:.5})",
            o.mitigated_rate,
            o.baseline_rate
        );
    }

    #[test]
    fn ladder_is_monotone_at_the_highest_rate() {
        let cells = cells(true);
        let max_rate = cells.iter().map(|c| c.rate).fold(0.0, f64::max);
        let at = |m: Mitigation| {
            cells
                .iter()
                .find(|c| c.rate == max_rate && c.mitigation == m)
                .unwrap()
                .uncorrected_rate
        };
        assert!(at(Mitigation::EccOnly) < at(Mitigation::None));
        assert!(at(Mitigation::Full) <= at(Mitigation::EccOnly));
    }

    #[test]
    fn full_tier_actually_degrades_gracefully() {
        let cells = cells(true);
        let full: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.mitigation == Mitigation::Full)
            .collect();
        assert!(
            full.iter().any(|c| c.quarantines > 0),
            "hammer exposure should trip quarantine: {full:?}"
        );
        assert!(
            full.iter().any(|c| c.escalated_refreshes > 0),
            "corrected retention errors should escalate refresh: {full:?}"
        );
    }

    #[test]
    fn report_carries_the_ladder() {
        let rep = report(true);
        assert!(rep.metric_value("baseline_uncorrected_rate").is_some());
        assert!(rep.metric_value("mitigated_uncorrected_rate").is_some());
        assert_eq!(rep.rows.len(), rates(true).len() * TIERS.len());
        let s = run(true);
        assert!(s.contains("ecc+remap+quarantine"));
    }
}
