//! **E2 — RowClone bulk copy/initialization.**
//!
//! Paper claim (§IV): minimally changing DRAM enables "fast and
//! energy-efficient bulk data copy and initialization" — the original
//! reports ≈11x latency and ≈74x energy reduction for in-subarray copy.

use ia_core::Table;
use ia_dram::{DramConfig, DramModule, PhysAddr};
use ia_pum::{bulk_copy, CopyMode, CopyReport};

use crate::ratio;

/// Per-size results for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// FPM latency speedup over CPU copy at the largest size.
    pub fpm_speedup: f64,
    /// FPM energy reduction over CPU copy at the largest size.
    pub fpm_energy_gain: f64,
    /// PSM latency speedup over CPU copy.
    pub psm_speedup: f64,
}

fn fresh() -> DramModule {
    DramModule::new(DramConfig::ddr3_1600()).expect("preset valid")
}

/// Same-bank consecutive-row byte stride under the default mapping.
fn row_stride(d: &DramModule) -> u64 {
    let g = d.config().geometry;
    g.row_bytes * (g.banks_per_group * g.bank_groups * g.ranks * g.channels) as u64
}

fn copy(mode: CopyMode, bytes: u64) -> CopyReport {
    let mut d = fresh();
    let stride = row_stride(&d);
    let dst = match mode {
        CopyMode::Psm => PhysAddr::new(8192), // a different bank
        _ => PhysAddr::new(stride),           // next row, same bank+subarray
    };
    bulk_copy(&mut d, PhysAddr::new(0), dst, bytes, mode).expect("valid copy")
}

/// Computes the headline outcome at 1 MiB (64 KiB in quick mode).
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let bytes = if quick { 64 << 10 } else { 1 << 20 };
    let fpm = copy(CopyMode::Fpm, bytes);
    let psm = copy(CopyMode::Psm, bytes);
    let cpu = copy(CopyMode::Cpu, bytes);
    Outcome {
        fpm_speedup: cpu.ns / fpm.ns,
        fpm_energy_gain: cpu.energy_pj / fpm.energy_pj,
        psm_speedup: cpu.ns / psm.ns,
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let sizes: &[u64] = if quick {
        &[4 << 10, 64 << 10]
    } else {
        &[4 << 10, 64 << 10, 1 << 20, 16 << 20]
    };
    let mut table = Table::new(&[
        "size",
        "CPU (us, nJ)",
        "FPM (us, nJ)",
        "LISA (us, nJ)",
        "PSM (us, nJ)",
        "FPM speedup",
        "FPM energy gain",
    ]);
    for &bytes in sizes {
        let cpu = copy(CopyMode::Cpu, bytes);
        let fpm = copy(CopyMode::Fpm, bytes);
        let lisa = {
            let mut d = fresh();
            let stride = row_stride(&d);
            // Destination 8 subarrays away.
            bulk_copy(
                &mut d,
                PhysAddr::new(0),
                PhysAddr::new(8 * 512 * stride),
                bytes,
                CopyMode::Lisa,
            )
            .expect("valid lisa copy")
        };
        let psm = copy(CopyMode::Psm, bytes);
        let cell = |r: &CopyReport| format!("{:.2}, {:.0}", r.ns / 1000.0, r.energy_pj / 1000.0);
        table.row(&[
            format!("{} KiB", bytes >> 10),
            cell(&cpu),
            cell(&fpm),
            cell(&lisa),
            cell(&psm),
            ratio(cpu.ns, fpm.ns),
            ratio(cpu.energy_pj, fpm.energy_pj),
        ]);
    }
    let o = outcome(quick);
    format!(
        "E2: RowClone bulk copy (paper: ~11x latency, ~74x energy vs CPU copy)\n{table}\n\
         headline: FPM {:.1}x faster, {:.0}x less energy; PSM {:.1}x faster\n",
        o.fpm_speedup, o.fpm_energy_gain, o.psm_speedup
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp02_rowclone", quick)
        .metric("fpm_speedup", o.fpm_speedup)
        .metric("fpm_energy_gain", o.fpm_energy_gain)
        .metric("psm_speedup", o.psm_speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpm_reproduces_paper_shape() {
        let o = outcome(true);
        assert!(
            o.fpm_speedup > 8.0,
            "FPM speedup {:.1} should be ~11x",
            o.fpm_speedup
        );
        assert!(
            o.fpm_energy_gain > 30.0,
            "FPM energy gain {:.0} should be tens of x",
            o.fpm_energy_gain
        );
        assert!(o.psm_speedup > 1.0 && o.psm_speedup < o.fpm_speedup);
    }

    #[test]
    fn table_contains_all_modes() {
        let s = run(true);
        for m in ["CPU", "FPM", "LISA", "PSM"] {
            assert!(s.contains(m));
        }
    }
}
