//! **E4 — Self-optimizing (RL) memory controller.**
//!
//! Paper claim (§IV, Data-Driven): reinforcement-learning controllers
//! "can not only improve performance and efficiency under a wide variety
//! of conditions and workloads but also reduce the designer's burden"
//! (Ipek+, ISCA 2008 — ≈15-20% over FR-FCFS in their setup; crucially,
//! the learned policy must leave the naive fixed policy far behind).

use ia_core::Table;
use ia_dram::DramConfig;
use ia_memctrl::{
    run_closed_loop_with, Fcfs, FrFcfs, MemoryController, RlScheduler, RlSchedulerConfig, Scheduler,
};
use ia_sim::SnapshotState;

use crate::mixes::interference_mix;
use crate::ratio;

/// Headline outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// RL throughput relative to FCFS (requests per kilo-cycle ratio).
    pub rl_vs_fcfs: f64,
    /// RL throughput relative to FR-FCFS.
    pub rl_vs_frfcfs: f64,
}

/// The scheduler-independent warm substrate every run in this experiment
/// forks from ([`SnapshotState`]): one controller construction, one
/// fork per run, no cold re-warm. A fork with a swapped policy is
/// bit-identical to a cold-built controller (see
/// [`MemoryController::with_scheduler`]).
fn warm_substrate() -> MemoryController {
    MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new()))
        // lint: allow(P001, ddr3_1600 is a valid preset)
        .expect("valid config")
}

/// The FCFS / FR-FCFS / RL throughputs shared by the table and the
/// headline ratios (memoized: each scheduler simulates once per
/// process, per `quick` flag).
fn baseline_throughputs(quick: bool) -> (f64, f64, f64) {
    static CACHE: crate::report::OutcomeCache<(f64, f64, f64)> = crate::report::OutcomeCache::new();
    CACHE.get_or_compute(quick, || {
        let n = if quick { 400 } else { 4000 };
        let traces = interference_mix(n, 7);
        let warm = warm_substrate();
        let throughput_of = |scheduler: Box<dyn Scheduler>| {
            run_closed_loop_with(
                warm.fork().with_scheduler(scheduler),
                &traces,
                8,
                200_000_000,
            )
            // lint: allow(P001, interference_mix traces are non-empty by construction)
            .expect("run completes")
            .throughput_rpkc()
        };
        (
            throughput_of(Box::new(Fcfs::new())),
            throughput_of(Box::new(FrFcfs::new())),
            throughput_of(Box::new(RlScheduler::new(RlSchedulerConfig::default()))),
        )
    })
}

/// Computes the outcome.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let (fcfs, frfcfs, rl) = baseline_throughputs(quick);
    Outcome {
        rl_vs_fcfs: rl / fcfs,
        rl_vs_frfcfs: rl / frfcfs,
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let n = if quick { 400 } else { 4000 };
    let mut table = Table::new(&["scheduler", "req/kcycle", "vs FCFS"]);
    let (fcfs, frfcfs, rl_tp) = baseline_throughputs(quick);
    for (name, tp) in [
        ("FCFS", fcfs),
        ("FR-FCFS", frfcfs),
        ("RL (self-optimizing)", rl_tp),
    ] {
        table.row(&[name.to_owned(), format!("{tp:.2}"), ratio(tp, fcfs)]);
    }

    // Learning curve: the same agent (shared Q-table) across consecutive
    // workload segments — throughput should not degrade, and typically
    // rises as the policy converges.
    let mut curve = Table::new(&["segment", "RL req/kcycle"]);
    let rl = std::sync::Arc::new(std::sync::Mutex::new(RlScheduler::new(
        RlSchedulerConfig::default(),
    )));
    let warm = warm_substrate();
    let segments = if quick { 3 } else { 6 };
    for seg in 0..segments {
        let traces = interference_mix(n / 2, 100 + seg as u64);
        let ctrl = warm.fork().with_scheduler(Box::new(SharedRl(rl.clone())));
        let tp = run_closed_loop_with(ctrl, &traces, 8, 200_000_000)
            // lint: allow(P001, interference_mix traces are non-empty by construction)
            .expect("run completes")
            .throughput_rpkc();
        curve.row(&[format!("{seg}"), format!("{tp:.2}")]);
    }
    let o = outcome(quick);
    format!(
        "E4: self-optimizing memory controller (paper: RL ≈ 15-20% over FR-FCFS-class fixed policies)\n\
         {table}\n\nRL learning curve across workload segments (same agent, continuing to learn):\n{curve}\n\
         headline: RL/FCFS = {:.2}, RL/FR-FCFS = {:.2}\n",
        o.rl_vs_fcfs, o.rl_vs_frfcfs
    )
}

/// A scheduler handle that shares one learning agent across several runs
/// (the harness takes ownership of its scheduler per run). `Arc<Mutex>`
/// rather than `Rc<RefCell>` because `Scheduler` is `Send`; the runs are
/// serial, so the lock is never contended.
#[derive(Debug)]
struct SharedRl(std::sync::Arc<std::sync::Mutex<RlScheduler>>);

impl SharedRl {
    fn agent(&self) -> std::sync::MutexGuard<'_, RlScheduler> {
        // lint: allow(P001, single-threaded use - the lock cannot be poisoned)
        self.0.lock().expect("uncontended")
    }
}

impl ia_memctrl::Scheduler for SharedRl {
    fn name(&self) -> &'static str {
        "RL (self-optimizing)"
    }
    fn clone_box(&self) -> Box<dyn ia_memctrl::Scheduler> {
        // A "clone" shares the same live agent: that is the type's point.
        Box::new(SharedRl(self.0.clone()))
    }
    fn view_mode(&self) -> ia_memctrl::ViewMode {
        self.agent().view_mode()
    }
    fn select(
        &mut self,
        queue: &ia_memctrl::RequestQueue,
        view: &ia_memctrl::IssueView,
    ) -> Option<ia_memctrl::ReqId> {
        self.agent().select(queue, view)
    }
    fn on_issue(&mut self, column: bool, now: ia_dram::Cycle) {
        self.agent().on_issue(column, now);
    }
    fn on_complete(&mut self, c: &ia_memctrl::Completed, now: ia_dram::Cycle) {
        self.agent().on_complete(c, now);
    }
    fn on_tick(&mut self, now: ia_dram::Cycle) {
        self.agent().on_tick(now);
    }
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp04_rl_memctrl", quick)
        .metric("rl_vs_fcfs", o.rl_vs_fcfs)
        .metric("rl_vs_frfcfs", o.rl_vs_frfcfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rl_beats_fcfs_and_tracks_frfcfs() {
        let o = outcome(true);
        assert!(
            o.rl_vs_fcfs > 1.02,
            "RL must beat naive FCFS, got {:.3}",
            o.rl_vs_fcfs
        );
        assert!(
            o.rl_vs_frfcfs > 0.9,
            "RL must be competitive with FR-FCFS, got {:.3}",
            o.rl_vs_frfcfs
        );
    }

    #[test]
    fn report_renders() {
        let s = run(true);
        assert!(s.contains("FR-FCFS"));
        assert!(s.contains("learning curve"));
    }
}
