//! **E9 — Pointer chasing in 3D-stacked memory.**
//!
//! Paper claim (§IV): PNM accelerates "pointer-chasing-intensive
//! workloads" (Hsieh+, ICCD 2016) — dependent loads collapse to the
//! internal latency, and vault-parallel walkers scale past the host's
//! outstanding-miss limit.

use ia_core::Table;
use ia_pnm::{concurrent_traversals, traverse_host, traverse_pnm, LinkedChain, StackConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::ratio;

/// Outcome for assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Single-stream speedup (latency-ratio bound).
    pub single_stream_speedup: f64,
    /// 64-stream speedup (vault parallelism).
    pub multi_stream_speedup: f64,
}

/// Computes the outcome.
#[must_use]
pub fn outcome(quick: bool) -> Outcome {
    let hops = if quick { 2_000 } else { 100_000 };
    let stack = StackConfig::hmc_like();
    let mut rng = SmallRng::seed_from_u64(43);
    let chain = LinkedChain::random_cycle(64 * 1024, &mut rng).expect("valid chain");
    let h = traverse_host(&chain, &stack, 0, hops);
    let p = traverse_pnm(&chain, &stack, 0, hops);
    let (mh, mp) = concurrent_traversals(&stack, 64, hops);
    Outcome {
        single_stream_speedup: h.ns / p.ns,
        multi_stream_speedup: mh / mp,
    }
}

/// Runs the experiment and renders the table.
#[must_use]
pub fn run(quick: bool) -> String {
    let hops = if quick { 2_000 } else { 100_000 };
    let stack = StackConfig::hmc_like();
    let mut rng = SmallRng::seed_from_u64(43);
    let chain = LinkedChain::random_cycle(64 * 1024, &mut rng).expect("valid chain");

    let mut table = Table::new(&["streams", "host (us)", "in-memory (us)", "speedup"]);
    for streams in [1u64, 4, 16, 64] {
        let (h, p) = if streams == 1 {
            let h = traverse_host(&chain, &stack, 0, hops);
            let p = traverse_pnm(&chain, &stack, 0, hops);
            assert_eq!(h.end, p.end, "both walkers must reach the same node");
            (h.ns, p.ns)
        } else {
            concurrent_traversals(&stack, streams, hops)
        };
        table.row(&[
            streams.to_string(),
            format!("{:.1}", h / 1000.0),
            format!("{:.1}", p / 1000.0),
            ratio(h, p),
        ]);
    }
    let o = outcome(quick);
    format!(
        "E9: pointer chasing, {hops} dependent hops over a 64Ki-node chain\n\
         (paper shape: speedup ≈ external/internal latency ratio, growing with concurrent walkers)\n{table}\n\
         headline: {:.1}x single-stream, {:.1}x at 64 streams\n",
        o.single_stream_speedup, o.multi_stream_speedup
    )
}

/// Machine-readable report of the same run.
#[must_use]
pub fn report(quick: bool) -> crate::report::ExperimentReport {
    let o = outcome(quick);
    crate::report::ExperimentReport::new("exp09_pointer_chase", quick)
        .metric("single_stream_speedup", o.single_stream_speedup)
        .metric("multi_stream_speedup", o.multi_stream_speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_tracks_latency_ratio() {
        let o = outcome(true);
        let stack = StackConfig::hmc_like();
        let bound = stack.external_latency_ns / stack.internal_latency_ns;
        assert!(
            o.single_stream_speedup > bound * 0.8 && o.single_stream_speedup <= bound * 1.05,
            "speedup {:.2} should approach the latency ratio {bound:.2}",
            o.single_stream_speedup
        );
    }

    #[test]
    fn walker_parallelism_multiplies_the_gain() {
        let o = outcome(true);
        assert!(o.multi_stream_speedup > o.single_stream_speedup);
    }

    #[test]
    fn report_renders() {
        assert!(run(true).contains("streams"));
    }
}
