//! Experiment binary: prints the full-size table for `ia_bench::exp13_low_latency_dram`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp13_low_latency_dram::run(quick));
}
