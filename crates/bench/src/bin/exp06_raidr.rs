//! Experiment binary: prints the full-size table for `ia_bench::exp06_raidr`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp06_raidr::run(quick));
}
