// lint: allow(S002, the fuzz harness is a standalone robustness tool with its own CLI contract — cases/seed/repro-dir — not an experiment report)
//! `fuzz_stack` — full-stack fault-plan fuzzing with invariant oracles.
//!
//! Random workload traces are replayed under randomized fault plans
//! across all 7 schedulers × the 3-rung mitigation ladder, asserting
//! the four invariant oracles (no silent corruption under the full
//! ladder, no watchdog stall, request conservation, byte-identical
//! re-replay). The first violation is minimized to a repro trace and
//! reported with its seed tuple. Exit codes: 0 all green, 1 violation
//! found, 2 usage or harness error.

use std::path::PathBuf;
use std::process::ExitCode;

use ia_bench::fuzz::{run_fuzz, FuzzOptions};

const USAGE: &str = "usage: fuzz_stack [--cases <n>] [--seed <n|0xHEX>] \
                     [--repro-dir <dir>] [--inject-violation]";

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse(args: &[String]) -> Result<FuzzOptions, String> {
    let mut opts = FuzzOptions {
        annotate_errors: true,
        ..FuzzOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cases" => {
                let v = it.next().ok_or("--cases expects a value")?;
                opts.cases = v
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--cases expects a positive integer, got `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed expects a value")?;
                opts.seed = parse_u64(v).ok_or_else(|| {
                    format!("--seed expects an integer (decimal or 0x hex), got `{v}`")
                })?;
            }
            "--repro-dir" => {
                let v = it.next().ok_or("--repro-dir expects a value")?;
                opts.repro_dir = PathBuf::from(v);
            }
            "--inject-violation" => opts.inject_violation = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match run_fuzz(&opts) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match outcome.violation {
        None => {
            println!(
                "fuzz_stack: {} cases across 7 schedulers x 3 mitigation rungs, \
                 all 4 oracles green (seed {:#x})",
                outcome.cases_run, opts.seed
            );
            ExitCode::SUCCESS
        }
        Some(v) => {
            println!("fuzz_stack: VIOLATION — oracle `{}` failed", v.oracle);
            println!("  {}", v.detail);
            println!(
                "  case {}: scheduler={} mitigation={} master_seed={:#x} fault_seed={:#x}",
                v.case_idx, v.scheduler, v.mitigation, opts.seed, v.fault_seed
            );
            println!(
                "  minimized {} -> {} request(s); repro written to {}",
                v.original_requests,
                v.minimized_requests,
                v.repro_path.display()
            );
            println!(
                "  reproduce: fuzz_stack --seed {:#x} --cases {}{}",
                opts.seed,
                v.case_idx + 1,
                if opts.inject_violation {
                    " --inject-violation"
                } else {
                    ""
                }
            );
            ExitCode::from(1)
        }
    }
}
