//! Experiment binary: prints the full-size table for `ia_bench::exp05_scheduler_suite`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp05_scheduler_suite::run(quick));
}
