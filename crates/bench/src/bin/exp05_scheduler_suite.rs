//! Experiment binary for `ia_bench::exp05_scheduler_suite`.
//!
//! Prints the human-readable table; `--quick` shrinks the run,
//! `--threads <n>` sets the parallel-sweep worker count (`1` = the
//! exact serial path), and `--json <path>` / `--csv <path>` write the
//! machine-readable report.

fn main() {
    ia_bench::report::cli(
        ia_bench::exp05_scheduler_suite::run,
        ia_bench::exp05_scheduler_suite::report,
    );
}
