//! Experiment binary: prints the full-size table for `ia_bench::exp08_pnm_graph`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp08_pnm_graph::run(quick));
}
