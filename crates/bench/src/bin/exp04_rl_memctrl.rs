//! Experiment binary: prints the full-size table for `ia_bench::exp04_rl_memctrl`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp04_rl_memctrl::run(quick));
}
