//! Experiment binary: prints the full-size table for `ia_bench::exp18_noc`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp18_noc::run(quick));
}
