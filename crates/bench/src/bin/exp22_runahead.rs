//! Experiment binary for `ia_bench::exp22_runahead`.
//!
//! Prints the human-readable table; `--quick` shrinks the run, and
//! `--json <path>` / `--csv <path>` write the machine-readable report.

fn main() {
    ia_bench::report::cli(
        ia_bench::exp22_runahead::run,
        ia_bench::exp22_runahead::report,
    );
}
