//! Experiment binary: prints the full-size table for `ia_bench::exp11_grim_filter`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp11_grim_filter::run(quick));
}
