//! Experiment binary: prints the full-size table for `ia_bench::exp01_data_movement`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp01_data_movement::run(quick));
}
