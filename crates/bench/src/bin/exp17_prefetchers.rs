//! Experiment binary: prints the full-size table for `ia_bench::exp17_prefetchers`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp17_prefetchers::run(quick));
}
