//! Experiment binary: prints the full-size table for `ia_bench::exp10_rowhammer`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp10_rowhammer::run(quick));
}
