//! Experiment binary: prints the full-size table for `ia_bench::exp03_ambit`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp03_ambit::run(quick));
}
