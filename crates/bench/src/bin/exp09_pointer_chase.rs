//! Experiment binary for `ia_bench::exp09_pointer_chase`.
//!
//! Prints the human-readable table; `--quick` shrinks the run, and
//! `--json <path>` / `--csv <path>` write the machine-readable report.

fn main() {
    ia_bench::report::cli(
        ia_bench::exp09_pointer_chase::run,
        ia_bench::exp09_pointer_chase::report,
    );
}
