//! Experiment binary: prints the full-size table for `ia_bench::exp09_pointer_chase`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp09_pointer_chase::run(quick));
}
