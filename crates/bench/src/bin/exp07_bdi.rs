//! Experiment binary: prints the full-size table for `ia_bench::exp07_bdi`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp07_bdi::run(quick));
}
