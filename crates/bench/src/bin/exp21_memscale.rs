//! Experiment binary for `ia_bench::exp21_memscale`.
//!
//! Prints the human-readable table; `--quick` shrinks the run,
//! `--threads <n>` sets the parallel-sweep worker count (`1` = the
//! exact serial path), and `--json <path>` / `--csv <path>` write the
//! machine-readable report.

fn main() {
    ia_bench::report::cli(
        ia_bench::exp21_memscale::run,
        ia_bench::exp21_memscale::report,
    );
}
