fn main() {
    ia_bench::report::cli(
        ia_bench::exp24_fault_injection::run,
        ia_bench::exp24_fault_injection::report,
    );
}
