//! Experiment binary: prints the full-size table for `ia_bench::exp14_hybrid_memory`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ia_bench::exp14_hybrid_memory::run(quick));
}
