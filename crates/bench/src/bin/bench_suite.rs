// lint: allow(S002, suite runner drives every report() in-process; the per-binary cli wrapper does not apply)
//! All-experiments suite runner for the benchmark snapshot pipeline.
//!
//! Runs every experiment's machine-readable report in a single process
//! and writes each one to `<json-dir>/<bin-name>.json` — the same bytes
//! the standalone `exp*` binaries write with `--json`, because the JSON
//! carries only the deterministic report (runtime diagnostics are
//! excluded by construction). One process instead of twenty-four
//! matters on the snapshot path: fork+exec costs a couple of
//! milliseconds per binary on a loaded host, which used to charge the
//! suite wall ~50 ms of pure process churn.
//!
//! Per-experiment wall times are printed to stdout as `<bin-name> <ms>`
//! lines for `scripts/bench_snapshot.sh` to fold into `BENCH_WALL.json`;
//! measuring inside the process keeps the per-bin rows free of fork
//! noise too.
//!
//! ```text
//! bench_suite [--quick] [--threads N] --json-dir DIR
//! ```

use ia_bench::report::{attach_par_diagnostics, ExperimentReport};

/// One experiment's report entry point, parameterized by `--quick`.
type ReportFn = fn(bool) -> ExperimentReport;

/// Every experiment, keyed by its standalone binary name (the names
/// `bench_snapshot.sh` derives from `crates/bench/src/bin/exp*.rs`).
const SUITE: [(&str, ReportFn); 24] = [
    (
        "exp01_data_movement_energy",
        ia_bench::exp01_data_movement::report,
    ),
    ("exp02_rowclone", ia_bench::exp02_rowclone::report),
    ("exp03_ambit_bitwise", ia_bench::exp03_ambit::report),
    ("exp04_rl_memctrl", ia_bench::exp04_rl_memctrl::report),
    (
        "exp05_scheduler_suite",
        ia_bench::exp05_scheduler_suite::report,
    ),
    ("exp06_raidr", ia_bench::exp06_raidr::report),
    ("exp07_bdi", ia_bench::exp07_bdi::report),
    ("exp08_pnm_graph", ia_bench::exp08_pnm_graph::report),
    ("exp09_pointer_chase", ia_bench::exp09_pointer_chase::report),
    ("exp10_rowhammer", ia_bench::exp10_rowhammer::report),
    ("exp11_grim_filter", ia_bench::exp11_grim_filter::report),
    ("exp12_xmem", ia_bench::exp12_xmem::report),
    (
        "exp13_low_latency_dram",
        ia_bench::exp13_low_latency_dram::report,
    ),
    ("exp14_hybrid_memory", ia_bench::exp14_hybrid_memory::report),
    ("exp15_perceptron", ia_bench::exp15_perceptron::report),
    (
        "exp16_principles_ablation",
        ia_bench::exp16_ablation::report,
    ),
    ("exp17_prefetchers", ia_bench::exp17_prefetchers::report),
    ("exp18_noc", ia_bench::exp18_noc::report),
    ("exp19_salp", ia_bench::exp19_salp::report),
    ("exp20_eden", ia_bench::exp20_eden::report),
    ("exp21_memscale", ia_bench::exp21_memscale::report),
    ("exp22_runahead", ia_bench::exp22_runahead::report),
    ("exp23_gsdram", ia_bench::exp23_gsdram::report),
    (
        "exp24_fault_injection",
        ia_bench::exp24_fault_injection::report,
    ),
];

fn main() {
    let mut quick = false;
    let mut json_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                let v = value("--threads");
                let n = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --threads expects a positive integer, got `{v}`");
                        std::process::exit(2);
                    });
                ia_par::set_threads(n);
            }
            "--json-dir" => json_dir = Some(value("--json-dir")),
            "--help" | "-h" => {
                println!("usage: bench_suite [--quick] [--threads N] --json-dir DIR");
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = json_dir else {
        eprintln!("error: --json-dir is required");
        std::process::exit(2);
    };

    for (name, report) in SUITE {
        // Drain the ia-par ledger per experiment, exactly as each
        // standalone binary's entry point does, so the (JSON-excluded)
        // runtime diagnostics stay per-experiment.
        let _ = ia_par::ledger::take();
        // lint: allow(D002, per-bin wall rows are host diagnostics on stdout; the report JSON carries no timing)
        let start = std::time::Instant::now();
        let rep = attach_par_diagnostics(report(quick));
        let mut text = rep.to_json().render();
        text.push('\n');
        let path = format!("{dir}/{name}.json");
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        println!("{name} {}", start.elapsed().as_millis());
    }
}
