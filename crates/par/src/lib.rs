//! # ia-par — deterministic scoped worker pool
//!
//! A zero-dependency (std-only, no unsafe) fork/join primitive for the
//! experiment suite: [`par_map`] / [`par_map_indexed`] execute
//! independent closures across `N` worker threads but always return the
//! results **in input order**, so any reduction folded over the output
//! is byte-identical to the serial run. Determinism rules:
//!
//! * `threads <= 1` (or a single task) runs inline on the calling
//!   thread — exactly the serial path, no pool, no queue.
//! * With `threads > 1`, workers pull tasks from a shared queue in
//!   input order; which *worker* runs a task is scheduling-dependent,
//!   but the output slot is fixed by the task's index, so the returned
//!   `Vec` — and anything derived from it in order — never varies.
//! * A panicking task poisons the queue: workers stop pulling new
//!   tasks, the pool joins cleanly, and the payload of the
//!   lowest-indexed panic is re-raised on the caller (so even the
//!   propagated panic is deterministic).
//!
//! Every parallel invocation also records wall-clock accounting into a
//! process-wide [`ledger`], which the bench CLI drains into
//! `par_threads` / `par_tasks` / `par_imbalance` runtime diagnostics.
//! Those numbers are timing-derived and therefore **never** enter the
//! canonical experiment reports — see `ia_bench::report`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

pub mod ledger;

/// The ambient worker count: `0` means "not configured", which resolves
/// to [`std::thread::available_parallelism`].
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`auto_threads`].
/// `set_threads(1)` restores the exact serial path everywhere;
/// `set_threads(0)` reverts to the hardware default.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The resolved ambient worker count: the value given to
/// [`set_threads`], or the host's available parallelism when unset.
#[must_use]
pub fn auto_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        // lint: allow(D006, picks the worker count only; par_map output is index-ordered and byte-identical for any thread count)
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Locks `m`, riding through poison: a worker panic must not deadlock
/// or double-panic the pool teardown.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in input order. See the crate docs for the determinism contract.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed panicking task after the
/// pool has shut down cleanly.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_indexed(threads, items, |_, item| f(item))
}

/// [`par_map`], with the task's input index passed to the closure —
/// handy for deriving per-task seeds or labels without capturing them
/// in the item type.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed panicking task after the
/// pool has shut down cleanly. String payloads are prefixed with
/// `task <index> of <count>:` so the failing sweep cell is identifiable
/// from the panic message alone.
pub fn par_map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let tasks = items.len();
    let workers = threads.max(1).min(tasks.max(1));
    if workers <= 1 {
        // The serial path: no pool, no queue, no catch_unwind — exactly
        // what the pre-`ia-par` code did. `--threads 1` lands here.
        let out: Vec<R> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
        ledger::record_serial(tasks);
        return out;
    }

    // Workers pull `(index, item)` pairs in input order; each keeps a
    // local `(index, result)` list so no lock is held while computing.
    let queue = Mutex::new(items.into_iter().enumerate());
    let poisoned = AtomicBool::new(false);
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

    let (mut collected, busy, slowest) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut busy = Duration::ZERO;
                    let mut slowest = Duration::ZERO;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let next = lock_unpoisoned(&queue).next();
                        let Some((index, item)) = next else { break };
                        // lint: allow(D006, task timing feeds the par ledger whose values exit only through runtime_metric stderr diagnostics)
                        let start = Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
                            Ok(result) => {
                                let took = start.elapsed();
                                busy += took;
                                slowest = slowest.max(took);
                                local.push((index, result));
                            }
                            Err(payload) => {
                                let mut slot = lock_unpoisoned(&first_panic);
                                if slot.as_ref().is_none_or(|(i, _)| index < *i) {
                                    *slot = Some((index, payload));
                                }
                                poisoned.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    (local, busy, slowest)
                })
            })
            .collect();
        let mut collected: Vec<(usize, R)> = Vec::with_capacity(tasks);
        let mut busy: Vec<Duration> = Vec::with_capacity(workers);
        let mut slowest = Duration::ZERO;
        for h in handles {
            // Workers never unwind — panics are captured above — so
            // join can only fail if the runtime itself is broken.
            let (local, worker_busy, worker_slowest) =
                // lint: allow(P001, worker closures catch_unwind every task; join failure means a broken runtime)
                h.join().expect("ia-par worker never unwinds");
            collected.extend(local);
            busy.push(worker_busy);
            slowest = slowest.max(worker_slowest);
        }
        (collected, busy, slowest)
    });

    if let Some((index, payload)) = lock_unpoisoned(&first_panic).take() {
        // Label string payloads with the task coordinates: "which of the
        // N sweep cells died" is exactly what the caller needs and is
        // otherwise lost with the worker's stack. Non-string payloads
        // are re-raised untouched.
        let labelled = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .map(|m| format!("task {index} of {tasks}: {m}"));
        match labelled {
            Some(m) => resume_unwind(Box::new(m)),
            None => resume_unwind(payload),
        }
    }

    // Reassemble in input order. Sorting by index is equivalent to
    // scattering into slots but keeps the code free of `Option` holes.
    collected.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(collected
        .iter()
        .enumerate()
        .all(|(slot, &(i, _))| slot == i));
    ledger::record_parallel(workers, tasks, &busy, slowest);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for threads in 1..=8 {
            let out = par_map(threads, (0..100u64).collect(), |x| x * 3);
            assert_eq!(out, (0..100u64).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn indexed_variant_sees_the_input_index() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = par_map_indexed(4, items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn zero_threads_and_empty_input_are_fine() {
        assert_eq!(par_map(0, vec![1, 2], |x| x + 1), vec![2, 3]);
        assert_eq!(par_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
    }

    #[test]
    fn panic_propagates_and_pool_shuts_down() {
        let result = std::panic::catch_unwind(|| {
            par_map(4, (0..32).collect::<Vec<i32>>(), |x| {
                assert!(x != 7, "boom at {x}");
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert! payload is a String");
        assert!(msg.contains("boom at 7"), "lowest-index panic wins: {msg}");
        assert!(
            msg.starts_with("task 7 of 32: "),
            "payload carries the task coordinates: {msg}"
        );
    }

    #[test]
    fn ambient_thread_count_round_trips() {
        set_threads(3);
        assert_eq!(auto_threads(), 3);
        set_threads(0);
        assert!(auto_threads() >= 1);
    }
}
