//! Process-wide accounting of parallel work, for observability.
//!
//! Every [`par_map`](crate::par_map) invocation records how many tasks
//! it ran and, for parallel invocations, each worker's busy time. The
//! bench CLI drains the ledger once per experiment ([`take`]) and
//! reports the totals as *runtime diagnostics* on stderr. The numbers
//! are wall-clock derived, hence nondeterministic — they must never be
//! folded into a canonical report (`BENCH_PR.json` stays byte-identical
//! across `--threads` values precisely because they are not).

use std::sync::Mutex;
use std::time::Duration;

/// Aggregated parallel-execution accounting since the last [`take`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParLedger {
    /// `par_map` invocations that ran on the inline serial path.
    pub serial_invocations: u64,
    /// `par_map` invocations that spawned a worker pool.
    pub parallel_invocations: u64,
    /// Total tasks executed (serial + parallel).
    pub tasks: u64,
    /// Largest worker-pool size observed.
    pub max_workers: usize,
    /// Sum of all workers' busy time.
    pub busy_total: Duration,
    /// Worst per-invocation imbalance: max worker busy time divided by
    /// mean worker busy time (`1.0` = perfectly balanced or serial).
    pub worst_imbalance: f64,
    /// Longest single task observed across all parallel invocations —
    /// the lower bound on any sweep's wall-clock, however many workers.
    pub slowest_task: Duration,
}

impl ParLedger {
    /// Folds one parallel invocation into the totals.
    fn absorb(&mut self, workers: usize, tasks: u64, busy: &[Duration], slowest: Duration) {
        self.parallel_invocations += 1;
        self.slowest_task = self.slowest_task.max(slowest);
        self.tasks += tasks;
        self.max_workers = self.max_workers.max(workers);
        let total: Duration = busy.iter().sum();
        self.busy_total += total;
        let mean = total.as_secs_f64() / busy.len().max(1) as f64;
        if mean > 0.0 {
            let max = busy.iter().max().copied().unwrap_or_default().as_secs_f64();
            self.worst_imbalance = self.worst_imbalance.max(max / mean);
        }
    }
}

static LEDGER: Mutex<ParLedger> = Mutex::new(ParLedger {
    serial_invocations: 0,
    parallel_invocations: 0,
    tasks: 0,
    max_workers: 0,
    busy_total: Duration::ZERO,
    worst_imbalance: 0.0,
    slowest_task: Duration::ZERO,
});

fn with_ledger<R>(f: impl FnOnce(&mut ParLedger) -> R) -> R {
    f(&mut LEDGER
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Records a serial (inline) invocation of `tasks` tasks.
pub(crate) fn record_serial(tasks: usize) {
    with_ledger(|l| {
        l.serial_invocations += 1;
        l.tasks += tasks as u64;
    });
}

/// Records a pooled invocation: `workers` threads, per-worker busy
/// time, and the longest single task.
pub(crate) fn record_parallel(workers: usize, tasks: usize, busy: &[Duration], slowest: Duration) {
    with_ledger(|l| l.absorb(workers, tasks as u64, busy, slowest));
}

/// Returns the accounting accumulated since the previous `take` and
/// resets it — call once per experiment to scope the diagnostics.
#[must_use]
pub fn take() -> ParLedger {
    with_ledger(std::mem::take)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counts_serial_and_parallel_work() {
        // Other unit tests in this binary also feed the global ledger,
        // so assert lower bounds, not exact counts.
        let before = take();
        let out = crate::par_map(1, vec![1u32, 2, 3], |x| x);
        assert_eq!(out.len(), 3);
        let out = crate::par_map(2, (0..10u32).collect(), |x| x);
        assert_eq!(out.len(), 10);
        let ledger = take();
        assert!(
            ledger.serial_invocations >= 1,
            "{ledger:?} after {before:?}"
        );
        assert!(ledger.parallel_invocations >= 1, "{ledger:?}");
        assert!(ledger.tasks >= 13, "{ledger:?}");
        assert!(ledger.max_workers >= 2, "{ledger:?}");
        assert!(ledger.worst_imbalance >= 0.0);
        assert!(
            ledger.slowest_task <= ledger.busy_total,
            "one task cannot exceed total busy time: {ledger:?}"
        );
    }
}
