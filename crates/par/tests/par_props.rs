//! Property tests: `par_map` must be observationally identical to the
//! serial `map` for every task count, thread count, and closure —
//! including panicking closures, whose panic must propagate after a
//! clean pool shutdown.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_equals_serial_map(
        items in prop::collection::vec(0u64..1_000_000, 0..64),
        threads in 1usize..=8,
    ) {
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) ^ x).collect();
        let got = ia_par::par_map(threads, items, |x| x.wrapping_mul(2654435761) ^ x);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn par_map_indexed_equals_serial_enumerate(
        items in prop::collection::vec(0u32..1_000, 0..48),
        threads in 1usize..=8,
    ) {
        let expect: Vec<(usize, u32)> = items.iter().copied().enumerate().collect();
        let got = ia_par::par_map_indexed(threads, items, |i, x| (i, x));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn panicking_closure_propagates_and_pool_survives(
        len in 1usize..32,
        panic_at in any::<prop::sample::Index>(),
        threads in 1usize..=8,
    ) {
        let bad = panic_at.index(len);
        let items: Vec<usize> = (0..len).collect();
        let result = std::panic::catch_unwind(|| {
            ia_par::par_map(threads, items, |x| {
                assert!(x != bad, "task {x} failed");
                x
            })
        });
        let payload = result.expect_err("the panic must reach the caller");
        let msg = payload.downcast_ref::<String>().expect("assert! payload");
        prop_assert!(msg.contains(&format!("task {bad} failed")), "got: {msg}");
        // The pool shut down cleanly: the very next call works and is
        // still order-preserving.
        let ok = ia_par::par_map(threads, (0..len).collect::<Vec<_>>(), |x| x + 1);
        prop_assert_eq!(ok, (1..=len).collect::<Vec<_>>());
    }
}
