//! Error type for the reliability models.

use std::error::Error;
use std::fmt;

/// An invalid argument to a reliability model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliabilityError {
    msg: &'static str,
}

impl ReliabilityError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        ReliabilityError { msg }
    }
}

impl fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl Error for ReliabilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_nonempty_and_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<ReliabilityError>();
        assert!(!ReliabilityError::invalid("bad").to_string().is_empty());
    }
}
