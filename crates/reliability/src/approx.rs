//! EDEN-style approximate DRAM (Koppula+, MICRO 2019): deliberately
//! operate DRAM below worst-case refresh (or voltage) for data that
//! tolerates errors — DNN weights and activations — trading a controlled
//! bit-error rate for refresh energy and performance.
//!
//! The model: extending the refresh interval by `k×` exposes the cells
//! whose retention is below `k × 64 ms`; the retention distribution gives
//! the resulting bit-error rate, and a simple DNN-robustness curve maps
//! BER to accuracy loss — reproducing EDEN's headline trade-off shape.

use crate::retention::RetentionModel;

/// Error/energy outcome of running at `multiplier ×` the nominal refresh
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxDramPoint {
    /// Refresh-interval multiplier (1 = nominal 64 ms).
    pub multiplier: u32,
    /// Fraction of refresh operations eliminated vs nominal.
    pub refresh_savings: f64,
    /// Probability a given row has at least one weak cell at this
    /// interval (the uncorrected bit-error exposure).
    pub row_error_rate: f64,
}

/// Sweeps refresh-interval multipliers over a retention profile.
///
/// The retention model gives P(row retains < 64 ms) and < 128 ms; beyond
/// that the weak-cell population grows roughly geometrically with the
/// interval (the published retention-tail shape).
#[must_use]
pub fn sweep_refresh_multipliers(
    model: &RetentionModel,
    multipliers: &[u32],
) -> Vec<ApproxDramPoint> {
    multipliers
        .iter()
        .map(|&m| {
            let m = m.max(1);
            // Rows failing at interval m×64ms: extrapolate the tail —
            // p(<64) at m=1, p(<128) at m=2, then ~3x per doubling.
            let rate = match m {
                1 => 0.0, // nominal refresh loses nothing
                2 => model.p_under_128ms,
                _ => {
                    let doublings = (f64::from(m)).log2();
                    (model.p_under_128ms * 3.0f64.powf(doublings - 1.0)).min(1.0)
                }
            };
            ApproxDramPoint {
                multiplier: m,
                refresh_savings: 1.0 - 1.0 / f64::from(m),
                row_error_rate: rate,
            }
        })
        .collect()
}

/// Maps a bit-error exposure to a DNN accuracy loss (fraction of
/// baseline accuracy lost), using the robustness shape EDEN measures:
/// DNNs tolerate small BERs almost for free, then degrade sharply past a
/// knee.
#[must_use]
pub fn dnn_accuracy_loss(row_error_rate: f64, tolerance_knee: f64) -> f64 {
    if row_error_rate <= tolerance_knee {
        // Sub-knee: negligible, linear in exposure.
        0.01 * row_error_rate / tolerance_knee.max(f64::MIN_POSITIVE)
    } else {
        // Past the knee: rapid degradation toward total loss.
        (0.01 + (row_error_rate - tolerance_knee) * 20.0).min(1.0)
    }
}

/// Picks the largest refresh multiplier whose accuracy loss stays within
/// `budget` — EDEN's per-layer interval selection.
#[must_use]
pub fn select_multiplier(model: &RetentionModel, tolerance_knee: f64, budget: f64) -> u32 {
    let candidates = [1u32, 2, 4, 8, 16, 32];
    let mut best = 1;
    for p in sweep_refresh_multipliers(model, &candidates) {
        if dnn_accuracy_loss(p.row_error_rate, tolerance_knee) <= budget {
            best = best.max(p.multiplier);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_refresh_is_error_free() {
        let pts = sweep_refresh_multipliers(&RetentionModel::typical(), &[1]);
        assert_eq!(pts[0].row_error_rate, 0.0);
        assert_eq!(pts[0].refresh_savings, 0.0);
    }

    #[test]
    fn savings_and_errors_both_grow_with_the_interval() {
        let pts = sweep_refresh_multipliers(&RetentionModel::typical(), &[1, 2, 4, 8, 16]);
        for w in pts.windows(2) {
            assert!(w[1].refresh_savings > w[0].refresh_savings);
            assert!(w[1].row_error_rate >= w[0].row_error_rate);
        }
        // 16x interval eliminates ~94% of refreshes.
        assert!((pts[4].refresh_savings - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn error_rate_saturates_at_one() {
        let model = RetentionModel::new(0.2, 0.5).unwrap();
        let pts = sweep_refresh_multipliers(&model, &[32]);
        assert!(pts[0].row_error_rate <= 1.0);
    }

    #[test]
    fn accuracy_loss_has_a_knee() {
        let knee = 1e-3;
        let below = dnn_accuracy_loss(1e-4, knee);
        let above = dnn_accuracy_loss(1e-2, knee);
        assert!(below < 0.011, "sub-knee loss negligible: {below}");
        assert!(
            above > 10.0 * below,
            "post-knee loss sharp: {above} vs {below}"
        );
        assert!(dnn_accuracy_loss(1.0, knee) <= 1.0);
    }

    #[test]
    fn selection_respects_the_budget_and_tolerance() {
        let model = RetentionModel::typical();
        // A robust layer (high knee) can run at long intervals...
        let robust = select_multiplier(&model, 0.5, 0.02);
        // ...a sensitive layer (tiny knee) must stay near nominal.
        let sensitive = select_multiplier(&model, 1e-6, 0.001);
        assert!(robust >= 8, "robust layer should reach ≥8x, got {robust}");
        assert!(
            sensitive <= 2,
            "sensitive layer must stay near 1x, got {sensitive}"
        );
    }
}
