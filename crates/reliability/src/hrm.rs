//! Heterogeneous-Reliability Memory (Luo+, DSN 2014): place data in memory
//! tiers of different reliability/cost according to its measured error
//! vulnerability, cutting datacenter memory cost while bounding crash rate.

use crate::ReliabilityError;

/// A memory tier with a reliability level and relative cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryTier {
    /// Human-readable tier name.
    pub name: &'static str,
    /// Uncorrectable-error probability per GiB per month.
    pub error_rate: f64,
    /// Cost relative to commodity non-ECC DRAM (1.0).
    pub relative_cost: f64,
}

/// The three tiers the original study evaluates.
#[must_use]
pub fn standard_tiers() -> [MemoryTier; 3] {
    [
        MemoryTier {
            name: "ECC+chipkill",
            error_rate: 1e-6,
            relative_cost: 1.30,
        },
        MemoryTier {
            name: "ECC",
            error_rate: 1e-5,
            relative_cost: 1.12,
        },
        MemoryTier {
            name: "non-ECC",
            error_rate: 5e-4,
            relative_cost: 1.00,
        },
    ]
}

/// An application data region with its measured vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct DataRegion {
    /// Region label (heap, private, …).
    pub name: String,
    /// Size in GiB.
    pub size_gib: f64,
    /// Probability that an error in this region crashes or corrupts the
    /// application (vs. being masked), in [0, 1].
    pub vulnerability: f64,
}

impl DataRegion {
    /// Creates a region.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError`] if the size is non-positive or the
    /// vulnerability is outside `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        size_gib: f64,
        vulnerability: f64,
    ) -> Result<Self, ReliabilityError> {
        if size_gib <= 0.0 {
            return Err(ReliabilityError::invalid("region size must be positive"));
        }
        if !(0.0..=1.0).contains(&vulnerability) {
            return Err(ReliabilityError::invalid("vulnerability must be in [0, 1]"));
        }
        Ok(DataRegion {
            name: name.into(),
            size_gib,
            vulnerability,
        })
    }
}

/// A placement of regions onto tiers with its aggregate metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `(region index, tier index)` assignments.
    pub assignments: Vec<(usize, usize)>,
    /// Total memory cost (GiB × relative cost).
    pub cost: f64,
    /// Expected application-visible errors per month.
    pub expected_failures: f64,
}

/// Greedy vulnerability-aware placement: most-vulnerable regions go to the
/// most reliable tier that keeps the failure budget, everything else to
/// the cheapest tier.
///
/// Returns the chosen placement, or an error if even all-top-tier
/// placement exceeds `failure_budget` (failures/month).
///
/// # Errors
///
/// Returns [`ReliabilityError`] if `regions` is empty, `tiers` is empty,
/// or the budget is infeasible.
pub fn place(
    regions: &[DataRegion],
    tiers: &[MemoryTier],
    failure_budget: f64,
) -> Result<Placement, ReliabilityError> {
    if regions.is_empty() || tiers.is_empty() {
        return Err(ReliabilityError::invalid(
            "need at least one region and one tier",
        ));
    }
    let mut tier_order: Vec<usize> = (0..tiers.len()).collect();
    tier_order.sort_by(|&a, &b| {
        tiers[a]
            .error_rate
            .partial_cmp(&tiers[b].error_rate)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let best = tier_order[0];
    let cheapest = tier_order
        .iter()
        .copied()
        .min_by(|&a, &b| {
            tiers[a]
                .relative_cost
                .partial_cmp(&tiers[b].relative_cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(best);

    // Start everything on the cheapest tier, then promote regions in
    // decreasing vulnerability×size order until within budget.
    let mut assignment: Vec<usize> = vec![cheapest; regions.len()];
    let failures = |assignment: &[usize]| -> f64 {
        regions
            .iter()
            .zip(assignment)
            .map(|(r, &t)| r.size_gib * tiers[t].error_rate * r.vulnerability)
            .sum()
    };
    let mut order: Vec<usize> = (0..regions.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = regions[a].vulnerability * regions[a].size_gib;
        let kb = regions[b].vulnerability * regions[b].size_gib;
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut i = 0;
    while failures(&assignment) > failure_budget {
        if i >= order.len() {
            return Err(ReliabilityError::invalid(
                "failure budget infeasible even with best tier",
            ));
        }
        assignment[order[i]] = best;
        i += 1;
    }
    let cost = regions
        .iter()
        .zip(&assignment)
        .map(|(r, &t)| r.size_gib * tiers[t].relative_cost)
        .sum();
    Ok(Placement {
        assignments: assignment.iter().copied().enumerate().collect(),
        cost,
        expected_failures: failures(&assignment),
    })
}

/// Cost of placing everything on the given tier (the homogeneous baseline).
#[must_use]
pub fn homogeneous_cost(regions: &[DataRegion], tier: &MemoryTier) -> f64 {
    regions
        .iter()
        .map(|r| r.size_gib * tier.relative_cost)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions() -> Vec<DataRegion> {
        vec![
            DataRegion::new("critical-heap", 2.0, 0.9).unwrap(),
            DataRegion::new("page-cache", 20.0, 0.05).unwrap(),
            DataRegion::new("tolerant-buffers", 10.0, 0.01).unwrap(),
        ]
    }

    #[test]
    fn region_validation() {
        assert!(DataRegion::new("x", 0.0, 0.5).is_err());
        assert!(DataRegion::new("x", 1.0, 1.5).is_err());
        assert!(DataRegion::new("x", 1.0, 0.5).is_ok());
    }

    #[test]
    fn hrm_is_cheaper_than_all_top_tier_at_same_budget() {
        let tiers = standard_tiers();
        let all_best = homogeneous_cost(&regions(), &tiers[0]);
        let p = place(&regions(), &tiers, 1e-3).unwrap();
        assert!(
            p.cost < all_best,
            "HRM {:.2} vs homogeneous {:.2}",
            p.cost,
            all_best
        );
        assert!(p.expected_failures <= 1e-3);
    }

    #[test]
    fn tight_budget_promotes_vulnerable_regions_first() {
        let tiers = standard_tiers();
        let p = place(&regions(), &tiers, 1e-4).unwrap();
        // The critical heap must be on the most reliable tier.
        let critical_tier = p.assignments[0].1;
        assert_eq!(tiers[critical_tier].name, "ECC+chipkill");
    }

    #[test]
    fn loose_budget_keeps_everything_cheap() {
        let tiers = standard_tiers();
        let p = place(&regions(), &tiers, 1.0).unwrap();
        assert!(
            (p.cost - 32.0).abs() < 1e-9,
            "all non-ECC: cost = total GiB"
        );
    }

    #[test]
    fn infeasible_budget_is_an_error() {
        let tiers = standard_tiers();
        assert!(place(&regions(), &tiers, 0.0).is_err());
    }

    #[test]
    fn empty_inputs_are_errors() {
        let tiers = standard_tiers();
        assert!(place(&[], &tiers, 1.0).is_err());
        assert!(place(&regions(), &[], 1.0).is_err());
    }
}
