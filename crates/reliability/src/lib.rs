//! # ia-reliability — DRAM reliability models and intelligent mitigation
//!
//! The paper's "bottom-up push" for intelligent memory controllers is that
//! technology scaling created reliability problems only an intelligent
//! controller can solve economically. This crate models the three problems
//! the talk highlights and their published mitigations:
//!
//! * [`RowHammerModel`] with [`Para`] and [`CounterTrr`] mitigations
//!   (Kim+ ISCA 2014, ISCA 2020).
//! * [`RetentionModel`] / [`Raidr`] — retention-aware intelligent refresh
//!   with Bloom-filter row bins (Liu+, ISCA 2012).
//! * SECDED ECC ([`encode`]/[`decode`]) and heterogeneous-reliability
//!   memory placement ([`place`]) (Luo+, DSN 2014).
//!
//! ## Example
//!
//! ```
//! use ia_reliability::{RetentionModel, Raidr};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let profile = RetentionModel::typical().profile(32 * 1024, &mut rng);
//! let raidr = Raidr::from_profile(&profile)?;
//! // RAIDR eliminates roughly three quarters of refreshes.
//! assert!(raidr.reduction_over(8) > 0.7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod approx;
mod ecc;
mod error;
mod hrm;
mod retention;
mod rowhammer;

pub use approx::{
    dnn_accuracy_loss, select_multiplier, sweep_refresh_multipliers, ApproxDramPoint,
};
pub use ecc::{decode, encode, inject_error, DecodeOutcome, EccWord};
pub use error::ReliabilityError;
pub use hrm::{homogeneous_cost, place, standard_tiers, DataRegion, MemoryTier, Placement};
pub use retention::{BloomFilter, Raidr, RetentionBin, RetentionModel, RetentionProfile};
pub use rowhammer::{
    double_sided_pattern, run_attack, CounterTrr, DeviceGeneration, Flip, Mitigation, Para,
    RowHammerModel,
};
