//! DRAM retention-time modelling and RAIDR-style retention-aware refresh.
//!
//! Reproduces the statistical picture from Liu+ (ISCA 2012/2013): the vast
//! majority of rows retain data far longer than the worst-case 64 ms
//! refresh interval assumes; only a tiny weak tail needs frequent refresh.
//! RAIDR bins rows by measured retention (stored in Bloom filters) and
//! refreshes each bin at its own rate, eliminating ~75% of refreshes.

use rand::Rng;

use crate::ReliabilityError;

/// Retention-time bins used by RAIDR (refresh interval in milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RetentionBin {
    /// Weakest rows: refreshed every 64 ms (the baseline rate).
    Ms64,
    /// Refreshed every 128 ms.
    Ms128,
    /// Strong rows: refreshed every 256 ms.
    Ms256,
}

impl RetentionBin {
    /// Refresh interval of the bin in milliseconds.
    #[must_use]
    pub fn interval_ms(self) -> u64 {
        match self {
            RetentionBin::Ms64 => 64,
            RetentionBin::Ms128 => 128,
            RetentionBin::Ms256 => 256,
        }
    }

    /// Bins from weakest to strongest.
    #[must_use]
    pub fn all() -> [RetentionBin; 3] {
        [RetentionBin::Ms64, RetentionBin::Ms128, RetentionBin::Ms256]
    }
}

/// Statistical model of per-row retention times.
///
/// Calibrated to the published observation that fewer than ~1000 cells in
/// a 32 GiB module leak before 256 ms: per-row weak probabilities default
/// to ~10⁻³ (<128 ms) and ~3·10⁻⁴ (<64 ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionModel {
    /// Probability a row retains < 64 ms.
    pub p_under_64ms: f64,
    /// Probability a row retains < 128 ms (inclusive of the above).
    pub p_under_128ms: f64,
}

impl RetentionModel {
    /// The default profile from the RAIDR evaluation's device assumptions.
    #[must_use]
    pub fn typical() -> Self {
        RetentionModel {
            p_under_64ms: 3e-4,
            p_under_128ms: 1e-3,
        }
    }

    /// Creates a custom profile.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError`] unless
    /// `0 ≤ p_under_64ms ≤ p_under_128ms ≤ 1`.
    pub fn new(p_under_64ms: f64, p_under_128ms: f64) -> Result<Self, ReliabilityError> {
        if !(0.0..=1.0).contains(&p_under_64ms)
            || !(0.0..=1.0).contains(&p_under_128ms)
            || p_under_64ms > p_under_128ms
        {
            return Err(ReliabilityError::invalid(
                "require 0 <= p_under_64ms <= p_under_128ms <= 1",
            ));
        }
        Ok(RetentionModel {
            p_under_64ms,
            p_under_128ms,
        })
    }

    /// Samples a bin for one row.
    pub fn sample_bin<R: Rng + ?Sized>(&self, rng: &mut R) -> RetentionBin {
        let u: f64 = rng.gen();
        if u < self.p_under_64ms {
            RetentionBin::Ms64
        } else if u < self.p_under_128ms {
            RetentionBin::Ms128
        } else {
            RetentionBin::Ms256
        }
    }

    /// Profiles a bank of `rows` rows (the REAPER-style profiling step).
    pub fn profile<R: Rng + ?Sized>(&self, rows: u64, rng: &mut R) -> RetentionProfile {
        let mut weak64 = Vec::new();
        let mut weak128 = Vec::new();
        for row in 0..rows {
            match self.sample_bin(rng) {
                RetentionBin::Ms64 => weak64.push(row),
                RetentionBin::Ms128 => weak128.push(row),
                RetentionBin::Ms256 => {}
            }
        }
        RetentionProfile {
            rows,
            weak64,
            weak128,
        }
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        RetentionModel::typical()
    }
}

/// Result of profiling: the explicit weak-row lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetentionProfile {
    /// Total rows profiled.
    pub rows: u64,
    /// Rows retaining < 64 ms.
    pub weak64: Vec<u64>,
    /// Rows retaining 64–128 ms.
    pub weak128: Vec<u64>,
}

impl RetentionProfile {
    /// Bin of a given row per this profile.
    #[must_use]
    pub fn bin(&self, row: u64) -> RetentionBin {
        if self.weak64.contains(&row) {
            RetentionBin::Ms64
        } else if self.weak128.contains(&row) {
            RetentionBin::Ms128
        } else {
            RetentionBin::Ms256
        }
    }
}

/// A counting-free Bloom filter, as RAIDR uses to store weak-row sets in
/// a few kilobits of controller state.
///
/// # Examples
///
/// ```
/// use ia_reliability::BloomFilter;
/// let mut bf = BloomFilter::new(1024, 3)?;
/// bf.insert(42);
/// assert!(bf.contains(42));
/// # Ok::<(), ia_reliability::ReliabilityError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
    insertions: u64,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits and `hashes` hash functions.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError`] if `bits == 0` or `hashes == 0`.
    pub fn new(bits: usize, hashes: u32) -> Result<Self, ReliabilityError> {
        if bits == 0 || hashes == 0 {
            return Err(ReliabilityError::invalid(
                "bloom filter needs bits and hashes",
            ));
        }
        Ok(BloomFilter {
            bits: vec![0; bits.div_ceil(64)],
            m: bits,
            k: hashes,
            insertions: 0,
        })
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        // Double hashing with two independent multiplicative mixes.
        let h1 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        let h2 = key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1;
        (0..self.k)
            .map(move |i| (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.m as u64) as usize)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<usize> = self.positions(key).collect();
        for p in positions {
            self.bits[p / 64] |= 1 << (p % 64);
        }
        self.insertions += 1;
    }

    /// Tests membership (no false negatives; false positives possible).
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .all(|p| self.bits[p / 64] & (1 << (p % 64)) != 0)
    }

    /// Number of insertions performed.
    #[must_use]
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Storage cost in bits.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.m
    }
}

/// RAIDR: retention-aware refresh using Bloom-filter bins.
#[derive(Debug, Clone)]
pub struct Raidr {
    bloom64: BloomFilter,
    bloom128: BloomFilter,
    rows: u64,
}

impl Raidr {
    /// Builds RAIDR state from a retention profile, using Bloom filters
    /// sized generously relative to the weak-row counts (×32 bits/entry,
    /// min 1 Kib) to keep false-positive rates negligible.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError`] if the profile is empty.
    pub fn from_profile(profile: &RetentionProfile) -> Result<Self, ReliabilityError> {
        if profile.rows == 0 {
            return Err(ReliabilityError::invalid("profile covers zero rows"));
        }
        let size = |n: usize| (n * 32).max(1024);
        let mut bloom64 = BloomFilter::new(size(profile.weak64.len()), 4)?;
        let mut bloom128 = BloomFilter::new(size(profile.weak128.len()), 4)?;
        for &r in &profile.weak64 {
            bloom64.insert(r);
        }
        for &r in &profile.weak128 {
            bloom128.insert(r);
        }
        Ok(Raidr {
            bloom64,
            bloom128,
            rows: profile.rows,
        })
    }

    /// Bin RAIDR assigns to a row (Bloom false positives demote a strong
    /// row to a weaker bin — safe, just slightly more refresh).
    #[must_use]
    pub fn bin(&self, row: u64) -> RetentionBin {
        if self.bloom64.contains(row) {
            RetentionBin::Ms64
        } else if self.bloom128.contains(row) {
            RetentionBin::Ms128
        } else {
            RetentionBin::Ms256
        }
    }

    /// Whether `row` must be refreshed in 64 ms window number `window`.
    ///
    /// Bin 64 refreshes every window, bin 128 every second window, bin 256
    /// every fourth.
    #[must_use]
    pub fn needs_refresh(&self, row: u64, window: u64) -> bool {
        match self.bin(row) {
            RetentionBin::Ms64 => true,
            RetentionBin::Ms128 => window.is_multiple_of(2),
            RetentionBin::Ms256 => window.is_multiple_of(4),
        }
    }

    /// Row refreshes RAIDR performs over `windows` 64 ms windows.
    #[must_use]
    pub fn refreshes_over(&self, windows: u64) -> u64 {
        (0..windows)
            .map(|w| (0..self.rows).filter(|&r| self.needs_refresh(r, w)).count() as u64)
            .sum()
    }

    /// Row refreshes the baseline (refresh-everything) performs.
    #[must_use]
    pub fn baseline_refreshes_over(&self, windows: u64) -> u64 {
        self.rows * windows
    }

    /// Fraction of refreshes eliminated vs. baseline over `windows`
    /// windows (the paper's headline is ≈ 0.746 for typical profiles).
    #[must_use]
    pub fn reduction_over(&self, windows: u64) -> f64 {
        let base = self.baseline_refreshes_over(windows);
        if base == 0 {
            return 0.0;
        }
        1.0 - self.refreshes_over(windows) as f64 / base as f64
    }

    /// Controller storage cost in bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.bloom64.size_bits() + self.bloom128.size_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bins_order_and_intervals() {
        assert!(RetentionBin::Ms64 < RetentionBin::Ms256);
        assert_eq!(RetentionBin::Ms64.interval_ms(), 64);
        assert_eq!(RetentionBin::Ms128.interval_ms(), 128);
        assert_eq!(RetentionBin::Ms256.interval_ms(), 256);
    }

    #[test]
    fn model_validates_probabilities() {
        assert!(RetentionModel::new(0.5, 0.1).is_err());
        assert!(RetentionModel::new(-0.1, 0.5).is_err());
        assert!(RetentionModel::new(0.1, 1.5).is_err());
        assert!(RetentionModel::new(0.001, 0.01).is_ok());
    }

    #[test]
    fn typical_profile_is_mostly_strong_rows() {
        let mut rng = SmallRng::seed_from_u64(3);
        let profile = RetentionModel::typical().profile(100_000, &mut rng);
        let weak = profile.weak64.len() + profile.weak128.len();
        assert!(
            weak > 0,
            "some weak rows expected at 1e-3 rate over 100k rows"
        );
        assert!(weak < 1000, "weak tail must be tiny, got {weak}");
    }

    #[test]
    fn profile_bins_match_lists() {
        let profile = RetentionProfile {
            rows: 10,
            weak64: vec![2],
            weak128: vec![5],
        };
        assert_eq!(profile.bin(2), RetentionBin::Ms64);
        assert_eq!(profile.bin(5), RetentionBin::Ms128);
        assert_eq!(profile.bin(7), RetentionBin::Ms256);
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bf = BloomFilter::new(4096, 4).unwrap();
        for k in (0..500u64).map(|i| i * 7 + 1) {
            bf.insert(k);
        }
        for k in (0..500u64).map(|i| i * 7 + 1) {
            assert!(bf.contains(k), "false negative for {k}");
        }
        assert_eq!(bf.insertions(), 500);
    }

    #[test]
    fn bloom_false_positive_rate_is_low_when_sized_well() {
        let mut bf = BloomFilter::new(32 * 100, 4).unwrap();
        for k in 0..100u64 {
            bf.insert(k);
        }
        let fps = (1000u64..11_000).filter(|&k| bf.contains(k)).count();
        assert!(fps < 100, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn bloom_rejects_degenerate_params() {
        assert!(BloomFilter::new(0, 3).is_err());
        assert!(BloomFilter::new(128, 0).is_err());
    }

    #[test]
    fn raidr_never_underrefreshes_weak_rows() {
        let profile = RetentionProfile {
            rows: 64,
            weak64: vec![3, 9],
            weak128: vec![20],
        };
        let raidr = Raidr::from_profile(&profile).unwrap();
        for w in 0..8 {
            assert!(
                raidr.needs_refresh(3, w),
                "64ms row must refresh every window"
            );
            assert!(raidr.needs_refresh(9, w));
        }
        // 128ms rows refresh at least every other window.
        let hits = (0..8).filter(|&w| raidr.needs_refresh(20, w)).count();
        assert!(hits >= 4);
    }

    #[test]
    fn raidr_reduction_approaches_three_quarters() {
        let mut rng = SmallRng::seed_from_u64(11);
        let profile = RetentionModel::typical().profile(32 * 1024, &mut rng);
        let raidr = Raidr::from_profile(&profile).unwrap();
        let reduction = raidr.reduction_over(8);
        assert!(
            (0.70..0.76).contains(&reduction),
            "expected ≈74.6% refresh reduction, got {:.1}%",
            reduction * 100.0
        );
    }

    #[test]
    fn raidr_storage_is_kilobits_not_megabits() {
        let mut rng = SmallRng::seed_from_u64(13);
        let profile = RetentionModel::typical().profile(32 * 1024, &mut rng);
        let raidr = Raidr::from_profile(&profile).unwrap();
        assert!(
            raidr.storage_bits() < 64 * 1024,
            "got {} bits",
            raidr.storage_bits()
        );
    }

    #[test]
    fn raidr_rejects_empty_profile() {
        let profile = RetentionProfile {
            rows: 0,
            weak64: vec![],
            weak128: vec![],
        };
        assert!(Raidr::from_profile(&profile).is_err());
    }
}
