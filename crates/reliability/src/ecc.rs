//! SECDED (72,64) Hamming code, the ECC scheme server DRAM uses and the
//! building block of heterogeneous-reliability memory.

use crate::ReliabilityError;

/// A 64-bit data word with its 8 SECDED check bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EccWord {
    /// The protected data.
    pub data: u64,
    /// Check bits (7 Hamming + 1 overall parity).
    pub check: u8,
}

/// Outcome of decoding a possibly-corrupted word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// No error detected.
    Clean(u64),
    /// A single-bit error was corrected; the payload is the fixed data.
    Corrected(u64),
    /// An uncorrectable (double-bit) error was detected.
    DetectedUncorrectable,
}

/// The 72-bit codeword layout: data bits occupy positions that are not
/// powers of two in 1..=71; check bits sit at positions 1,2,4,8,16,32,64
/// minus the overall-parity bit at position 0.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..72).filter(|p| !p.is_power_of_two())
}

/// Encodes a 64-bit word into data + check bits.
///
/// # Examples
///
/// ```
/// use ia_reliability::{decode, encode, DecodeOutcome};
/// let w = encode(0xDEAD_BEEF_0123_4567);
/// assert_eq!(decode(w), DecodeOutcome::Clean(0xDEAD_BEEF_0123_4567));
/// ```
#[must_use]
pub fn encode(data: u64) -> EccWord {
    let mut code = [false; 72];
    for (i, pos) in data_positions().enumerate() {
        code[pos as usize] = (data >> i) & 1 == 1;
    }
    // Hamming check bits: bit at position 2^j covers positions with bit j set.
    for j in 0..7u32 {
        let p = 1usize << j;
        let parity = (1..72)
            .filter(|&i| i & p != 0 && i != p)
            .fold(false, |acc, i| acc ^ code[i]);
        code[p] = parity;
    }
    // Overall parity at position 0 (for double-error detection).
    code[0] = code[1..].iter().fold(false, |a, &b| a ^ b);
    pack_check(&code)
}

fn pack_check(code: &[bool; 72]) -> EccWord {
    let mut data = 0u64;
    for (i, pos) in data_positions().enumerate() {
        if code[pos as usize] {
            data |= 1 << i;
        }
    }
    let mut check = 0u8;
    for (j, &p) in [0usize, 1, 2, 4, 8, 16, 32, 64].iter().enumerate() {
        if code[p] {
            check |= 1 << j;
        }
    }
    EccWord { data, check }
}

fn unpack(word: EccWord) -> [bool; 72] {
    let mut code = [false; 72];
    for (i, pos) in data_positions().enumerate() {
        code[pos as usize] = (word.data >> i) & 1 == 1;
    }
    for (j, &p) in [0usize, 1, 2, 4, 8, 16, 32, 64].iter().enumerate() {
        code[p] = (word.check >> j) & 1 == 1;
    }
    code
}

/// Flips one bit of the 72-bit codeword (bit 0..=71), for fault injection.
///
/// # Errors
///
/// Returns [`ReliabilityError`] if `bit >= 72`.
pub fn inject_error(word: EccWord, bit: u32) -> Result<EccWord, ReliabilityError> {
    if bit >= 72 {
        return Err(ReliabilityError::invalid("codeword bit index must be < 72"));
    }
    let mut code = unpack(word);
    code[bit as usize] = !code[bit as usize];
    Ok(pack_check(&code))
}

/// Decodes a word, correcting single-bit and detecting double-bit errors.
#[must_use]
pub fn decode(word: EccWord) -> DecodeOutcome {
    let code = unpack(word);
    // Syndrome: XOR of positions of set bits (excluding overall parity).
    let mut syndrome = 0usize;
    for j in 0..7u32 {
        let p = 1usize << j;
        let parity = (1..72)
            .filter(|&i| i & p != 0)
            .fold(false, |acc, i| acc ^ code[i]);
        if parity {
            syndrome |= p;
        }
    }
    let overall = code.iter().fold(false, |a, &b| a ^ b);
    match (syndrome, overall) {
        (0, false) => DecodeOutcome::Clean(extract(&code)),
        (0, true) => {
            // Error in the overall parity bit itself: data unaffected.
            DecodeOutcome::Corrected(extract(&code))
        }
        (_, true) => {
            // Single-bit error at `syndrome`: flip and extract.
            let mut fixed = code;
            if syndrome < 72 {
                fixed[syndrome] = !fixed[syndrome];
                DecodeOutcome::Corrected(extract(&fixed))
            } else {
                DecodeOutcome::DetectedUncorrectable
            }
        }
        (_, false) => DecodeOutcome::DetectedUncorrectable,
    }
}

fn extract(code: &[bool; 72]) -> u64 {
    let mut data = 0u64;
    for (i, pos) in data_positions().enumerate() {
        if code[pos as usize] {
            data |= 1 << i;
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [
            0u64,
            u64::MAX,
            0xDEAD_BEEF,
            0x5555_5555_5555_5555,
            1,
            1 << 63,
        ] {
            assert_eq!(
                decode(encode(data)),
                DecodeOutcome::Clean(data),
                "{data:#x}"
            );
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let data = 0xCAFE_BABE_1234_5678u64;
        let w = encode(data);
        for bit in 0..72 {
            let corrupted = inject_error(w, bit).unwrap();
            match decode(corrupted) {
                DecodeOutcome::Corrected(d) => assert_eq!(d, data, "bit {bit}"),
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_double_bit_errors() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let w = encode(data);
        for (a, b) in [(0u32, 1u32), (3, 40), (70, 71), (5, 64)] {
            let corrupted = inject_error(inject_error(w, a).unwrap(), b).unwrap();
            assert_eq!(
                decode(corrupted),
                DecodeOutcome::DetectedUncorrectable,
                "bits {a},{b} must be detected"
            );
        }
    }

    #[test]
    fn inject_rejects_out_of_range() {
        assert!(inject_error(encode(0), 72).is_err());
    }

    #[test]
    fn check_bits_differ_across_data() {
        assert_ne!(encode(0).check, encode(1).check);
    }
}
