//! RowHammer disturbance model and mitigations.
//!
//! Models the empirical picture from Kim+ (ISCA 2014) and the revisit study
//! (Kim+, ISCA 2020): activating a row disturbs its physical neighbours;
//! once a victim row's accumulated exposure since its last refresh crosses
//! the device's `HC_first` threshold, bits flip — and the threshold has
//! dropped by ~30x from 2013-era to 2020-era devices.
//!
//! Two mitigations from the literature are provided: probabilistic
//! adjacent-row activation (PARA) and a counter-based target-row-refresh
//! (the Graphene/TRR family).

use rand::Rng;

/// Device vulnerability presets: the minimum hammer count that flips a bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceGeneration {
    /// 2013-era DDR3 (HC_first ≈ 139 000, from the original study).
    Ddr3Y2013,
    /// 2017-era DDR4 (HC_first ≈ 17 500).
    Ddr4Y2017,
    /// 2020-era LPDDR4 (HC_first ≈ 4 800).
    Lpddr4Y2020,
}

impl DeviceGeneration {
    /// The `HC_first` threshold for this generation.
    #[must_use]
    pub fn hc_first(self) -> u64 {
        match self {
            DeviceGeneration::Ddr3Y2013 => 139_000,
            DeviceGeneration::Ddr4Y2017 => 17_500,
            DeviceGeneration::Lpddr4Y2020 => 4_800,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DeviceGeneration::Ddr3Y2013 => "DDR3 (2013)",
            DeviceGeneration::Ddr4Y2017 => "DDR4 (2017)",
            DeviceGeneration::Lpddr4Y2020 => "LPDDR4 (2020)",
        }
    }

    /// All presets, oldest first.
    #[must_use]
    pub fn all() -> [DeviceGeneration; 3] {
        [
            DeviceGeneration::Ddr3Y2013,
            DeviceGeneration::Ddr4Y2017,
            DeviceGeneration::Lpddr4Y2020,
        ]
    }
}

/// A bit-flip event in a victim row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flip {
    /// The victim row that lost data.
    pub victim_row: u64,
    /// Exposure (aggressor activations) at the time of the flip.
    pub exposure: u64,
}

/// Per-bank RowHammer exposure tracker.
///
/// # Examples
///
/// ```
/// use ia_reliability::{DeviceGeneration, RowHammerModel};
/// let mut rh = RowHammerModel::new(DeviceGeneration::Lpddr4Y2020, 1 << 16);
/// let mut flips = 0;
/// for _ in 0..10_000 {
///     flips += rh.record_activation(100).len();
/// }
/// assert!(flips > 0, "hammering past HC_first must flip victim bits");
/// ```
#[derive(Debug, Clone)]
pub struct RowHammerModel {
    threshold: u64,
    rows: u64,
    /// Victim-row exposure since that victim was last refreshed, as a
    /// flat per-row array: the hammer loop touches two neighbours per
    /// activation, and a direct index beats hashing the row id.
    exposure: Vec<u64>,
    /// Total flips observed.
    flips: u64,
    /// Extra refreshes performed by mitigations.
    mitigation_refreshes: u64,
}

impl RowHammerModel {
    /// Creates a model for a device generation and bank size.
    #[must_use]
    pub fn new(generation: DeviceGeneration, rows: u64) -> Self {
        Self::with_threshold(generation.hc_first(), rows)
    }

    /// Creates a model with an explicit `HC_first` threshold.
    #[must_use]
    pub fn with_threshold(threshold: u64, rows: u64) -> Self {
        RowHammerModel {
            threshold: threshold.max(1),
            rows,
            exposure: vec![0; rows as usize],
            flips: 0,
            mitigation_refreshes: 0,
        }
    }

    /// The flip threshold in activations.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Total victim flips recorded.
    #[must_use]
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Refreshes spent by mitigations so far.
    #[must_use]
    pub fn mitigation_refreshes(&self) -> u64 {
        self.mitigation_refreshes
    }

    /// Physical neighbours of a row (blast radius 1).
    fn neighbors(&self, row: u64) -> impl Iterator<Item = u64> {
        let rows = self.rows;
        [
            row.checked_sub(1),
            if row + 1 < rows { Some(row + 1) } else { None },
        ]
        .into_iter()
        .flatten()
    }

    /// Records an activation of `row`, returning any flips it caused.
    ///
    /// Each victim flips once per `threshold` activations of exposure
    /// (first at `HC_first`, again at `2·HC_first`, …), matching the
    /// monotone growth of flip counts with hammer count in the
    /// characterization studies.
    pub fn record_activation(&mut self, row: u64) -> Vec<Flip> {
        let mut flips = Vec::new();
        for victim in self.neighbors(row) {
            let e = &mut self.exposure[victim as usize];
            *e += 1;
            if (*e).is_multiple_of(self.threshold) {
                self.flips += 1;
                flips.push(Flip {
                    victim_row: victim,
                    exposure: *e,
                });
            }
        }
        flips
    }

    /// Refreshes a single row, resetting its exposure (used by targeted
    /// mitigations).
    pub fn refresh_row(&mut self, row: u64) {
        if let Some(e) = self.exposure.get_mut(row as usize) {
            *e = 0;
        }
        self.mitigation_refreshes += 1;
    }

    /// Periodic refresh of the whole bank: all exposure resets.
    pub fn refresh_all(&mut self) {
        self.exposure.fill(0);
    }

    /// Current exposure of a row.
    #[must_use]
    pub fn exposure(&self, row: u64) -> u64 {
        self.exposure.get(row as usize).copied().unwrap_or(0)
    }
}

/// A RowHammer mitigation observing the activate stream.
pub trait Mitigation: std::fmt::Debug {
    /// Called on every activate; returns victim rows to refresh now.
    fn on_activate(&mut self, row: u64, rows: u64, rng: &mut dyn rand::RngCore) -> Vec<u64>;

    /// Called at each periodic refresh interval boundary.
    fn on_refresh_interval(&mut self) {}

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// PARA (Kim+, ISCA 2014): on each activate, refresh each neighbour with
/// a small probability `p`. Stateless, cheap, probabilistic guarantee.
#[derive(Debug, Clone, Copy)]
pub struct Para {
    /// Per-neighbour refresh probability.
    pub probability: f64,
}

impl Para {
    /// Creates PARA with the canonical p = 0.001.
    #[must_use]
    pub fn new() -> Self {
        Para { probability: 0.001 }
    }

    /// Creates PARA with an explicit probability.
    #[must_use]
    pub fn with_probability(probability: f64) -> Self {
        Para {
            probability: probability.clamp(0.0, 1.0),
        }
    }
}

impl Default for Para {
    fn default() -> Self {
        Para::new()
    }
}

impl Mitigation for Para {
    fn on_activate(&mut self, row: u64, rows: u64, rng: &mut dyn rand::RngCore) -> Vec<u64> {
        let mut refreshed = Vec::new();
        for victim in [
            row.checked_sub(1),
            if row + 1 < rows { Some(row + 1) } else { None },
        ]
        .into_iter()
        .flatten()
        {
            if rng.gen_bool(self.probability) {
                refreshed.push(victim);
            }
        }
        refreshed
    }

    fn name(&self) -> &'static str {
        "PARA"
    }
}

/// Counter-based target-row refresh (the Graphene / production-TRR family):
/// a Misra–Gries frequent-elements table tracks hot aggressors; when a
/// tracked aggressor reaches the action threshold, its neighbours are
/// refreshed and the counter resets.
#[derive(Debug, Clone)]
pub struct CounterTrr {
    /// `(row, count)` pairs. The table holds at most a few dozen
    /// counters (that is the hardware budget being modelled), so a
    /// linear scan per activate beats hashing the row id.
    table: Vec<(u64, u64)>,
    capacity: usize,
    action_threshold: u64,
}

impl CounterTrr {
    /// Creates a tracker with `capacity` counters acting at
    /// `action_threshold` activations (set below the device `HC_first`).
    #[must_use]
    pub fn new(capacity: usize, action_threshold: u64) -> Self {
        CounterTrr {
            table: Vec::new(),
            capacity: capacity.max(1),
            action_threshold: action_threshold.max(1),
        }
    }
}

impl Mitigation for CounterTrr {
    fn on_activate(&mut self, row: u64, rows: u64, _rng: &mut dyn rand::RngCore) -> Vec<u64> {
        // Misra–Gries: increment if present or table has room; otherwise
        // decrement everyone (evicting zeros).
        let mut count = 0;
        if let Some(&mut (_, ref mut c)) = self.table.iter_mut().find(|&&mut (r, _)| r == row) {
            *c += 1;
            count = *c;
        } else if self.table.len() < self.capacity {
            self.table.push((row, 1));
            count = 1;
        } else {
            self.table.retain_mut(|&mut (_, ref mut c)| {
                *c -= 1;
                *c > 0
            });
        }
        if count >= self.action_threshold {
            self.table.retain(|&(r, _)| r != row);
            return [
                row.checked_sub(1),
                if row + 1 < rows { Some(row + 1) } else { None },
            ]
            .into_iter()
            .flatten()
            .collect();
        }
        Vec::new()
    }

    fn on_refresh_interval(&mut self) {
        self.table.clear();
    }

    fn name(&self) -> &'static str {
        "Counter-TRR"
    }
}

/// Runs an attack pattern against a model with an optional mitigation,
/// returning `(flips, mitigation_refreshes)`.
///
/// `pattern` yields the aggressor row for each activate.
pub fn run_attack<I, R>(
    model: &mut RowHammerModel,
    mitigation: Option<&mut dyn Mitigation>,
    pattern: I,
    rng: &mut R,
) -> (u64, u64)
where
    I: IntoIterator<Item = u64>,
    R: Rng,
{
    let rows = model.rows;
    let mut mit = mitigation;
    for row in pattern {
        if let Some(m) = mit.as_deref_mut() {
            for victim in m.on_activate(row, rows, rng) {
                model.refresh_row(victim);
            }
        }
        model.record_activation(row);
    }
    (model.flips(), model.mitigation_refreshes())
}

/// Classic double-sided hammer pattern: alternate the two aggressors
/// sandwiching `victim`.
#[must_use]
pub fn double_sided_pattern(victim: u64, activations: u64) -> Vec<u64> {
    (0..activations)
        .map(|i| if i % 2 == 0 { victim - 1 } else { victim + 1 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn thresholds_decline_across_generations() {
        let all = DeviceGeneration::all();
        assert!(all[0].hc_first() > all[1].hc_first());
        assert!(all[1].hc_first() > all[2].hc_first());
        assert!(!all[0].label().is_empty());
    }

    #[test]
    fn no_flips_below_threshold() {
        let mut rh = RowHammerModel::with_threshold(1000, 1 << 10);
        for _ in 0..999 {
            assert!(rh.record_activation(5).is_empty());
        }
        assert_eq!(rh.flips(), 0);
    }

    #[test]
    fn single_sided_flips_both_neighbors_at_threshold() {
        let mut rh = RowHammerModel::with_threshold(10, 1 << 10);
        let mut flips = Vec::new();
        for _ in 0..10 {
            flips.extend(rh.record_activation(5));
        }
        let victims: Vec<u64> = flips.iter().map(|f| f.victim_row).collect();
        assert!(victims.contains(&4) && victims.contains(&6));
        assert_eq!(rh.flips(), 2);
    }

    #[test]
    fn double_sided_reaches_threshold_twice_as_fast() {
        let mut rh = RowHammerModel::with_threshold(100, 1 << 10);
        let pattern = double_sided_pattern(50, 100);
        let mut rng = SmallRng::seed_from_u64(0);
        let (flips, _) = run_attack(&mut rh, None, pattern, &mut rng);
        // Victim 50 accumulates one exposure per activation (from either side).
        assert!(flips >= 1);
        assert_eq!(rh.exposure(50), 100);
    }

    #[test]
    fn periodic_refresh_resets_exposure() {
        let mut rh = RowHammerModel::with_threshold(1000, 1 << 10);
        for _ in 0..500 {
            rh.record_activation(5);
        }
        rh.refresh_all();
        assert_eq!(rh.exposure(4), 0);
        for _ in 0..999 {
            rh.record_activation(5);
        }
        assert_eq!(rh.flips(), 0, "exposure must not survive refresh");
    }

    #[test]
    fn flips_grow_monotonically_with_hammer_count() {
        let mut rh = RowHammerModel::with_threshold(10, 1 << 10);
        for _ in 0..35 {
            rh.record_activation(5);
        }
        // 35 activations → each neighbour flips at 10, 20, 30 → 6 flips.
        assert_eq!(rh.flips(), 6);
    }

    #[test]
    fn edge_rows_have_one_neighbor() {
        let mut rh = RowHammerModel::with_threshold(10, 16);
        for _ in 0..10 {
            rh.record_activation(0);
        }
        assert_eq!(rh.flips(), 1, "row 0 only has neighbour 1");
        for _ in 0..10 {
            rh.record_activation(15);
        }
        assert_eq!(rh.flips(), 2, "row 15 only has neighbour 14");
    }

    #[test]
    fn para_suppresses_flips() {
        let rows = 1 << 10;
        let mut rng = SmallRng::seed_from_u64(7);
        let pattern = double_sided_pattern(50, 200_000);

        let mut unprotected = RowHammerModel::with_threshold(4800, rows);
        let (base_flips, _) = run_attack(&mut unprotected, None, pattern.clone(), &mut rng);

        let mut protected = RowHammerModel::with_threshold(4800, rows);
        let mut para = Para::with_probability(0.01);
        let (para_flips, refreshes) =
            run_attack(&mut protected, Some(&mut para), pattern, &mut rng);

        assert!(base_flips > 0);
        assert!(
            para_flips < base_flips / 10,
            "PARA should suppress flips: {para_flips} vs {base_flips}"
        );
        assert!(refreshes > 0);
    }

    #[test]
    fn counter_trr_stops_a_focused_attack() {
        let rows = 1 << 10;
        let mut rng = SmallRng::seed_from_u64(9);
        let pattern = double_sided_pattern(50, 100_000);
        let mut model = RowHammerModel::with_threshold(4800, rows);
        let mut trr = CounterTrr::new(16, 2000);
        let (flips, _) = run_attack(&mut model, Some(&mut trr), pattern, &mut rng);
        assert_eq!(
            flips, 0,
            "counter TRR acting below HC_first must prevent all flips"
        );
    }

    #[test]
    fn counter_trr_interval_clears_table() {
        let mut trr = CounterTrr::new(4, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..9 {
            assert!(trr.on_activate(5, 100, &mut rng).is_empty());
        }
        trr.on_refresh_interval();
        // Counter reset: 9 more activations still under threshold.
        for _ in 0..9 {
            assert!(trr.on_activate(5, 100, &mut rng).is_empty());
        }
        assert_eq!(trr.name(), "Counter-TRR");
    }

    #[test]
    fn misra_gries_evicts_under_pressure() {
        let mut trr = CounterTrr::new(2, 1000);
        let mut rng = SmallRng::seed_from_u64(2);
        // Fill table with rows 1, 2; row 3 triggers global decrement.
        trr.on_activate(1, 100, &mut rng);
        trr.on_activate(2, 100, &mut rng);
        trr.on_activate(3, 100, &mut rng);
        assert!(trr.table.is_empty(), "all counters decremented to zero");
    }
}
