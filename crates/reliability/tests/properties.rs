//! Property-based tests of the reliability models.

use ia_reliability::{
    decode, encode, inject_error, BloomFilter, DecodeOutcome, Raidr, RetentionProfile,
    RowHammerModel,
};
use proptest::prelude::*;

proptest! {
    /// SECDED corrects any single-bit error on any data word.
    #[test]
    fn ecc_corrects_any_single_bit(data in any::<u64>(), bit in 0u32..72) {
        let w = encode(data);
        let corrupted = inject_error(w, bit).unwrap();
        match decode(corrupted) {
            DecodeOutcome::Corrected(d) => prop_assert_eq!(d, data),
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    /// SECDED detects (never miscorrects) any double-bit error.
    #[test]
    fn ecc_detects_any_double_bit(data in any::<u64>(), a in 0u32..72, b in 0u32..72) {
        prop_assume!(a != b);
        let w = encode(data);
        let corrupted = inject_error(inject_error(w, a).unwrap(), b).unwrap();
        prop_assert_eq!(decode(corrupted), DecodeOutcome::DetectedUncorrectable);
    }

    /// Clean words always decode clean.
    #[test]
    fn ecc_clean_roundtrip(data in any::<u64>()) {
        prop_assert_eq!(decode(encode(data)), DecodeOutcome::Clean(data));
    }

    /// Flipping the same bit twice cancels exactly: the codeword is
    /// pristine again, not merely correctable.
    #[test]
    fn ecc_same_bit_twice_is_clean(data in any::<u64>(), bit in 0u32..72) {
        let w = encode(data);
        let back = inject_error(inject_error(w, bit).unwrap(), bit).unwrap();
        prop_assert_eq!(back, w);
        prop_assert_eq!(decode(back), DecodeOutcome::Clean(data));
    }

    /// Correction restores the *entire* codeword, check bits included:
    /// re-encoding the corrected data reproduces the pristine word, so a
    /// scrub write-back fully heals the array (the property the memory
    /// controller's reliability pipeline depends on).
    #[test]
    fn ecc_correction_heals_the_whole_codeword(data in any::<u64>(), bit in 0u32..72) {
        let corrupted = inject_error(encode(data), bit).unwrap();
        match decode(corrupted) {
            DecodeOutcome::Corrected(d) => prop_assert_eq!(encode(d), encode(data)),
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    /// Injection refuses out-of-range bit positions instead of silently
    /// wrapping onto a valid bit.
    #[test]
    fn ecc_rejects_out_of_range_bits(data in any::<u64>(), bit in 72u32..512) {
        prop_assert!(inject_error(encode(data), bit).is_err());
    }

    /// Bloom filters have no false negatives under any insertion set.
    #[test]
    fn bloom_no_false_negatives(keys in prop::collection::hash_set(0u64..1_000_000, 0..200)) {
        let mut bf = BloomFilter::new(16 * 1024, 4).unwrap();
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    /// RAIDR never under-refreshes: a row's refresh interval (in windows)
    /// never exceeds what its bin allows.
    #[test]
    fn raidr_never_underrefreshes(
        weak64 in prop::collection::btree_set(0u64..256, 0..10),
        weak128 in prop::collection::btree_set(0u64..256, 0..20),
    ) {
        let profile = RetentionProfile {
            rows: 256,
            weak64: weak64.iter().copied().collect(),
            weak128: weak128.iter().copied().collect(),
        };
        let raidr = Raidr::from_profile(&profile).unwrap();
        for row in 0..256u64 {
            let max_gap = match profile.bin(row) {
                ia_reliability::RetentionBin::Ms64 => 1,
                ia_reliability::RetentionBin::Ms128 => 2,
                ia_reliability::RetentionBin::Ms256 => 4,
            };
            let mut last = -1i64;
            for w in 0..16i64 {
                // Bloom false positives can only tighten the schedule,
                // never loosen it.
                if raidr.needs_refresh(row, w as u64) {
                    if last >= 0 {
                        prop_assert!(w - last <= max_gap, "row {row} gap {} > {max_gap}", w - last);
                    }
                    last = w;
                }
            }
            prop_assert!(last >= 0, "every row refreshes at least once per period");
        }
    }

    /// RowHammer flips never occur before the threshold and exposure
    /// resets on refresh, for any interleaving of activates and refreshes.
    #[test]
    fn rowhammer_threshold_is_exact(
        threshold in 2u64..50,
        ops in prop::collection::vec((0u64..16, any::<bool>()), 1..200),
    ) {
        let mut m = RowHammerModel::with_threshold(threshold, 16);
        let mut exposure = std::collections::HashMap::new();
        for (row, refresh) in ops {
            if refresh {
                m.refresh_all();
                exposure.clear();
            } else {
                let flips = m.record_activation(row);
                for v in [row.checked_sub(1), (row + 1 < 16).then_some(row + 1)].into_iter().flatten() {
                    let e = exposure.entry(v).or_insert(0u64);
                    *e += 1;
                    let should_flip = *e % threshold == 0;
                    let did_flip = flips.iter().any(|f| f.victim_row == v);
                    prop_assert_eq!(should_flip, did_flip, "victim {} exposure {}", v, e);
                }
            }
        }
    }
}
