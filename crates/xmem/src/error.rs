//! Error type for the Expressive Memory interface.

use std::error::Error;
use std::fmt;

/// An invalid atom registration or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmemError {
    kind: Kind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    Invalid(&'static str),
    Overlap(u64),
}

impl XmemError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        XmemError {
            kind: Kind::Invalid(msg),
        }
    }

    pub(crate) fn overlap(at: u64) -> Self {
        XmemError {
            kind: Kind::Overlap(at),
        }
    }
}

impl fmt::Display for XmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            Kind::Invalid(msg) => f.write_str(msg),
            Kind::Overlap(at) => write!(f, "atom range overlaps an existing atom near {at:#x}"),
        }
    }
}

impl Error for XmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        fn check<T: Error + Send + Sync>() {}
        check::<XmemError>();
        assert!(!XmemError::invalid("x").to_string().is_empty());
        assert!(XmemError::overlap(0x40).to_string().contains("0x40"));
    }
}
