//! # ia-xmem — Expressive Memory: the data-aware interface
//!
//! The paper's third principle is that architectures should make
//! *data-characteristics-aware* decisions, which requires "efficient and
//! expressive software/hardware interfaces" — exemplified by X-Mem
//! (Vijaykumar+, ISCA 2018). This crate implements that interface:
//!
//! * [`DataAttributes`] — the semantic vocabulary (compressibility,
//!   criticality, access pattern, locality, approximability, error
//!   vulnerability).
//! * [`Atom`] / [`AtomRegistry`] — address-range → attribute mapping with
//!   overlap checking (the hardware-visible atom table).
//! * [`policies`] — adapters that turn attributes into concrete decisions:
//!   cache insertion priority, compression choice, refresh class (EDEN),
//!   and reliability-tier placement.
//!
//! ## Example
//!
//! ```
//! use ia_xmem::{AtomRegistry, Criticality, DataAttributes, Locality};
//! use ia_xmem::policies::insertion_priority;
//!
//! # fn main() -> Result<(), ia_xmem::XmemError> {
//! let mut reg = AtomRegistry::new();
//! reg.register(
//!     0x1000..0x9000,
//!     DataAttributes::new()
//!         .criticality(Criticality::Critical)
//!         .locality(Locality::Reuse),
//! )?;
//! assert_eq!(insertion_priority(&reg.attrs_at(0x2000)), Some(true));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attributes;
mod error;
pub mod policies;
mod registry;
mod vbi;

pub use attributes::{AccessPattern, Compressibility, Criticality, DataAttributes, Locality};
pub use error::XmemError;
pub use policies::{CompressionChoice, DataAwareCache};
pub use registry::{Atom, AtomId, AtomRegistry};
pub use vbi::{BlockId, BlockSize, VblTable, VirtualBlock};
