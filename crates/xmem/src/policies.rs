//! Data-aware policy adapters: how an intelligent architecture "customizes
//! its policies and mechanisms to the characteristics of the data".
//!
//! Each adapter maps attributes to a concrete decision in some substrate:
//! cache insertion priority, compression algorithm choice, refresh class
//! for approximable data (EDEN), and reliability-tier placement.

use ia_cache::{Cache, CacheAccess, CacheOp};

use crate::attributes::{Compressibility, Criticality, DataAttributes, Locality};
use crate::registry::AtomRegistry;

/// Compression engine choice for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionChoice {
    /// Base-Delta-Immediate (best for narrow/pointer data).
    Bdi,
    /// Frequent-Pattern Compression (best for zero-laden words).
    Fpc,
    /// Skip compression (saves latency on incompressible data).
    None,
}

/// Cache-insertion priority for a region: `Some(true)` = high (MRU),
/// `Some(false)` = low (LRU insertion), `None` = let the default policy
/// decide (unknown attributes).
#[must_use]
pub fn insertion_priority(attrs: &DataAttributes) -> Option<bool> {
    match (attrs.criticality, attrs.locality) {
        // Streaming data pollutes: insert at low priority regardless.
        (_, Locality::Streaming) => Some(false),
        // Critical reused data is pinned near MRU.
        (Criticality::Critical, _) => Some(true),
        (_, Locality::Reuse) => Some(true),
        // Tolerant data with unknown locality yields to others.
        (Criticality::Tolerant, Locality::Unknown) => Some(false),
        _ => None,
    }
}

/// Compression algorithm selection by expected compressibility
/// (the HyComp-style data-type-aware choice).
#[must_use]
pub fn compression_choice(attrs: &DataAttributes) -> CompressionChoice {
    match attrs.compressibility {
        Compressibility::High => CompressionChoice::Fpc,
        Compressibility::Medium => CompressionChoice::Bdi,
        Compressibility::Incompressible => CompressionChoice::None,
        Compressibility::Unknown => CompressionChoice::Bdi,
    }
}

/// Refresh-interval multiplier for a region (EDEN, Koppula+ MICRO 2019:
/// approximable DNN data tolerates reduced-refresh DRAM). 1 = nominal.
#[must_use]
pub fn refresh_multiplier(attrs: &DataAttributes) -> u32 {
    if attrs.approximable && attrs.error_vulnerability <= 20 {
        4
    } else if attrs.approximable {
        2
    } else {
        1
    }
}

/// Reliability tier index for heterogeneous-reliability placement:
/// 0 = strongest (chipkill), 1 = ECC, 2 = commodity.
#[must_use]
pub fn reliability_tier(attrs: &DataAttributes) -> usize {
    match attrs.error_vulnerability {
        71..=100 => 0,
        31..=70 => 1,
        _ => 2,
    }
}

/// A cache that consults an [`AtomRegistry`] on every access and applies
/// data-aware insertion — the X-Mem cache-management use case.
#[derive(Debug)]
pub struct DataAwareCache<'a> {
    cache: Cache,
    registry: &'a AtomRegistry,
    /// Accesses whose insertion used an attribute hint.
    pub hinted_fills: u64,
}

impl<'a> DataAwareCache<'a> {
    /// Wraps `cache` with attribute lookups from `registry`.
    #[must_use]
    pub fn new(cache: Cache, registry: &'a AtomRegistry) -> Self {
        DataAwareCache {
            cache,
            registry,
            hinted_fills: 0,
        }
    }

    /// Accesses `addr`, applying the atom's insertion priority if known.
    pub fn access(&mut self, addr: u64, op: CacheOp) -> CacheAccess {
        let attrs = self.registry.attrs_at(addr);
        let priority = insertion_priority(&attrs);
        if priority.is_some() && !self.cache.contains(addr) {
            self.hinted_fills += 1;
        }
        self.cache.access_with_priority(addr, op, priority)
    }

    /// The wrapped cache (for statistics).
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AccessPattern;

    #[test]
    fn streaming_data_gets_low_priority_even_if_critical() {
        let attrs = DataAttributes::new()
            .criticality(Criticality::Critical)
            .locality(Locality::Streaming);
        assert_eq!(insertion_priority(&attrs), Some(false));
    }

    #[test]
    fn critical_reuse_gets_high_priority() {
        let attrs = DataAttributes::new()
            .criticality(Criticality::Critical)
            .locality(Locality::Reuse);
        assert_eq!(insertion_priority(&attrs), Some(true));
    }

    #[test]
    fn unknown_attributes_defer_to_default_policy() {
        assert_eq!(insertion_priority(&DataAttributes::new()), None);
    }

    #[test]
    fn compression_choice_follows_hint() {
        let hi = DataAttributes::new().compressibility(Compressibility::High);
        let med = DataAttributes::new().compressibility(Compressibility::Medium);
        let none = DataAttributes::new().compressibility(Compressibility::Incompressible);
        assert_eq!(compression_choice(&hi), CompressionChoice::Fpc);
        assert_eq!(compression_choice(&med), CompressionChoice::Bdi);
        assert_eq!(compression_choice(&none), CompressionChoice::None);
    }

    #[test]
    fn refresh_multiplier_rewards_approximable_data() {
        let precise = DataAttributes::new();
        let approx = DataAttributes::new()
            .approximable(true)
            .error_vulnerability(10);
        let approx_sensitive = DataAttributes::new()
            .approximable(true)
            .error_vulnerability(60);
        assert_eq!(refresh_multiplier(&precise), 1);
        assert_eq!(refresh_multiplier(&approx), 4);
        assert_eq!(refresh_multiplier(&approx_sensitive), 2);
    }

    #[test]
    fn reliability_tiers_track_vulnerability() {
        assert_eq!(
            reliability_tier(&DataAttributes::new().error_vulnerability(90)),
            0
        );
        assert_eq!(
            reliability_tier(&DataAttributes::new().error_vulnerability(50)),
            1
        );
        assert_eq!(
            reliability_tier(&DataAttributes::new().error_vulnerability(5)),
            2
        );
    }

    #[test]
    fn data_aware_cache_protects_hot_atom_from_streams() {
        // A small cache shared by a reused critical structure and a large
        // stream marked streaming. Without hints the stream thrashes the
        // structure; with hints it cannot.
        let mut reg = AtomRegistry::new();
        reg.register(
            0..4 * 64,
            DataAttributes::new()
                .criticality(Criticality::Critical)
                .locality(Locality::Reuse),
        )
        .unwrap();
        reg.register(
            0x10_0000..0x20_0000,
            DataAttributes::new()
                .locality(Locality::Streaming)
                .pattern(AccessPattern::Sequential),
        )
        .unwrap();

        let hot: Vec<u64> = (0..4u64).map(|i| i * 64).collect();
        let stream: Vec<u64> = (0..512u64).map(|i| 0x10_0000 + i * 64).collect();

        // Oblivious baseline.
        let mut plain = Cache::new(1024, 64, 16).unwrap();
        for &a in &hot {
            plain.access(a, CacheOp::Read);
        }
        for &a in &stream {
            plain.access(a, CacheOp::Read);
        }
        let plain_retained = hot.iter().filter(|&&a| plain.contains(a)).count();

        // Data-aware.
        let mut aware = DataAwareCache::new(Cache::new(1024, 64, 16).unwrap(), &reg);
        for &a in &hot {
            aware.access(a, CacheOp::Read);
        }
        for &a in &stream {
            aware.access(a, CacheOp::Read);
        }
        let aware_retained = hot.iter().filter(|&&a| aware.cache().contains(a)).count();

        assert_eq!(
            plain_retained, 0,
            "oblivious cache loses the hot set to the stream"
        );
        assert_eq!(
            aware_retained, 4,
            "data-aware cache retains the whole hot set"
        );
        assert!(aware.hinted_fills > 0);
    }
}
