//! The Virtual Block Interface (Hajinazar+, ISCA 2020): instead of one
//! flat virtual address space managed by page tables, programs name
//! *virtual blocks* — variable-sized regions with declared semantic
//! properties — and the memory system translates and manages each block
//! according to those properties.
//!
//! This module models the interface: block allocation in a global virtual
//! block space, block-granularity translation to physical memory, and
//! per-block property-directed placement (which physical memory type the
//! block lands in).

use std::collections::HashMap;

use crate::attributes::DataAttributes;
use crate::policies::reliability_tier;
use crate::XmemError;

/// Identifier of a virtual block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Fixed block size classes (the VBI design exposes a small set of
/// power-of-two sizes so translation stays one lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockSize {
    /// 4 KiB.
    Small,
    /// 2 MiB.
    Medium,
    /// 1 GiB.
    Large,
}

impl BlockSize {
    /// Size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            BlockSize::Small => 4 << 10,
            BlockSize::Medium => 2 << 20,
            BlockSize::Large => 1 << 30,
        }
    }
}

/// A virtual block: size class + semantic properties + physical placement.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualBlock {
    /// The block's identifier.
    pub id: BlockId,
    /// Size class.
    pub size: BlockSize,
    /// Declared properties (the VBI "block attributes").
    pub attrs: DataAttributes,
    /// Physical base address assigned by the memory controller.
    pub phys_base: u64,
    /// Physical memory tier chosen from the attributes (0 = most
    /// reliable, 2 = commodity).
    pub tier: usize,
}

/// The system-wide virtual block table: allocation + translation.
///
/// # Examples
///
/// ```
/// use ia_xmem::{BlockSize, DataAttributes, VblTable};
///
/// # fn main() -> Result<(), ia_xmem::XmemError> {
/// let mut vbl = VblTable::new(64 << 20);
/// let id = vbl.allocate(BlockSize::Small, DataAttributes::new())?;
/// let pa = vbl.translate(id, 128)?;
/// assert_eq!(pa % 4096, 128 % 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct VblTable {
    blocks: HashMap<BlockId, VirtualBlock>,
    next_id: u64,
    /// Physical bump allocator per tier.
    next_phys: [u64; 3],
    /// Physical capacity per tier.
    capacity: u64,
}

impl VblTable {
    /// Creates a table with `capacity_per_tier` bytes of physical memory
    /// in each reliability tier.
    #[must_use]
    pub fn new(capacity_per_tier: u64) -> Self {
        VblTable {
            blocks: HashMap::new(),
            next_id: 1,
            next_phys: [0; 3],
            capacity: capacity_per_tier,
        }
    }

    /// Number of live blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Allocates a block, placing it in the physical tier its attributes
    /// demand (error-vulnerability-directed, as in heterogeneous
    /// reliability memory).
    ///
    /// # Errors
    ///
    /// Returns [`XmemError`] if the chosen tier is out of capacity.
    pub fn allocate(
        &mut self,
        size: BlockSize,
        attrs: DataAttributes,
    ) -> Result<BlockId, XmemError> {
        let tier = reliability_tier(&attrs);
        let base = self.next_phys[tier];
        if base + size.bytes() > self.capacity {
            return Err(XmemError::invalid("physical tier out of capacity"));
        }
        self.next_phys[tier] += size.bytes();
        let id = BlockId(self.next_id);
        self.next_id += 1;
        self.blocks.insert(
            id,
            VirtualBlock {
                id,
                size,
                attrs,
                phys_base: base,
                tier,
            },
        );
        Ok(id)
    }

    /// Frees a block.
    pub fn free(&mut self, id: BlockId) -> Option<VirtualBlock> {
        self.blocks.remove(&id)
    }

    /// Looks up a block.
    #[must_use]
    pub fn block(&self, id: BlockId) -> Option<&VirtualBlock> {
        self.blocks.get(&id)
    }

    /// Translates `(block, offset)` to a physical address — a single
    /// lookup, the VBI replacement for the multi-level page walk.
    ///
    /// # Errors
    ///
    /// Returns [`XmemError`] if the block does not exist or `offset` is
    /// outside it.
    pub fn translate(&self, id: BlockId, offset: u64) -> Result<u64, XmemError> {
        let b = self
            .blocks
            .get(&id)
            .ok_or(XmemError::invalid("no such block"))?;
        if offset >= b.size.bytes() {
            return Err(XmemError::invalid("offset outside block"));
        }
        Ok(b.phys_base + offset)
    }

    /// Physical bytes consumed in each tier.
    #[must_use]
    pub fn tier_usage(&self) -> [u64; 3] {
        self.next_phys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::DataAttributes;

    #[test]
    fn allocate_translate_free() {
        let mut vbl = VblTable::new(16 << 20);
        let id = vbl
            .allocate(BlockSize::Small, DataAttributes::new())
            .unwrap();
        assert_eq!(vbl.len(), 1);
        assert!(!vbl.is_empty());
        let pa = vbl.translate(id, 100).unwrap();
        assert_eq!(pa, vbl.block(id).unwrap().phys_base + 100);
        assert!(
            vbl.translate(id, 4096).is_err(),
            "offset beyond a small block"
        );
        let freed = vbl.free(id).unwrap();
        assert_eq!(freed.id, id);
        assert!(vbl.translate(id, 0).is_err());
    }

    #[test]
    fn blocks_do_not_overlap_within_a_tier() {
        let mut vbl = VblTable::new(16 << 20);
        let a = vbl
            .allocate(BlockSize::Small, DataAttributes::new())
            .unwrap();
        let b = vbl
            .allocate(BlockSize::Small, DataAttributes::new())
            .unwrap();
        let (ba, bb) = (vbl.block(a).unwrap(), vbl.block(b).unwrap());
        assert_eq!(ba.tier, bb.tier);
        assert!(bb.phys_base >= ba.phys_base + ba.size.bytes());
    }

    #[test]
    fn vulnerability_directs_tier_placement() {
        let mut vbl = VblTable::new(16 << 20);
        let critical = vbl
            .allocate(
                BlockSize::Small,
                DataAttributes::new().error_vulnerability(95),
            )
            .unwrap();
        let tolerant = vbl
            .allocate(
                BlockSize::Small,
                DataAttributes::new().error_vulnerability(5),
            )
            .unwrap();
        assert_eq!(
            vbl.block(critical).unwrap().tier,
            0,
            "vulnerable data → reliable tier"
        );
        assert_eq!(
            vbl.block(tolerant).unwrap().tier,
            2,
            "tolerant data → commodity tier"
        );
        let usage = vbl.tier_usage();
        assert!(usage[0] > 0 && usage[2] > 0 && usage[1] == 0);
    }

    #[test]
    fn capacity_is_enforced_per_tier() {
        let mut vbl = VblTable::new(8 << 10); // two small blocks per tier
        vbl.allocate(BlockSize::Small, DataAttributes::new())
            .unwrap();
        vbl.allocate(BlockSize::Small, DataAttributes::new())
            .unwrap();
        assert!(vbl
            .allocate(BlockSize::Small, DataAttributes::new())
            .is_err());
        // A different tier still has room.
        assert!(vbl
            .allocate(
                BlockSize::Small,
                DataAttributes::new().error_vulnerability(95)
            )
            .is_ok());
    }

    #[test]
    fn size_classes() {
        assert_eq!(BlockSize::Small.bytes(), 4096);
        assert_eq!(BlockSize::Medium.bytes(), 2 << 20);
        assert_eq!(BlockSize::Large.bytes(), 1 << 30);
    }
}
