//! Atoms and the address→atom registry: X-Mem's mapping from virtual
//! address ranges to semantic attributes.

use std::fmt;
use std::ops::Range;

use crate::attributes::DataAttributes;
use crate::XmemError;

/// Identifier of an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u64);

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atom#{}", self.0)
    }
}

/// An atom: a contiguous data region with one attribute bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The atom's identifier.
    pub id: AtomId,
    /// Byte address range the atom covers.
    pub range: Range<u64>,
    /// Semantic attributes.
    pub attrs: DataAttributes,
}

impl Atom {
    /// Size of the atom in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.range.end - self.range.start
    }

    /// True if the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// The registry: a non-overlapping interval map from addresses to atoms.
///
/// # Examples
///
/// ```
/// use ia_xmem::{AtomRegistry, Criticality, DataAttributes};
/// let mut reg = AtomRegistry::new();
/// let id = reg.register(
///     0x1000..0x2000,
///     DataAttributes::new().criticality(Criticality::Critical),
/// )?;
/// assert_eq!(reg.atom_at(0x1800).map(|a| a.id), Some(id));
/// assert!(reg.atom_at(0x2000).is_none());
/// # Ok::<(), ia_xmem::XmemError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AtomRegistry {
    /// Atoms sorted by range start.
    atoms: Vec<Atom>,
    next_id: u64,
}

impl AtomRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        AtomRegistry::default()
    }

    /// Number of registered atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if no atoms are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Registers an atom over `range` with `attrs`, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`XmemError`] if the range is empty or overlaps an existing
    /// atom.
    pub fn register(
        &mut self,
        range: Range<u64>,
        attrs: DataAttributes,
    ) -> Result<AtomId, XmemError> {
        if range.is_empty() {
            return Err(XmemError::invalid("atom range must be non-empty"));
        }
        let pos = self.atoms.partition_point(|a| a.range.start < range.start);
        // Check neighbours for overlap.
        if pos > 0 && self.atoms[pos - 1].range.end > range.start {
            return Err(XmemError::overlap(range.start));
        }
        if pos < self.atoms.len() && self.atoms[pos].range.start < range.end {
            return Err(XmemError::overlap(range.end));
        }
        let id = AtomId(self.next_id);
        self.next_id += 1;
        self.atoms.insert(pos, Atom { id, range, attrs });
        Ok(id)
    }

    /// Unregisters an atom by id, returning it if present.
    pub fn unregister(&mut self, id: AtomId) -> Option<Atom> {
        let pos = self.atoms.iter().position(|a| a.id == id)?;
        Some(self.atoms.remove(pos))
    }

    /// The atom covering `addr`, if any.
    #[must_use]
    pub fn atom_at(&self, addr: u64) -> Option<&Atom> {
        let pos = self.atoms.partition_point(|a| a.range.start <= addr);
        if pos == 0 {
            return None;
        }
        let atom = &self.atoms[pos - 1];
        atom.range.contains(&addr).then_some(atom)
    }

    /// The attributes at `addr`, defaulting to all-unknown outside atoms
    /// (legacy data has no hints — exactly the X-Mem compatibility story).
    #[must_use]
    pub fn attrs_at(&self, addr: u64) -> DataAttributes {
        self.atom_at(addr)
            .map_or_else(DataAttributes::new, |a| a.attrs)
    }

    /// Iterates over atoms in address order.
    pub fn iter(&self) -> std::slice::Iter<'_, Atom> {
        self.atoms.iter()
    }
}

impl<'a> IntoIterator for &'a AtomRegistry {
    type Item = &'a Atom;
    type IntoIter = std::slice::Iter<'a, Atom>;
    fn into_iter(self) -> Self::IntoIter {
        self.atoms.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Criticality;

    #[test]
    fn register_and_lookup() {
        let mut reg = AtomRegistry::new();
        let a = reg.register(0..100, DataAttributes::new()).unwrap();
        let b = reg
            .register(
                100..200,
                DataAttributes::new().criticality(Criticality::Critical),
            )
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.atom_at(0).unwrap().id, a);
        assert_eq!(reg.atom_at(99).unwrap().id, a);
        assert_eq!(reg.atom_at(100).unwrap().id, b);
        assert!(reg.atom_at(200).is_none());
        assert_eq!(reg.attrs_at(150).criticality, Criticality::Critical);
        assert_eq!(
            reg.attrs_at(500).criticality,
            Criticality::Normal,
            "default outside atoms"
        );
    }

    #[test]
    fn overlaps_are_rejected() {
        let mut reg = AtomRegistry::new();
        reg.register(100..200, DataAttributes::new()).unwrap();
        assert!(reg.register(150..250, DataAttributes::new()).is_err());
        assert!(reg.register(50..101, DataAttributes::new()).is_err());
        assert!(reg.register(100..200, DataAttributes::new()).is_err());
        assert!(
            reg.register(0..100, DataAttributes::new()).is_ok(),
            "adjacent is fine"
        );
        assert!(reg.register(200..300, DataAttributes::new()).is_ok());
    }

    #[test]
    fn empty_range_is_rejected() {
        let mut reg = AtomRegistry::new();
        assert!(reg.register(10..10, DataAttributes::new()).is_err());
    }

    #[test]
    fn unregister_removes_atom() {
        let mut reg = AtomRegistry::new();
        let id = reg.register(0..64, DataAttributes::new()).unwrap();
        let atom = reg.unregister(id).unwrap();
        assert_eq!(atom.len(), 64);
        assert!(!atom.is_empty());
        assert!(reg.atom_at(0).is_none());
        assert!(reg.unregister(id).is_none());
    }

    #[test]
    fn registry_iterates_in_address_order() {
        let mut reg = AtomRegistry::new();
        reg.register(200..300, DataAttributes::new()).unwrap();
        reg.register(0..100, DataAttributes::new()).unwrap();
        let starts: Vec<u64> = reg.iter().map(|a| a.range.start).collect();
        assert_eq!(starts, vec![0, 200]);
        assert_eq!((&reg).into_iter().count(), 2);
    }

    #[test]
    fn atom_id_displays() {
        assert_eq!(AtomId(7).to_string(), "atom#7");
    }
}
