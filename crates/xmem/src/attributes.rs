//! The attribute vocabulary of Expressive Memory (Vijaykumar+, ISCA 2018):
//! the semantic properties of data that are "invisible or unknown to
//! modern hardware and thus need to be communicated or discovered".

/// Expected compressibility of a data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compressibility {
    /// Mostly zeros / repeated values (e.g., freshly allocated buffers).
    High,
    /// Narrow values or clustered pointers.
    Medium,
    /// High-entropy data (encrypted, compressed media).
    Incompressible,
    /// Not communicated; hardware must discover it.
    #[default]
    Unknown,
}

/// Performance/correctness criticality of a data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Criticality {
    /// Loss or delay is tolerable (prefetch buffers, decoded frames).
    Tolerant,
    /// Ordinary data.
    #[default]
    Normal,
    /// On the critical path; latency and integrity matter most.
    Critical,
}

/// Dominant access pattern of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessPattern {
    /// Sequential streaming.
    Sequential,
    /// Fixed stride in bytes.
    Strided(u32),
    /// Irregular/random.
    Random,
    /// Dependent pointer chasing.
    PointerChase,
    /// Not communicated.
    #[default]
    Unknown,
}

/// Temporal reuse behaviour of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Locality {
    /// Touched once (scans): caching it pollutes.
    Streaming,
    /// Re-referenced working set: caching pays.
    Reuse,
    /// Not communicated.
    #[default]
    Unknown,
}

/// The attribute bundle attached to an atom.
///
/// # Examples
///
/// ```
/// use ia_xmem::{AccessPattern, Criticality, DataAttributes, Locality};
/// let attrs = DataAttributes::new()
///     .criticality(Criticality::Critical)
///     .locality(Locality::Reuse)
///     .pattern(AccessPattern::PointerChase);
/// assert_eq!(attrs.criticality, Criticality::Critical);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DataAttributes {
    /// Compressibility hint.
    pub compressibility: Compressibility,
    /// Criticality hint.
    pub criticality: Criticality,
    /// Access-pattern hint.
    pub pattern: AccessPattern,
    /// Locality hint.
    pub locality: Locality,
    /// Whether approximate storage/computation is acceptable (EDEN-style).
    pub approximable: bool,
    /// Error vulnerability in [0, 100]: 0 = fully masked, 100 = any bit
    /// error is fatal (drives heterogeneous-reliability placement).
    pub error_vulnerability: u8,
}

impl DataAttributes {
    /// All-unknown attributes (what legacy software communicates: nothing).
    #[must_use]
    pub fn new() -> Self {
        DataAttributes::default()
    }

    /// Sets the compressibility hint.
    #[must_use]
    pub fn compressibility(mut self, c: Compressibility) -> Self {
        self.compressibility = c;
        self
    }

    /// Sets the criticality hint.
    #[must_use]
    pub fn criticality(mut self, c: Criticality) -> Self {
        self.criticality = c;
        self
    }

    /// Sets the access-pattern hint.
    #[must_use]
    pub fn pattern(mut self, p: AccessPattern) -> Self {
        self.pattern = p;
        self
    }

    /// Sets the locality hint.
    #[must_use]
    pub fn locality(mut self, l: Locality) -> Self {
        self.locality = l;
        self
    }

    /// Marks the data approximable.
    #[must_use]
    pub fn approximable(mut self, yes: bool) -> Self {
        self.approximable = yes;
        self
    }

    /// Sets the error vulnerability (clamped to 100).
    #[must_use]
    pub fn error_vulnerability(mut self, v: u8) -> Self {
        self.error_vulnerability = v.min(100);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_unknown() {
        let a = DataAttributes::new();
        assert_eq!(a.compressibility, Compressibility::Unknown);
        assert_eq!(a.criticality, Criticality::Normal);
        assert_eq!(a.pattern, AccessPattern::Unknown);
        assert_eq!(a.locality, Locality::Unknown);
        assert!(!a.approximable);
        assert_eq!(a.error_vulnerability, 0);
    }

    #[test]
    fn builder_sets_fields() {
        let a = DataAttributes::new()
            .compressibility(Compressibility::High)
            .criticality(Criticality::Tolerant)
            .pattern(AccessPattern::Strided(128))
            .locality(Locality::Streaming)
            .approximable(true)
            .error_vulnerability(250);
        assert_eq!(a.compressibility, Compressibility::High);
        assert_eq!(a.criticality, Criticality::Tolerant);
        assert_eq!(a.pattern, AccessPattern::Strided(128));
        assert_eq!(a.locality, Locality::Streaming);
        assert!(a.approximable);
        assert_eq!(a.error_vulnerability, 100, "vulnerability clamps at 100");
    }

    #[test]
    fn criticality_is_ordered() {
        assert!(Criticality::Tolerant < Criticality::Normal);
        assert!(Criticality::Normal < Criticality::Critical);
    }
}
