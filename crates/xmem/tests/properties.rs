//! Property-based tests for the Expressive Memory interface.

use ia_xmem::{AtomRegistry, BlockSize, Criticality, DataAttributes, Locality, VblTable};
use proptest::prelude::*;

proptest! {
    /// Registering disjoint ranges always succeeds and lookups map every
    /// address to exactly the covering atom.
    #[test]
    fn registry_partitions_the_space(sizes in prop::collection::vec(1u64..10_000, 1..30)) {
        let mut reg = AtomRegistry::new();
        let mut base = 0u64;
        let mut ids = Vec::new();
        for &s in &sizes {
            let id = reg.register(base..base + s, DataAttributes::new()).unwrap();
            ids.push((id, base, base + s));
            base += s;
        }
        prop_assert_eq!(reg.len(), sizes.len());
        for &(id, start, end) in &ids {
            prop_assert_eq!(reg.atom_at(start).unwrap().id, id);
            prop_assert_eq!(reg.atom_at(end - 1).unwrap().id, id);
        }
        prop_assert!(reg.atom_at(base).is_none(), "past the last atom");
    }

    /// Any overlapping registration is rejected and leaves the registry
    /// unchanged.
    #[test]
    fn overlaps_never_corrupt(start in 0u64..1000, len in 1u64..500) {
        let mut reg = AtomRegistry::new();
        reg.register(100..600, DataAttributes::new()).unwrap();
        let overlaps = start < 600 && start + len > 100;
        let result = reg.register(start..start + len, DataAttributes::new());
        prop_assert_eq!(result.is_err(), overlaps, "range {}..{}", start, start + len);
        prop_assert!(reg.atom_at(100).is_some());
        prop_assert!(reg.atom_at(599).is_some());
    }

    /// Attribute lookups outside any atom return the all-unknown default.
    #[test]
    fn default_attrs_outside_atoms(addr in 0u64..10_000) {
        let mut reg = AtomRegistry::new();
        reg.register(20_000..30_000, DataAttributes::new().criticality(Criticality::Critical))
            .unwrap();
        let attrs = reg.attrs_at(addr);
        prop_assert_eq!(attrs.criticality, Criticality::Normal);
        prop_assert_eq!(attrs.locality, Locality::Unknown);
    }

    /// VBI translation is injective: no two (block, offset) pairs map to
    /// the same physical address within a tier.
    #[test]
    fn vbi_translations_never_collide(
        vulns in prop::collection::vec(0u8..=100, 2..20),
        probe in any::<prop::sample::Index>(),
    ) {
        let mut vbl = VblTable::new(1 << 30);
        let mut blocks = Vec::new();
        for &v in &vulns {
            let id = vbl
                .allocate(BlockSize::Small, DataAttributes::new().error_vulnerability(v))
                .unwrap();
            blocks.push(id);
        }
        // Probe one block: its range must not intersect any other block in
        // the same tier.
        let a = blocks[probe.index(blocks.len())];
        let ba = vbl.block(a).unwrap().clone();
        for &b in &blocks {
            if a == b {
                continue;
            }
            let bb = vbl.block(b).unwrap();
            if bb.tier == ba.tier {
                let disjoint = bb.phys_base + bb.size.bytes() <= ba.phys_base
                    || ba.phys_base + ba.size.bytes() <= bb.phys_base;
                prop_assert!(disjoint, "{:?} overlaps {:?}", ba, bb);
            }
        }
        // Offsets translate within the block.
        for off in [0u64, 1, 4095] {
            let pa = vbl.translate(a, off).unwrap();
            prop_assert_eq!(pa, ba.phys_base + off);
        }
    }

    /// Freeing a block makes translation fail but leaves others intact.
    #[test]
    fn vbi_free_is_local(count in 2usize..10, victim in any::<prop::sample::Index>()) {
        let mut vbl = VblTable::new(1 << 24);
        let ids: Vec<_> = (0..count)
            .map(|_| vbl.allocate(BlockSize::Small, DataAttributes::new()).unwrap())
            .collect();
        let v = ids[victim.index(ids.len())];
        vbl.free(v);
        prop_assert!(vbl.translate(v, 0).is_err());
        for &id in &ids {
            if id != v {
                prop_assert!(vbl.translate(id, 0).is_ok());
            }
        }
        prop_assert_eq!(vbl.len(), count - 1);
    }
}
