//! # ia-rand — offline drop-in subset of the `rand` 0.8 API
//!
//! The build must work with **no registry access** (see README,
//! "Offline builds"), so the workspace renames this crate to `rand` via a
//! path dependency instead of pulling crates.io. It reimplements exactly
//! the surface the workspace uses:
//!
//! * [`RngCore`] — object-safe generator core (`next_u32` / `next_u64` /
//!   `fill_bytes`), usable as `&mut dyn RngCore`.
//! * [`Rng`] — blanket extension with `gen`, `gen_range`, `gen_bool`.
//! * [`SeedableRng`] — `seed_from_u64` deterministic construction.
//! * [`rngs::SmallRng`] — xoshiro256++ (Blackman/Vigna), the same
//!   algorithm family real `rand 0.8` uses for `SmallRng` on 64-bit.
//!
//! Sequences are deterministic per seed but not bit-identical to the
//! crates.io implementation; all in-tree tests assert distributional
//! properties, not exact draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
///
/// Object-safe so trait objects (`&mut dyn RngCore`) can be passed across
/// crate boundaries, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
    /// Builds a generator from OS-independent "entropy" (fixed seed —
    /// simulations in this workspace are reproducible by design).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`),
/// mirroring `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, i128 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types samplable by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + (rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (including trait objects), mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` over its standard distribution
    /// (full integer domain, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills `dest` with random data (mirrors `Rng::fill`).
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

/// Buffer types fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for w in self.iter_mut() {
            *w = rng.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// The same algorithm family `rand 0.8` selects for `SmallRng` on
    /// 64-bit targets. Not reproducible against crates.io `rand`, but
    /// deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((0.28..0.32).contains(&(hits as f64 / 100_000.0)));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0u32..8);
        assert!(v < 8);
        let mut bytes = [0u8; 13];
        dyn_rng.fill_bytes(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
    }
}
