//! Error type for the cache substrate.

use std::error::Error;
use std::fmt;

/// An invalid argument or configuration for a cache component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheError {
    msg: &'static str,
}

impl CacheError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        CacheError { msg }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_nonempty_and_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<CacheError>();
        assert!(!CacheError::invalid("bad").to_string().is_empty());
    }
}
