//! Utility-based cache partitioning (Qureshi & Patt, MICRO 2006): shadow
//! utility monitors measure each thread's hits-per-way curve; a partitioner
//! assigns ways to threads by marginal utility; a partitioned cache
//! enforces the quotas.

use crate::error::CacheError;
use crate::set_assoc::{CacheOp, CacheStats};

/// A shadow fully-LRU tag directory that records, for each access, the
/// recency depth at which it would have hit — yielding the hits(ways)
/// utility curve without disturbing the real cache (the UMON).
#[derive(Debug, Clone)]
pub struct UtilityMonitor {
    /// Sampled shadow sets: each is an LRU stack of tags.
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bytes: u64,
    /// `hits_at[d]` = accesses that hit at recency depth `d`.
    hits_at: Vec<u64>,
    accesses: u64,
}

impl UtilityMonitor {
    /// Creates a monitor shadowing `sets` sampled sets of `ways` ways.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if any dimension is zero or `sets` is not a
    /// power of two.
    pub fn new(sets: usize, ways: usize, line_bytes: u64) -> Result<Self, CacheError> {
        if sets == 0 || ways == 0 || line_bytes == 0 {
            return Err(CacheError::invalid("monitor dimensions must be non-zero"));
        }
        if !sets.is_power_of_two() {
            return Err(CacheError::invalid(
                "monitor set count must be a power of two",
            ));
        }
        Ok(UtilityMonitor {
            sets: vec![Vec::new(); sets],
            ways,
            line_bytes,
            hits_at: vec![0; ways],
            accesses: 0,
        })
    }

    /// Records an access.
    pub fn record(&mut self, addr: u64) {
        self.accesses += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let stack = &mut self.sets[set];
        if let Some(depth) = stack.iter().position(|&t| t == tag) {
            self.hits_at[depth] += 1;
            stack.remove(depth);
        } else if stack.len() == self.ways {
            stack.pop();
        }
        stack.insert(0, tag);
    }

    /// Hits this thread would get with an allocation of `ways` ways.
    #[must_use]
    pub fn hits_with_ways(&self, ways: usize) -> u64 {
        self.hits_at.iter().take(ways).sum()
    }

    /// Total recorded accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// Assigns `total_ways` among threads with the UCP *lookahead* algorithm:
/// at each step, every thread reports the best hits-per-way slope over any
/// number of additional ways it could receive; the thread with the
/// steepest slope gets that whole block. Lookahead (unlike pure greedy)
/// crosses utility plateaus, e.g. a thread whose hits only materialize
/// once its full working set fits. Every thread is guaranteed one way.
///
/// # Errors
///
/// Returns [`CacheError`] if `monitors` is empty or `total_ways` is less
/// than the thread count.
pub fn partition_by_utility(
    monitors: &[UtilityMonitor],
    total_ways: usize,
) -> Result<Vec<usize>, CacheError> {
    if monitors.is_empty() {
        return Err(CacheError::invalid("need at least one utility monitor"));
    }
    if total_ways < monitors.len() {
        return Err(CacheError::invalid("need at least one way per thread"));
    }
    let mut alloc = vec![1usize; monitors.len()];
    let mut remaining = total_ways - monitors.len();
    while remaining > 0 {
        // For each thread: best (gain/extra_ways, extra_ways) reachable
        // within the remaining budget.
        let mut best: Option<(usize, usize, f64)> = None; // (thread, extra, slope)
        for (i, m) in monitors.iter().enumerate() {
            let here = m.hits_with_ways(alloc[i]);
            let max_extra = remaining.min(m.ways.saturating_sub(alloc[i]));
            for extra in 1..=max_extra {
                let gain = m.hits_with_ways(alloc[i] + extra) - here;
                let slope = gain as f64 / extra as f64;
                if best.is_none_or(|(_, _, s)| slope > s) {
                    best = Some((i, extra, slope));
                }
            }
        }
        match best {
            Some((i, extra, _)) => {
                alloc[i] += extra;
                remaining -= extra;
            }
            None => {
                // No thread can absorb more ways; spread the remainder.
                alloc[0] += remaining;
                remaining = 0;
            }
        }
    }
    Ok(alloc)
}

/// A way-partitioned shared cache: each thread may occupy at most its
/// quota of ways per set; victims are chosen from over-quota threads
/// first.
#[derive(Debug, Clone)]
pub struct PartitionedCache {
    /// `sets[s]` holds (tag, thread, stamp).
    sets: Vec<Vec<(u64, usize, u64)>>,
    ways: usize,
    line_bytes: u64,
    quotas: Vec<usize>,
    clock: u64,
    /// Per-thread statistics.
    pub thread_stats: Vec<CacheStats>,
}

impl PartitionedCache {
    /// Creates a partitioned cache; `quotas` must sum to `ways`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] on zero dimensions, a non-power-of-two set
    /// count, or quotas that do not sum to the associativity.
    pub fn new(
        sets: usize,
        ways: usize,
        line_bytes: u64,
        quotas: Vec<usize>,
    ) -> Result<Self, CacheError> {
        if sets == 0 || ways == 0 || line_bytes == 0 || quotas.is_empty() {
            return Err(CacheError::invalid(
                "partitioned cache dimensions must be non-zero",
            ));
        }
        if !sets.is_power_of_two() {
            return Err(CacheError::invalid("set count must be a power of two"));
        }
        if quotas.iter().sum::<usize>() != ways {
            return Err(CacheError::invalid("quotas must sum to the associativity"));
        }
        let threads = quotas.len();
        Ok(PartitionedCache {
            sets: vec![Vec::new(); sets],
            ways,
            line_bytes,
            quotas,
            clock: 0,
            thread_stats: vec![CacheStats::default(); threads],
        })
    }

    /// Updates the quotas (e.g., after re-running the partitioner).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if the new quotas do not sum to the ways or
    /// change the thread count.
    pub fn set_quotas(&mut self, quotas: Vec<usize>) -> Result<(), CacheError> {
        if quotas.len() != self.quotas.len() {
            return Err(CacheError::invalid(
                "quota vector must keep the same thread count",
            ));
        }
        if quotas.iter().sum::<usize>() != self.ways {
            return Err(CacheError::invalid("quotas must sum to the associativity"));
        }
        self.quotas = quotas;
        Ok(())
    }

    /// Accesses `addr` on behalf of `thread`. Returns `true` on hit.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn access(&mut self, addr: u64, thread: usize, _op: CacheOp) -> bool {
        self.clock += 1;
        let line = addr / self.line_bytes;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(t, th, _)| *t == tag && *th == thread) {
            entry.2 = self.clock;
            self.thread_stats[thread].hits += 1;
            return true;
        }
        self.thread_stats[thread].misses += 1;
        if set.len() == self.ways {
            // Victim: LRU among threads over quota; else this thread's LRU;
            // else global LRU.
            let mut occupancy = vec![0usize; self.quotas.len()];
            for &(_, th, _) in set.iter() {
                occupancy[th] += 1;
            }
            let victim = set
                .iter()
                .enumerate()
                .filter(|(_, (_, th, _))| occupancy[*th] > self.quotas[*th])
                .min_by_key(|(_, (_, _, stamp))| *stamp)
                .map(|(i, _)| i)
                .or_else(|| {
                    set.iter()
                        .enumerate()
                        .filter(|(_, (_, th, _))| *th == thread)
                        .min_by_key(|(_, (_, _, stamp))| *stamp)
                        .map(|(i, _)| i)
                })
                .unwrap_or_else(|| {
                    set.iter()
                        .enumerate()
                        .min_by_key(|(_, (_, _, stamp))| *stamp)
                        .map(|(i, _)| i)
                        // lint: allow(P001, eviction only runs on a full, non-empty set)
                        .expect("full set")
                });
            self.thread_stats[victim_thread(set, victim)].evictions += 1;
            set.swap_remove(victim);
        }
        set.push((tag, thread, self.clock));
        false
    }
}

fn victim_thread(set: &[(u64, usize, u64)], idx: usize) -> usize {
    set[idx].1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_builds_utility_curve() {
        let mut m = UtilityMonitor::new(1, 4, 64).unwrap();
        // Cyclic access over 2 lines: hits at depth 1 after warmup.
        for _ in 0..10 {
            m.record(0);
            m.record(64);
        }
        assert!(m.hits_with_ways(2) > m.hits_with_ways(1));
        assert_eq!(
            m.hits_with_ways(4),
            m.hits_with_ways(2),
            "no deeper reuse exists"
        );
        assert_eq!(m.accesses(), 20);
    }

    #[test]
    fn monitor_validates() {
        assert!(UtilityMonitor::new(0, 4, 64).is_err());
        assert!(UtilityMonitor::new(4, 0, 64).is_err());
        assert!(UtilityMonitor::new(3, 4, 64).is_err());
    }

    #[test]
    fn partition_gives_ways_to_the_thread_that_uses_them() {
        // Thread A reuses an 8-line set; thread B streams (no reuse).
        let mut a = UtilityMonitor::new(1, 16, 64).unwrap();
        let mut b = UtilityMonitor::new(1, 16, 64).unwrap();
        for _ in 0..20 {
            for i in 0..8u64 {
                a.record(i * 64);
            }
        }
        for i in 0..200u64 {
            b.record(i * 64);
        }
        let alloc = partition_by_utility(&[a, b], 16).unwrap();
        assert!(
            alloc[0] >= 8,
            "reuse thread should win ≥8 ways, got {:?}",
            alloc
        );
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        assert!(alloc[1] >= 1, "every thread keeps at least one way");
    }

    #[test]
    fn partition_validates() {
        let m = UtilityMonitor::new(1, 4, 64).unwrap();
        assert!(partition_by_utility(&[], 4).is_err());
        assert!(partition_by_utility(&[m.clone(), m], 1).is_err());
    }

    #[test]
    fn partitioned_cache_enforces_quota() {
        // 1 set × 4 ways, quotas [3, 1]. Thread 1 streams; thread 0's
        // 3-line working set must keep hitting.
        let mut c = PartitionedCache::new(1, 4, 64, vec![3, 1]).unwrap();
        for _ in 0..5 {
            for i in 0..3u64 {
                c.access(i * 64, 0, CacheOp::Read);
            }
        }
        for i in 100..200u64 {
            c.access(i * 64, 1, CacheOp::Read);
        }
        let before = c.thread_stats[0].hits;
        for i in 0..3u64 {
            c.access(i * 64, 0, CacheOp::Read);
        }
        assert_eq!(
            c.thread_stats[0].hits - before,
            3,
            "quota protected thread 0"
        );
    }

    #[test]
    fn partitioned_cache_validates() {
        assert!(PartitionedCache::new(0, 4, 64, vec![4]).is_err());
        assert!(
            PartitionedCache::new(2, 4, 64, vec![3]).is_err(),
            "quota sum mismatch"
        );
        assert!(
            PartitionedCache::new(3, 4, 64, vec![4]).is_err(),
            "sets not power of two"
        );
        assert!(PartitionedCache::new(2, 4, 64, vec![]).is_err());
    }

    #[test]
    fn set_quotas_revalidates() {
        let mut c = PartitionedCache::new(1, 4, 64, vec![2, 2]).unwrap();
        assert!(c.set_quotas(vec![3, 1]).is_ok());
        assert!(c.set_quotas(vec![4, 1]).is_err());
        assert!(c.set_quotas(vec![4]).is_err());
    }
}
