//! Cache-line compression: Base-Delta-Immediate (Pekhimenko+, PACT 2012)
//! and Frequent Pattern Compression, the paper's data-aware exemplars for
//! "adaptively scaling capability to the compressibility of data".

use crate::error::CacheError;

/// The encoding BDI chose for a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BdiEncoding {
    /// All-zero block.
    Zeros,
    /// One repeated 8-byte value.
    Repeated,
    /// Base of `base` bytes with deltas of `delta` bytes (plus a zero base).
    BaseDelta {
        /// Base width in bytes (8, 4, or 2).
        base: u8,
        /// Delta width in bytes (1, 2, or 4; < base).
        delta: u8,
    },
    /// Incompressible.
    Uncompressed,
}

impl BdiEncoding {
    /// Compressed size in bytes for a 64-byte block under this encoding
    /// (including base storage and the per-segment base-selection mask).
    #[must_use]
    pub fn compressed_bytes(self) -> usize {
        match self {
            BdiEncoding::Zeros => 1,
            BdiEncoding::Repeated => 8,
            BdiEncoding::BaseDelta { base, delta } => {
                let segments = 64 / base as usize;
                // one stored base + per-segment delta + 1-bit mask per segment
                base as usize + segments * delta as usize + segments.div_ceil(8)
            }
            BdiEncoding::Uncompressed => 64,
        }
    }
}

/// Result of compressing one 64-byte block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Compressed {
    /// Chosen encoding.
    pub encoding: BdiEncoding,
    /// Size in bytes.
    pub bytes: usize,
}

impl Compressed {
    /// Compression ratio (64 / size).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        64.0 / self.bytes as f64
    }
}

fn read_segment(block: &[u8], offset: usize, width: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..width {
        v |= u64::from(block[offset + i]) << (8 * i);
    }
    v
}

/// Whether every segment fits `delta`-byte signed deltas against either a
/// zero base or one arbitrary base (BDI's dual-base scheme).
fn try_base_delta(block: &[u8], base_w: usize, delta_w: usize) -> bool {
    let segments = 64 / base_w;
    let limit = 1i128 << (8 * delta_w - 1);
    let fits = |value: u64, base: u64| {
        let d = value as i128 - base as i128;
        // Interpret segment values as unsigned; delta must fit signed width.
        (-limit..limit).contains(&d)
    };
    // The non-zero base is the first segment that does not fit the zero base.
    let mut base: Option<u64> = None;
    for s in 0..segments {
        let v = read_segment(block, s * base_w, base_w);
        if fits(v, 0) {
            continue;
        }
        match base {
            None => base = Some(v),
            Some(b) => {
                if !fits(v, b) {
                    return false;
                }
            }
        }
    }
    true
}

/// Compresses a 64-byte block with BDI, choosing the smallest encoding.
///
/// # Errors
///
/// Returns [`CacheError`] if `block.len() != 64`.
///
/// # Examples
///
/// ```
/// use ia_cache::{bdi_compress, BdiEncoding};
/// let zeros = [0u8; 64];
/// let c = bdi_compress(&zeros)?;
/// assert_eq!(c.encoding, BdiEncoding::Zeros);
/// assert!(c.ratio() > 60.0);
/// # Ok::<(), ia_cache::CacheError>(())
/// ```
pub fn bdi_compress(block: &[u8]) -> Result<Compressed, CacheError> {
    if block.len() != 64 {
        return Err(CacheError::invalid("BDI operates on 64-byte blocks"));
    }
    if block.iter().all(|&b| b == 0) {
        return Ok(Compressed {
            encoding: BdiEncoding::Zeros,
            bytes: 1,
        });
    }
    let first = read_segment(block, 0, 8);
    if (0..8).all(|s| read_segment(block, s * 8, 8) == first) {
        return Ok(Compressed {
            encoding: BdiEncoding::Repeated,
            bytes: 8,
        });
    }
    // Candidate (base, delta) pairs in increasing compressed size.
    let mut best = Compressed {
        encoding: BdiEncoding::Uncompressed,
        bytes: 64,
    };
    for (base_w, delta_w) in [(8usize, 1usize), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1)] {
        let enc = BdiEncoding::BaseDelta {
            base: base_w as u8,
            delta: delta_w as u8,
        };
        let size = enc.compressed_bytes();
        if size < best.bytes && try_base_delta(block, base_w, delta_w) {
            best = Compressed {
                encoding: enc,
                bytes: size,
            };
        }
    }
    Ok(best)
}

/// Frequent Pattern Compression: per-32-bit-word prefix encoding.
///
/// # Errors
///
/// Returns [`CacheError`] if `block.len() != 64`.
pub fn fpc_compress(block: &[u8]) -> Result<Compressed, CacheError> {
    if block.len() != 64 {
        return Err(CacheError::invalid("FPC operates on 64-byte blocks"));
    }
    let mut bits = 0usize;
    for w in 0..16 {
        let v = u32::from_le_bytes([
            block[w * 4],
            block[w * 4 + 1],
            block[w * 4 + 2],
            block[w * 4 + 3],
        ]);
        let payload = if v == 0 {
            0 // zero run (simplified: per word)
        } else if v <= 0xFF || (v as i32) >= -128 && (v as i32) < 0 {
            8 // sign-extended byte
        } else if v <= 0xFFFF
            || ((v as i32) >= -32768 && (v as i32) < 0)
            || v & 0xFFFF == 0
            || ((v >> 8) & 0xFF == (v >> 24) & 0xFF && v & 0xFF == (v >> 16) & 0xFF)
        {
            // halfword classes: sign-extended, zero-padded, repeated bytes
            16
        } else {
            32
        };
        bits += 3 + payload; // 3-bit prefix per word
    }
    let bytes = bits.div_ceil(8);
    if bytes >= 64 {
        Ok(Compressed {
            encoding: BdiEncoding::Uncompressed,
            bytes: 64,
        })
    } else {
        Ok(Compressed {
            encoding: BdiEncoding::Uncompressed,
            bytes,
        })
    }
}

/// Average BDI compression ratio over a sequence of blocks.
///
/// # Errors
///
/// Returns [`CacheError`] if `data` is not a multiple of 64 bytes or empty.
pub fn average_bdi_ratio(data: &[u8]) -> Result<f64, CacheError> {
    if data.is_empty() || !data.len().is_multiple_of(64) {
        return Err(CacheError::invalid(
            "data must be a non-empty multiple of 64 bytes",
        ));
    }
    let mut compressed = 0usize;
    for block in data.chunks_exact(64) {
        compressed += bdi_compress(block)?.bytes;
    }
    Ok(data.len() as f64 / compressed as f64)
}

/// A compressed cache model: a conventional tag/data organization where
/// each set's data space holds a byte budget rather than a way count,
/// letting compressible lines raise effective capacity (as in BDI's
/// "effectively larger cache").
#[derive(Debug, Clone)]
pub struct CompressedCache {
    /// Per-set resident lines: (tag, compressed size, stamp).
    sets: Vec<Vec<(u64, usize, u64)>>,
    set_bytes: usize,
    line_bytes: u64,
    clock: u64,
    /// Hits / misses.
    pub stats: super::CacheStats,
}

impl CompressedCache {
    /// Creates a compressed cache of `size_bytes` organized as `sets` sets.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if dimensions are zero or `sets` is not a
    /// power of two.
    pub fn new(size_bytes: usize, sets: usize, line_bytes: u64) -> Result<Self, CacheError> {
        if size_bytes == 0 || sets == 0 || line_bytes == 0 {
            return Err(CacheError::invalid(
                "compressed cache dimensions must be non-zero",
            ));
        }
        if !sets.is_power_of_two() {
            return Err(CacheError::invalid("set count must be a power of two"));
        }
        Ok(CompressedCache {
            sets: vec![Vec::new(); sets],
            set_bytes: size_bytes / sets,
            line_bytes,
            clock: 0,
            stats: super::CacheStats::default(),
        })
    }

    /// Accesses `addr` whose line contents compress to `compressed_bytes`.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64, compressed_bytes: usize) -> bool {
        self.clock += 1;
        let set_count = self.sets.len() as u64;
        let set = ((addr / self.line_bytes) % set_count) as usize;
        let tag = addr / self.line_bytes / set_count;
        let lines = &mut self.sets[set];
        if let Some(entry) = lines.iter_mut().find(|(t, _, _)| *t == tag) {
            entry.2 = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let size = compressed_bytes.clamp(1, self.line_bytes as usize);
        // Evict LRU lines until the new line fits the set's byte budget.
        let mut used: usize = lines.iter().map(|(_, s, _)| *s).sum();
        while used + size > self.set_bytes && !lines.is_empty() {
            let (idx, _) = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, stamp))| *stamp)
                // lint: allow(P001, loop guard checks !lines.is_empty())
                .expect("non-empty");
            used -= lines[idx].1;
            lines.swap_remove(idx);
            self.stats.evictions += 1;
        }
        if size <= self.set_bytes {
            lines.push((tag, size, self.clock));
        }
        false
    }

    /// Lines currently resident (across all sets).
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of_u64s(vals: [u64; 8]) -> [u8; 64] {
        let mut b = [0u8; 64];
        for (i, v) in vals.iter().enumerate() {
            b[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        b
    }

    #[test]
    fn zeros_compress_to_one_byte() {
        let c = bdi_compress(&[0u8; 64]).unwrap();
        assert_eq!(c.encoding, BdiEncoding::Zeros);
        assert_eq!(c.bytes, 1);
    }

    #[test]
    fn repeated_value_compresses_to_eight_bytes() {
        let b = block_of_u64s([0xDEAD_BEEF; 8]);
        let c = bdi_compress(&b).unwrap();
        assert_eq!(c.encoding, BdiEncoding::Repeated);
        assert_eq!(c.bytes, 8);
    }

    #[test]
    fn nearby_pointers_use_base8_delta() {
        // Heap pointers into the same region: large base, small spread.
        let base = 0x7FFF_1234_5000u64;
        let b = block_of_u64s([
            base,
            base + 64,
            base + 128,
            base + 16,
            base + 200,
            base + 8,
            base + 72,
            base + 96,
        ]);
        let c = bdi_compress(&b).unwrap();
        match c.encoding {
            BdiEncoding::BaseDelta { base: 8, delta } => assert!(delta <= 2),
            other => panic!("expected base8 encoding, got {other:?}"),
        }
        assert!(c.ratio() > 2.0);
    }

    #[test]
    fn narrow_ints_use_small_base() {
        // Small 4-byte counters (values < 128 fit 1-byte deltas vs zero base).
        let mut b = [0u8; 64];
        for i in 0..16 {
            b[i * 4..(i + 1) * 4].copy_from_slice(&(i as u32 % 100).to_le_bytes());
        }
        let c = bdi_compress(&b).unwrap();
        assert!(
            c.bytes < 32,
            "narrow data should compress >2x, got {} bytes",
            c.bytes
        );
    }

    #[test]
    fn random_data_is_incompressible() {
        // A fixed high-entropy pattern.
        let mut b = [0u8; 64];
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        for byte in &mut b {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *byte = (x >> 56) as u8;
        }
        let c = bdi_compress(&b).unwrap();
        assert_eq!(c.encoding, BdiEncoding::Uncompressed);
        assert_eq!(c.bytes, 64);
    }

    #[test]
    fn bdi_rejects_wrong_block_size() {
        assert!(bdi_compress(&[0u8; 32]).is_err());
        assert!(fpc_compress(&[0u8; 63]).is_err());
    }

    #[test]
    fn fpc_compresses_zero_and_narrow_words() {
        let c = fpc_compress(&[0u8; 64]).unwrap();
        assert!(
            c.bytes <= 8,
            "all-zero FPC block should be tiny, got {}",
            c.bytes
        );
        let mut b = [0u8; 64];
        b[0] = 42; // one narrow word, rest zero
        let c = fpc_compress(&b).unwrap();
        assert!(c.bytes < 16);
    }

    #[test]
    fn average_ratio_over_mixed_data() {
        let mut data = Vec::new();
        data.extend_from_slice(&[0u8; 64]); // zeros
        data.extend_from_slice(&block_of_u64s([7; 8])); // repeated
        let r = average_bdi_ratio(&data).unwrap();
        assert!(r > 10.0);
        assert!(average_bdi_ratio(&[]).is_err());
        assert!(average_bdi_ratio(&[0u8; 65]).is_err());
    }

    #[test]
    fn compressed_cache_holds_more_compressible_lines() {
        // 1 set × 256 bytes: four uncompressed lines, many compressed ones.
        let mut incompressible = CompressedCache::new(256, 1, 64).unwrap();
        let mut compressible = CompressedCache::new(256, 1, 64).unwrap();
        for i in 0..8u64 {
            incompressible.access(i * 64, 64);
            compressible.access(i * 64, 16);
        }
        assert!(compressible.resident_lines() > incompressible.resident_lines());
        // Re-touch: compressible cache retains the whole working set.
        let mut hits = 0;
        for i in 0..8u64 {
            if compressible.access(i * 64, 16) {
                hits += 1;
            }
        }
        assert_eq!(hits, 8, "16-byte lines: all 8 fit in 256 bytes");
    }

    #[test]
    fn compressed_cache_validates() {
        assert!(CompressedCache::new(0, 1, 64).is_err());
        assert!(CompressedCache::new(256, 3, 64).is_err());
        assert!(CompressedCache::new(256, 1, 0).is_err());
    }
}
