//! # ia-cache — cache substrate with compression, filtering, partitioning
//!
//! The on-chip storage layer for the `intelligent-arch` system, covering
//! the cache-side mechanisms the paper cites under all three principles:
//!
//! * [`Cache`] — set-associative LRU with pluggable insertion policy
//!   (MRU / LIP / BIP), the substrate everything else builds on.
//! * [`DipCache`] — dynamic insertion via set dueling (data-driven).
//! * [`EafCache`] — Evicted-Address Filter against pollution & thrashing.
//! * [`bdi_compress`] / [`CompressedCache`] — Base-Delta-Immediate
//!   compression (data-aware: "adaptively scale capability to the
//!   compressibility of data").
//! * [`UtilityMonitor`] / [`PartitionedCache`] — utility-based cache
//!   partitioning for multi-programmed fairness.
//!
//! ## Example
//!
//! ```
//! use ia_cache::{bdi_compress, BdiEncoding};
//!
//! # fn main() -> Result<(), ia_cache::CacheError> {
//! // Pointer-like data compresses well under BDI.
//! let mut block = [0u8; 64];
//! for i in 0..8 {
//!     let ptr = 0x7FFF_0000_1000u64 + i * 16;
//!     block[i as usize * 8..][..8].copy_from_slice(&ptr.to_le_bytes());
//! }
//! let c = bdi_compress(&block)?;
//! assert!(c.ratio() > 2.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compress;
mod dip;
mod eaf;
mod error;
mod partition;
mod set_assoc;

pub use compress::{
    average_bdi_ratio, bdi_compress, fpc_compress, BdiEncoding, Compressed, CompressedCache,
};
pub use dip::{static_policies, DipCache};
pub use eaf::{eaf_cache, EafCache};
pub use error::CacheError;
pub use partition::{partition_by_utility, PartitionedCache, UtilityMonitor};
pub use set_assoc::{Cache, CacheAccess, CacheOp, CacheStats, InsertionPolicy};
