//! Set-associative cache with pluggable insertion policy.
//!
//! The replacement stack is LRU; what varies across the published designs
//! the paper cites is the *insertion* position (MRU vs LRU vs bimodal —
//! Qureshi+, ISCA 2007) and whether an external filter demotes insertion
//! priority (the Evicted-Address Filter). Both knobs are exposed here.

use crate::error::CacheError;

/// Load or store, as seen by a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOp {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Where a filled line is inserted in the recency stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertionPolicy {
    /// Traditional: insert at most-recently-used.
    #[default]
    Mru,
    /// LIP: insert at least-recently-used (thrash-resistant).
    Lru,
    /// BIP: insert at MRU with small probability ε, else at LRU.
    Bimodal {
        /// Per-mille probability of an MRU insertion (ε·1000).
        mru_per_mille: u16,
    },
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Evicted dirty line's address, if the fill displaced one (a
    /// writeback the next level must absorb).
    pub writeback: Option<u64>,
    /// Evicted line address (clean or dirty), if any.
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Recency stamp: larger = more recent.
    stamp: u64,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions.
    pub evictions: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; zero if no accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Merges another counter set into this one (e.g. to aggregate the
    /// stats of several cache slices or epochs).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
    }
}

impl ia_telemetry::MetricSource for CacheStats {
    fn export_into(&self, scope: &mut ia_telemetry::Scope<'_>) {
        scope.set_counter("hits", self.hits);
        scope.set_counter("misses", self.misses);
        scope.set_counter("evictions", self.evictions);
        scope.set_counter("writebacks", self.writebacks);
        scope.set_gauge("hit_rate", self.hit_rate());
    }
}

/// A set-associative write-back cache.
///
/// # Examples
///
/// ```
/// use ia_cache::{Cache, CacheOp};
/// let mut c = Cache::new(32 * 1024, 64, 8)?;
/// let miss = c.access(0x1000, CacheOp::Read);
/// let hit = c.access(0x1000, CacheOp::Read);
/// assert!(!miss.hit && hit.hit);
/// # Ok::<(), ia_cache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Option<Line>>>,
    line_bytes: u64,
    ways: usize,
    policy: InsertionPolicy,
    stats: CacheStats,
    clock: u64,
    /// Deterministic counter driving the bimodal choice.
    bip_counter: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `line_bytes` lines and `ways`
    /// associativity, using MRU insertion.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if sizes are zero, not powers of two where
    /// required, or inconsistent (size not divisible by line×ways).
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Result<Self, CacheError> {
        if size_bytes == 0 || line_bytes == 0 || ways == 0 {
            return Err(CacheError::invalid("cache dimensions must be non-zero"));
        }
        if !line_bytes.is_power_of_two() {
            return Err(CacheError::invalid("line size must be a power of two"));
        }
        let lines = size_bytes / line_bytes;
        if lines == 0 || !lines.is_multiple_of(ways as u64) {
            return Err(CacheError::invalid(
                "size must be divisible by line size × ways",
            ));
        }
        let set_count = (lines / ways as u64) as usize;
        if !set_count.is_power_of_two() {
            return Err(CacheError::invalid("set count must be a power of two"));
        }
        Ok(Cache {
            sets: vec![vec![None; ways]; set_count],
            line_bytes,
            ways,
            policy: InsertionPolicy::Mru,
            stats: CacheStats::default(),
            clock: 0,
            bip_counter: 0,
        })
    }

    /// Sets the insertion policy (chainable).
    #[must_use]
    pub fn with_insertion_policy(mut self, policy: InsertionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The insertion policy in use.
    #[must_use]
    pub fn insertion_policy(&self) -> InsertionPolicy {
        self.policy
    }

    /// Mutably changes the insertion policy (for set dueling).
    pub fn set_insertion_policy(&mut self, policy: InsertionPolicy) {
        self.policy = policy;
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of sets.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Set index of an address.
    #[must_use]
    pub fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.sets.len() as u64) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes / self.sets.len() as u64
    }

    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        (tag * self.sets.len() as u64 + set as u64) * self.line_bytes
    }

    /// Whether `addr` is currently cached (no state change).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.sets[set].iter().flatten().any(|l| l.tag == tag)
    }

    /// Accesses `addr`, filling on miss. Returns hit/eviction information.
    pub fn access(&mut self, addr: u64, op: CacheOp) -> CacheAccess {
        self.access_with_priority(addr, op, None)
    }

    /// Accesses `addr` with an explicit insertion override: `Some(true)`
    /// forces MRU insertion, `Some(false)` forces LRU insertion (used by
    /// the EAF and data-aware policies), `None` uses the default policy.
    pub fn access_with_priority(
        &mut self,
        addr: u64,
        op: CacheOp,
        high_priority: Option<bool>,
    ) -> CacheAccess {
        self.clock += 1;
        let set_idx = self.set_of(addr);
        let tag = self.tag_of(addr);
        let set = &mut self.sets[set_idx];

        // Hit path: promote to MRU, mark dirty on write.
        if let Some(line) = set.iter_mut().flatten().find(|l| l.tag == tag) {
            line.stamp = self.clock;
            if op == CacheOp::Write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
                evicted: None,
            };
        }
        self.stats.misses += 1;

        // Miss path: pick a victim (invalid first, else LRU).
        let victim_way = match set.iter().position(Option::is_none) {
            Some(w) => w,
            None => {
                let (w, _) = set
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| l.map(|l| (i, l.stamp)))
                    .min_by_key(|&(_, stamp)| stamp)
                    // lint: allow(P001, position() found no empty way, so every way is Some)
                    .expect("full set has lines");
                w
            }
        };
        let (mut writeback, mut evicted) = (None, None);
        if let Some(old) = set[victim_way] {
            let addr = self.addr_of(set_idx, old.tag);
            evicted = Some(addr);
            if old.dirty {
                writeback = Some(addr);
            }
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
        }

        // Insertion stamp per policy (LRU insertion = oldest stamp in set).
        let mru = match high_priority {
            Some(p) => p,
            None => match self.policy {
                InsertionPolicy::Mru => true,
                InsertionPolicy::Lru => false,
                InsertionPolicy::Bimodal { mru_per_mille } => {
                    self.bip_counter = self.bip_counter.wrapping_add(1);
                    (self.bip_counter % 1000) < u64::from(mru_per_mille)
                }
            },
        };
        let set = &mut self.sets[set_idx];
        let stamp = if mru {
            self.clock
        } else {
            // One below the current minimum: next miss evicts this line
            // unless it is re-referenced (which promotes it).
            set.iter()
                .flatten()
                .map(|l| l.stamp)
                .min()
                .unwrap_or(1)
                .saturating_sub(1)
        };
        set[victim_way] = Some(Line {
            tag,
            dirty: op == CacheOp::Write,
            stamp,
        });
        CacheAccess {
            hit: false,
            writeback,
            evicted,
        }
    }

    /// Invalidates `addr` if present; returns `true` if a dirty line was
    /// dropped (caller must write it back).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for slot in &mut self.sets[set] {
            if let Some(line) = slot {
                if line.tag == tag {
                    let dirty = line.dirty;
                    *slot = None;
                    return dirty;
                }
            }
        }
        false
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.iter_mut().for_each(|l| *l = None);
        }
        self.stats = CacheStats::default();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_export() {
        let mut c = tiny();
        c.access(0x0, CacheOp::Read);
        c.access(0x0, CacheOp::Read);
        c.access(0x40, CacheOp::Write);
        let mut total = CacheStats::default();
        total.merge(c.stats());
        total.merge(c.stats());
        assert_eq!(total.accesses(), 6);

        let mut reg = ia_telemetry::Registry::new();
        reg.collect("llc", c.stats());
        let snap = reg.snapshot(0);
        assert_eq!(snap.counter("llc.hits"), Some(1));
        assert_eq!(snap.counter("llc.misses"), Some(2));
        assert!((snap.gauge("llc.hit_rate").unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(512, 64, 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Cache::new(0, 64, 4).is_err());
        assert!(Cache::new(1024, 0, 4).is_err());
        assert!(Cache::new(1024, 64, 0).is_err());
        assert!(Cache::new(1024, 48, 4).is_err(), "line not power of two");
        assert!(
            Cache::new(64 * 3, 64, 1).is_err(),
            "3 sets not a power of two"
        );
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x0, CacheOp::Read).hit);
        assert!(c.access(0x0, CacheOp::Read).hit);
        assert!(c.contains(0x0));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_set_conflict_evicts_lru() {
        let mut c = tiny();
        // Set stride = 4 sets × 64 = 256 bytes; these three map to set 0.
        c.access(0, CacheOp::Read);
        c.access(256, CacheOp::Read);
        c.access(0, CacheOp::Read); // 0 is now MRU
        let r = c.access(512, CacheOp::Read); // evicts 256
        assert_eq!(r.evicted, Some(256));
        assert!(c.contains(0));
        assert!(!c.contains(256));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        c.access(0, CacheOp::Write);
        c.access(256, CacheOp::Read);
        let r = c.access(512, CacheOp::Read); // evicts 0 (LRU, dirty)
        assert_eq!(r.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, CacheOp::Read);
        c.access(256, CacheOp::Read);
        let r = c.access(512, CacheOp::Read);
        assert_eq!(r.evicted, Some(0));
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn lru_insertion_is_thrash_resistant() {
        // Working set of 3 lines cycling through a 2-way set: MRU insertion
        // yields zero hits; LRU insertion lets part of the set stick.
        let run = |policy: InsertionPolicy| {
            let mut c = Cache::new(128, 64, 2)
                .unwrap()
                .with_insertion_policy(policy);
            for _ in 0..100 {
                for addr in [0u64, 128, 256] {
                    c.access(addr, CacheOp::Read);
                }
            }
            c.stats().hits
        };
        let mru_hits = run(InsertionPolicy::Mru);
        let lip_hits = run(InsertionPolicy::Lru);
        assert_eq!(mru_hits, 0, "cyclic thrash defeats MRU insertion");
        assert!(
            lip_hits > 50,
            "LIP must retain part of the working set: {lip_hits}"
        );
    }

    #[test]
    fn bimodal_occasionally_inserts_mru() {
        let mut c = Cache::new(128, 64, 2)
            .unwrap()
            .with_insertion_policy(InsertionPolicy::Bimodal { mru_per_mille: 500 });
        for i in 0..100u64 {
            c.access(i * 128, CacheOp::Read);
        }
        assert_eq!(c.stats().misses, 100);
    }

    #[test]
    fn priority_override_pins_hot_line() {
        let mut c = Cache::new(128, 64, 2).unwrap();
        c.access_with_priority(0, CacheOp::Read, Some(true));
        // Low-priority fills should evict each other, not the pinned line.
        for i in 1..50u64 {
            c.access_with_priority(i * 128, CacheOp::Read, Some(false));
        }
        assert!(
            c.contains(0),
            "high-priority line survived low-priority churn"
        );
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(0, CacheOp::Write);
        assert!(c.invalidate(0));
        assert!(!c.contains(0));
        c.access(64, CacheOp::Read);
        assert!(!c.invalidate(64));
        assert!(!c.invalidate(0x9999));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0, CacheOp::Write);
        c.reset();
        assert!(!c.contains(0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        c.access(0, CacheOp::Read);
        c.access(0, CacheOp::Read);
        c.access(0, CacheOp::Read);
        c.access(64, CacheOp::Read);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
