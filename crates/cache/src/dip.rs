//! Dynamic Insertion Policy via set dueling (Qureshi+, ISCA 2007): a few
//! leader sets always use MRU insertion, a few always use bimodal
//! insertion; a saturating policy-selector counter steers all follower
//! sets to whichever leader group misses less. An early, concrete instance
//! of the paper's "data-driven, self-optimizing" controller principle.

use crate::error::CacheError;
use crate::set_assoc::{Cache, CacheAccess, CacheOp, InsertionPolicy};

/// Which dueling group a set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    LeaderMru,
    LeaderBip,
    Follower,
}

/// A cache that picks its insertion policy by set dueling.
///
/// # Examples
///
/// ```
/// use ia_cache::{DipCache, CacheOp};
/// let mut c = DipCache::new(4096, 64, 4)?;
/// c.access(0, CacheOp::Read);
/// assert!(c.psel() <= c.psel_max());
/// # Ok::<(), ia_cache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DipCache {
    cache: Cache,
    roles: Vec<SetRole>,
    /// Saturating selector: high favours BIP, low favours MRU.
    psel: u32,
    psel_max: u32,
    bip_mru_per_mille: u16,
    bip_tick: u64,
}

impl DipCache {
    /// Creates a DIP cache; every 32nd set leads for MRU, offset by 16 for
    /// BIP (the constituency pattern from the paper, scaled down for small
    /// caches).
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError`] from [`Cache::new`].
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Result<Self, CacheError> {
        let cache = Cache::new(size_bytes, line_bytes, ways)?;
        let sets = cache.set_count();
        let stride = if sets >= 32 { 32 } else { 2 };
        let roles = (0..sets)
            .map(|s| {
                if s % stride == 0 {
                    SetRole::LeaderMru
                } else if s % stride == stride / 2 {
                    SetRole::LeaderBip
                } else {
                    SetRole::Follower
                }
            })
            .collect();
        Ok(DipCache {
            cache,
            roles,
            psel: 512,
            psel_max: 1024,
            bip_mru_per_mille: 32,
            bip_tick: 0,
        })
    }

    /// Current policy-selector value.
    #[must_use]
    pub fn psel(&self) -> u32 {
        self.psel
    }

    /// Selector saturation bound.
    #[must_use]
    pub fn psel_max(&self) -> u32 {
        self.psel_max
    }

    /// `true` when followers currently use bimodal insertion.
    #[must_use]
    pub fn followers_use_bip(&self) -> bool {
        self.psel < self.psel_max / 2
    }

    /// The wrapped cache (for statistics).
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    fn bip_high_priority(&mut self) -> bool {
        self.bip_tick = self.bip_tick.wrapping_add(1);
        (self.bip_tick % 1000) < u64::from(self.bip_mru_per_mille)
    }

    /// Accesses the cache, updating the duel on leader-set misses.
    pub fn access(&mut self, addr: u64, op: CacheOp) -> CacheAccess {
        let set = self.cache.set_of(addr);
        let role = self.roles[set];
        let hit = self.cache.contains(addr);
        if !hit {
            match role {
                // A miss in an MRU leader argues for BIP, and vice versa.
                SetRole::LeaderMru => self.psel = self.psel.saturating_sub(1),
                SetRole::LeaderBip => self.psel = (self.psel + 1).min(self.psel_max),
                SetRole::Follower => {}
            }
        }
        let priority = match role {
            SetRole::LeaderMru => Some(true),
            SetRole::LeaderBip => Some(self.bip_high_priority()),
            SetRole::Follower => {
                if self.followers_use_bip() {
                    Some(self.bip_high_priority())
                } else {
                    Some(true)
                }
            }
        };
        self.cache.access_with_priority(addr, op, priority)
    }
}

/// Reference insertion policies for comparison harnesses.
#[must_use]
pub fn static_policies() -> [(&'static str, InsertionPolicy); 3] {
    [
        ("MRU (LRU cache)", InsertionPolicy::Mru),
        ("LIP", InsertionPolicy::Lru),
        (
            "BIP(ε=1/32)",
            InsertionPolicy::Bimodal { mru_per_mille: 32 },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_roles() {
        let c = DipCache::new(64 * 64 * 2, 64, 2).unwrap(); // 64 sets
        let mru = c.roles.iter().filter(|r| **r == SetRole::LeaderMru).count();
        let bip = c.roles.iter().filter(|r| **r == SetRole::LeaderBip).count();
        assert!(mru >= 1 && bip >= 1);
        assert!(c.roles.iter().filter(|r| **r == SetRole::Follower).count() > mru + bip);
    }

    #[test]
    fn thrashing_workload_drives_selector_toward_bip() {
        // Working set larger than the cache, cycled: MRU leaders miss
        // every time, BIP leaders retain a fraction.
        let mut c = DipCache::new(4096, 64, 4).unwrap(); // 16 sets
        let lines = 4096 / 64 * 3; // 3x capacity
        for _ in 0..60 {
            for i in 0..lines {
                c.access(i * 64, CacheOp::Read);
            }
        }
        assert!(
            c.followers_use_bip(),
            "thrash must push PSEL toward BIP, psel={}",
            c.psel()
        );
    }

    #[test]
    fn reuse_friendly_workload_keeps_mru() {
        let mut c = DipCache::new(4096, 64, 4).unwrap();
        for _ in 0..200 {
            for i in 0..16u64 {
                c.access(i * 64, CacheOp::Read);
            }
        }
        assert!(
            !c.followers_use_bip(),
            "LRU-friendly workload should keep MRU insertion"
        );
    }

    #[test]
    fn dip_beats_worst_static_policy_under_thrash() {
        let lines: Vec<u64> = (0..4096 / 64 * 3).map(|i| i * 64).collect();
        let run_static = |policy| {
            let mut c = Cache::new(4096, 64, 4)
                .unwrap()
                .with_insertion_policy(policy);
            for _ in 0..60 {
                for &a in &lines {
                    c.access(a, CacheOp::Read);
                }
            }
            c.stats().hit_rate()
        };
        let mru = run_static(InsertionPolicy::Mru);
        let mut dip = DipCache::new(4096, 64, 4).unwrap();
        for _ in 0..60 {
            for &a in &lines {
                dip.access(a, CacheOp::Read);
            }
        }
        let dip_rate = dip.cache().stats().hit_rate();
        assert!(
            dip_rate > mru,
            "DIP {dip_rate:.3} must beat MRU {mru:.3} under thrash"
        );
    }

    #[test]
    fn static_policy_list_is_complete() {
        assert_eq!(static_policies().len(), 3);
    }
}
