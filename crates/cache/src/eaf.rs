//! Evicted-Address Filter (Seshadri+, PACT 2012): a Bloom filter of
//! recently evicted addresses distinguishes high-reuse blocks (recently
//! evicted, now re-fetched → insert at high priority) from pollution
//! (never seen → insert at low priority), addressing both cache pollution
//! and thrashing with one mechanism.

use crate::error::CacheError;
use crate::set_assoc::{Cache, CacheAccess, CacheOp};

/// A compact Bloom filter over block addresses.
#[derive(Debug, Clone)]
struct AddrBloom {
    bits: Vec<u64>,
    m: usize,
    insertions: usize,
    capacity: usize,
}

impl AddrBloom {
    fn new(bits: usize, capacity: usize) -> Self {
        AddrBloom {
            bits: vec![0; bits.div_ceil(64)],
            m: bits,
            insertions: 0,
            capacity,
        }
    }

    fn positions(&self, key: u64) -> [usize; 2] {
        let h1 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h2 = key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1;
        [
            (h1 % self.m as u64) as usize,
            (h1.wrapping_add(h2) % self.m as u64) as usize,
        ]
    }

    fn insert(&mut self, key: u64) {
        for p in self.positions(key) {
            self.bits[p / 64] |= 1 << (p % 64);
        }
        self.insertions += 1;
        // Hardware EAF clears the filter when it saturates.
        if self.insertions >= self.capacity {
            self.bits.iter_mut().for_each(|w| *w = 0);
            self.insertions = 0;
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .iter()
            .all(|&p| self.bits[p / 64] & (1 << (p % 64)) != 0)
    }
}

/// A cache wrapped with an Evicted-Address Filter.
///
/// # Examples
///
/// ```
/// use ia_cache::{Cache, EafCache, CacheOp};
/// let inner = Cache::new(4096, 64, 4)?;
/// let mut eaf = EafCache::new(inner);
/// eaf.access(0x1000, CacheOp::Read);
/// assert!(eaf.cache().stats().misses >= 1);
/// # Ok::<(), ia_cache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EafCache {
    cache: Cache,
    filter: AddrBloom,
    /// Fills inserted at high priority (filter hits).
    pub reuse_fills: u64,
    /// Fills inserted at low priority (first-touch / pollution).
    pub pollution_fills: u64,
}

impl EafCache {
    /// Wraps `cache` with an EAF sized to the cache (filter capacity equal
    /// to the number of cache lines, as in the paper).
    #[must_use]
    pub fn new(cache: Cache) -> Self {
        let lines = cache.set_count() * cache.ways();
        let filter = AddrBloom::new((lines * 16).max(64), lines.max(8));
        EafCache {
            cache,
            filter,
            reuse_fills: 0,
            pollution_fills: 0,
        }
    }

    /// Accesses the cache with EAF-guided insertion.
    pub fn access(&mut self, addr: u64, op: CacheOp) -> CacheAccess {
        let line = addr / self.cache.line_bytes();
        let predicted_reuse = self.filter.contains(line);
        let was_cached = self.cache.contains(addr);
        let result = if was_cached {
            self.cache.access(addr, op)
        } else {
            if predicted_reuse {
                self.reuse_fills += 1;
            } else {
                self.pollution_fills += 1;
            }
            self.cache
                .access_with_priority(addr, op, Some(predicted_reuse))
        };
        if let Some(evicted) = result.evicted {
            self.filter.insert(evicted / self.cache.line_bytes());
        }
        result
    }

    /// The wrapped cache (for statistics).
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

/// Builds an EAF cache directly from geometry.
///
/// # Errors
///
/// Propagates [`CacheError`] from [`Cache::new`].
pub fn eaf_cache(size_bytes: u64, line_bytes: u64, ways: usize) -> Result<EafCache, CacheError> {
    Ok(EafCache::new(Cache::new(size_bytes, line_bytes, ways)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_pollution_does_not_destroy_hot_set() {
        // Hot working set of 4 lines + a long one-shot scan. EAF must keep
        // the hot lines resident; a plain MRU cache loses them.
        let hot: Vec<u64> = (0..4u64).map(|i| i * 64).collect();
        let scan: Vec<u64> = (100..612u64).map(|i| i * 64).collect();

        let run_plain = {
            let mut c = Cache::new(1024, 64, 16).unwrap();
            for _ in 0..10 {
                for &a in &hot {
                    c.access(a, CacheOp::Read);
                }
            }
            for &a in &scan {
                c.access(a, CacheOp::Read);
            }
            let before = c.stats().hits;
            for &a in &hot {
                c.access(a, CacheOp::Read);
            }
            c.stats().hits - before
        };

        let run_eaf = {
            let mut c = EafCache::new(Cache::new(1024, 64, 16).unwrap());
            for _ in 0..10 {
                for &a in &hot {
                    c.access(a, CacheOp::Read);
                }
            }
            for &a in &scan {
                c.access(a, CacheOp::Read);
            }
            let before = c.cache().stats().hits;
            for &a in &hot {
                c.access(a, CacheOp::Read);
            }
            c.cache().stats().hits - before
        };

        assert!(
            run_eaf >= run_plain,
            "EAF {run_eaf} hits vs plain {run_plain}"
        );
        assert_eq!(run_eaf, 4, "all four hot lines must survive the scan");
    }

    #[test]
    fn refetched_evicted_blocks_get_high_priority() {
        let mut c = EafCache::new(Cache::new(256, 64, 4).unwrap());
        // Fill beyond capacity so early lines are evicted...
        for i in 0..8u64 {
            c.access(i * 64, CacheOp::Read);
        }
        let pollution_before = c.pollution_fills;
        // ...then refetch an evicted line: the filter recognises it.
        c.access(0, CacheOp::Read);
        assert!(
            c.reuse_fills >= 1,
            "refetch of evicted line must be classified as reuse"
        );
        assert_eq!(c.pollution_fills, pollution_before);
    }

    #[test]
    fn first_touch_is_pollution() {
        let mut c = EafCache::new(Cache::new(256, 64, 4).unwrap());
        c.access(0x5000, CacheOp::Read);
        assert_eq!(c.pollution_fills, 1);
        assert_eq!(c.reuse_fills, 0);
    }

    #[test]
    fn bloom_resets_after_capacity() {
        let mut b = AddrBloom::new(128, 4);
        for k in 0..4u64 {
            b.insert(k);
        }
        // The 4th insertion triggered the reset.
        assert!(!b.contains(0));
    }

    #[test]
    fn helper_constructor_validates() {
        assert!(eaf_cache(0, 64, 4).is_err());
        assert!(eaf_cache(4096, 64, 4).is_ok());
    }
}
