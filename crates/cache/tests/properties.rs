//! Property-based tests of the cache substrate.

use ia_cache::{bdi_compress, Cache, CacheOp, CompressedCache, InsertionPolicy};
use proptest::prelude::*;

proptest! {
    /// BDI output size is always in [1, 64] and zero blocks are minimal.
    #[test]
    fn bdi_size_bounds(block in prop::array::uniform32(any::<u8>())) {
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&block);
        full[32..].copy_from_slice(&block);
        let c = bdi_compress(&full).unwrap();
        prop_assert!(c.bytes >= 1 && c.bytes <= 64);
        prop_assert!(c.ratio() >= 1.0);
    }

    /// An accessed line is always resident immediately afterwards (MRU
    /// insertion), and a second access hits.
    #[test]
    fn access_then_hit(addrs in prop::collection::vec(0u64..(1 << 16), 1..64)) {
        let mut c = Cache::new(8192, 64, 4).unwrap();
        for a in addrs {
            c.access(a, CacheOp::Read);
            prop_assert!(c.contains(a));
            prop_assert!(c.access(a, CacheOp::Read).hit);
        }
    }

    /// The hit + miss counters always equal the access count, hit rate is
    /// a probability, and evictions never exceed misses.
    #[test]
    fn counter_invariants(
        addrs in prop::collection::vec(0u64..(1 << 14), 1..200),
        writes in any::<u64>(),
    ) {
        let mut c = Cache::new(2048, 64, 2).unwrap();
        for (i, a) in addrs.iter().enumerate() {
            let op = if writes >> (i % 64) & 1 == 1 { CacheOp::Write } else { CacheOp::Read };
            c.access(*a, op);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
        prop_assert!(s.evictions <= s.misses);
        prop_assert!(s.writebacks <= s.evictions);
    }

    /// A working set no larger than one set's ways never conflicts, under
    /// any access order.
    #[test]
    fn small_working_set_never_evicts(perm in prop::collection::vec(0usize..4, 8..64)) {
        // 4-way cache; 4 lines in the same set.
        let mut c = Cache::new(64 * 4 * 8, 64, 4).unwrap();
        let set_stride = 64 * 8;
        let lines: Vec<u64> = (0..4u64).map(|i| i * set_stride).collect();
        for &i in &perm {
            c.access(lines[i], CacheOp::Read);
        }
        prop_assert_eq!(c.stats().evictions, 0);
        for &l in &lines[..] {
            if perm.iter().any(|&i| lines[i] == l) {
                prop_assert!(c.contains(l));
            }
        }
    }

    /// Writebacks only happen for lines that were written.
    #[test]
    fn clean_lines_never_write_back(addrs in prop::collection::vec(0u64..(1 << 14), 1..100)) {
        let mut c = Cache::new(1024, 64, 2).unwrap();
        for a in addrs {
            let r = c.access(a, CacheOp::Read);
            prop_assert_eq!(r.writeback, None, "read-only traffic cannot dirty lines");
        }
    }

    /// LIP insertion never outperforms its own associativity: the cache
    /// holds at most ways × sets lines regardless of policy.
    #[test]
    fn occupancy_never_exceeds_capacity(
        addrs in prop::collection::vec(0u64..(1 << 16), 1..150),
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => InsertionPolicy::Mru,
            1 => InsertionPolicy::Lru,
            _ => InsertionPolicy::Bimodal { mru_per_mille: 100 },
        };
        let mut c = Cache::new(1024, 64, 4).unwrap().with_insertion_policy(policy);
        for &a in &addrs {
            c.access(a, CacheOp::Read);
        }
        let mut lines: Vec<u64> = addrs.iter().map(|a| a & !63).collect();
        lines.sort_unstable();
        lines.dedup();
        let resident = lines.iter().filter(|&&a| c.contains(a)).count();
        prop_assert!(resident <= 16, "1 KiB / 64 B = 16 lines max, got {resident}");
    }

    /// The compressed cache never stores more bytes per set than its
    /// budget allows.
    #[test]
    fn compressed_cache_respects_budget(
        ops in prop::collection::vec((0u64..(1 << 12), 1usize..64), 1..100),
    ) {
        let mut c = CompressedCache::new(512, 2, 64).unwrap();
        for (addr, size) in ops {
            c.access(addr * 64, size);
        }
        // resident_lines × min-size must fit the total budget as a sanity
        // bound (tighter per-set checks are inside the implementation).
        prop_assert!(c.resident_lines() <= 512);
    }
}
