//! Error type for the NoC models.

use std::error::Error;
use std::fmt;

/// An invalid argument to a NoC simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocError {
    msg: &'static str,
}

impl NocError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        NocError { msg }
    }
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_nonempty_and_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<NocError>();
        assert!(!NocError::invalid("bad").to_string().is_empty());
    }
}
