//! # ia-noc — on-chip network models
//!
//! The paper's §III indicts the "network controller" along with the other
//! fixed-policy controllers, and its reference list carries the bufferless
//! routing line (BLESS, ISCA 2009; CHIPPER, HPCA 2011; MinBD, NOCS 2012):
//! a data-centric rethink of the on-chip network that deletes the buffers
//! — the dominant router cost — by letting flits deflect instead of wait.
//!
//! This crate provides a cycle-level single-flit mesh simulator with two
//! router microarchitectures ([`RouterKind::Buffered`] input-queued XY vs
//! [`RouterKind::BufferlessDeflection`]) and the standard synthetic
//! traffic patterns, reproducing the classic latency-vs-load comparison.
//!
//! ## Example
//!
//! ```
//! use ia_noc::{simulate, MeshConfig, RouterKind, Traffic};
//!
//! # fn main() -> Result<(), ia_noc::NocError> {
//! let mesh = MeshConfig::new(4, 4)?;
//! let r = simulate(RouterKind::BufferlessDeflection, mesh,
//!                  Traffic::UniformRandom, 0.05, 2000, 7)?;
//! assert!(r.delivered > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod mesh;
mod sim;

pub use error::NocError;
pub use mesh::{Coord, MeshConfig, Port, Ports, PortsIter, RouteTable};
pub use sim::{
    simulate, simulate_traced, BufferedMeshSim, BufferlessMeshSim, Delivered, NocReport,
    RouterKind, Traffic,
};
