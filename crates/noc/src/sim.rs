//! Cycle-level simulation of two router classes:
//!
//! * **Buffered XY** — input-queued routers with dimension-order routing:
//!   the conventional design whose buffers dominate NoC area/power.
//! * **Bufferless deflection** (BLESS, Moscibroda & Mutlu ISCA 2009;
//!   CHIPPER, Fallin+ HPCA 2011) — no buffers at all: flits always move,
//!   age-prioritized, mis-routed ("deflected") on port conflicts.
//!
//! The paper's data-centric lens: bufferless routing trades a little
//! latency at high load for eliminating the buffers entirely — a
//! hardware-cost-aware design the fixed "always buffer" mindset misses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::mesh::{Coord, MeshConfig, Port};
use crate::NocError;

/// Router microarchitecture under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterKind {
    /// Input-queued XY routing.
    Buffered,
    /// BLESS-style bufferless deflection routing.
    BufferlessDeflection,
}

/// Synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// Uniform-random destinations.
    UniformRandom,
    /// A fraction of packets target one hotspot node.
    Hotspot {
        /// The hotspot node index.
        node: usize,
        /// Fraction of traffic directed at it, in [0, 1].
        fraction: f64,
    },
    /// Destination = bit-complement of the source index.
    BitComplement,
}

/// A single-flit packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    id: u64,
    dst: Coord,
    injected_at: u64,
    hops: u32,
    deflections: u32,
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocReport {
    /// Packets delivered.
    pub delivered: u64,
    /// Packets injected.
    pub injected: u64,
    /// Mean packet latency in cycles.
    pub avg_latency: f64,
    /// Worst packet latency.
    pub max_latency: u64,
    /// Mean hops per delivered packet.
    pub avg_hops: f64,
    /// Total deflections (bufferless only).
    pub deflections: u64,
    /// Peak total buffer occupancy observed (buffered only).
    pub peak_buffering: usize,
    /// Delivered packets per node per cycle.
    pub throughput: f64,
}

/// Runs a `kind` router mesh under `traffic` at per-node injection rate
/// `rate` for `cycles` cycles.
///
/// # Errors
///
/// Returns [`NocError`] if `rate` is outside `[0, 1]` or a hotspot node
/// is out of range.
pub fn simulate(
    kind: RouterKind,
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    cycles: u64,
    seed: u64,
) -> Result<NocReport, NocError> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(NocError::invalid("injection rate must be in [0, 1]"));
    }
    if let Traffic::Hotspot { node, fraction } = traffic {
        if node >= mesh.nodes() {
            return Err(NocError::invalid("hotspot node out of range"));
        }
        if !(0.0..=1.0).contains(&fraction) {
            return Err(NocError::invalid("hotspot fraction must be in [0, 1]"));
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind {
        RouterKind::Buffered => Ok(simulate_buffered(mesh, traffic, rate, cycles, &mut rng)),
        RouterKind::BufferlessDeflection => {
            Ok(simulate_bufferless(mesh, traffic, rate, cycles, &mut rng))
        }
    }
}

fn pick_destination(
    mesh: MeshConfig,
    traffic: Traffic,
    src: usize,
    rng: &mut SmallRng,
) -> Coord {
    match traffic {
        Traffic::UniformRandom => {
            let mut d = rng.gen_range(0..mesh.nodes());
            if d == src {
                d = (d + 1) % mesh.nodes();
            }
            mesh.coord(d)
        }
        Traffic::Hotspot { node, fraction } => {
            if rng.gen::<f64>() < fraction && node != src {
                mesh.coord(node)
            } else {
                pick_destination(mesh, Traffic::UniformRandom, src, rng)
            }
        }
        Traffic::BitComplement => {
            let d = (mesh.nodes() - 1 - src) % mesh.nodes();
            mesh.coord(if d == src { (d + 1) % mesh.nodes() } else { d })
        }
    }
}

#[derive(Debug, Default)]
struct Tally {
    delivered: u64,
    injected: u64,
    total_latency: u64,
    max_latency: u64,
    total_hops: u64,
    deflections: u64,
}

impl Tally {
    fn deliver(&mut self, p: &Packet, now: u64) {
        self.delivered += 1;
        let lat = now - p.injected_at;
        self.total_latency += lat;
        self.max_latency = self.max_latency.max(lat);
        self.total_hops += u64::from(p.hops);
        self.deflections += u64::from(p.deflections);
    }

    fn report(&self, mesh: MeshConfig, cycles: u64, peak_buffering: usize) -> NocReport {
        NocReport {
            delivered: self.delivered,
            injected: self.injected,
            avg_latency: if self.delivered == 0 {
                0.0
            } else {
                self.total_latency as f64 / self.delivered as f64
            },
            max_latency: self.max_latency,
            avg_hops: if self.delivered == 0 {
                0.0
            } else {
                self.total_hops as f64 / self.delivered as f64
            },
            deflections: self.deflections,
            peak_buffering,
            throughput: self.delivered as f64 / (mesh.nodes() as f64 * cycles as f64),
        }
    }
}

#[allow(clippy::needless_range_loop)] // node ids index parallel per-router state
fn simulate_buffered(
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    cycles: u64,
    rng: &mut SmallRng,
) -> NocReport {
    // Per-router input queue (shared FIFO; one packet per output per cycle).
    let n = mesh.nodes();
    let mut queues: Vec<Vec<Packet>> = vec![Vec::new(); n];
    let mut tally = Tally::default();
    let mut next_id = 0u64;
    let mut peak = 0usize;

    for now in 0..cycles {
        // Inject.
        for src in 0..n {
            if rng.gen::<f64>() < rate {
                let dst = pick_destination(mesh, traffic, src, rng);
                queues[src].push(Packet {
                    id: next_id,
                    dst,
                    injected_at: now,
                    hops: 0,
                    deflections: 0,
                });
                next_id += 1;
                tally.injected += 1;
            }
        }
        peak = peak.max(queues.iter().map(Vec::len).sum());

        // Route: each output port of each router carries one packet.
        let mut moves: Vec<(usize, Packet)> = Vec::new();
        for node in 0..n {
            let here = mesh.coord(node);
            // Eject everything that has arrived.
            queues[node].retain(|p| {
                if p.dst == here {
                    tally.deliver(p, now);
                    false
                } else {
                    true
                }
            });
            // One packet per output port, oldest first.
            let mut used: Vec<Port> = Vec::new();
            let mut order: Vec<usize> = (0..queues[node].len()).collect();
            order.sort_by_key(|&i| (queues[node][i].injected_at, queues[node][i].id));
            let mut taken = Vec::new();
            for i in order {
                let p = queues[node][i];
                let port = mesh.xy_route(here, p.dst).expect("non-local packet has a route");
                if !used.contains(&port) {
                    used.push(port);
                    taken.push((i, port));
                }
            }
            taken.sort_by_key(|&(i, _)| std::cmp::Reverse(i));
            for (i, port) in taken {
                let mut p = queues[node].remove(i);
                p.hops += 1;
                let next = mesh.neighbor(here, port).expect("xy routes stay in mesh");
                moves.push((mesh.index(next), p));
            }
        }
        for (node, p) in moves {
            queues[node].push(p);
        }
    }
    tally.report(mesh, cycles, peak)
}

#[allow(clippy::needless_range_loop)] // node ids index parallel per-router state
fn simulate_bufferless(
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    cycles: u64,
    rng: &mut SmallRng,
) -> NocReport {
    // Flits in flight, grouped per router each cycle. No storage anywhere.
    let n = mesh.nodes();
    let mut at_router: Vec<Vec<Packet>> = vec![Vec::new(); n];
    let mut tally = Tally::default();
    let mut next_id = 0u64;

    for now in 0..cycles {
        let mut moves: Vec<(usize, Packet)> = Vec::new();
        for node in 0..n {
            let here = mesh.coord(node);
            let mut flits = std::mem::take(&mut at_router[node]);

            // Ejection: one flit per cycle may leave the network.
            if let Some(pos) = flits.iter().position(|p| p.dst == here) {
                let p = flits.remove(pos);
                tally.deliver(&p, now);
            }

            // Injection: allowed only if a free output slot will remain.
            let valid = mesh.valid_ports(here);
            if flits.len() < valid.len() && rng.gen::<f64>() < rate {
                let dst = pick_destination(mesh, traffic, node, rng);
                flits.push(Packet { id: next_id, dst, injected_at: now, hops: 0, deflections: 0 });
                next_id += 1;
                tally.injected += 1;
            }

            // Age-ordered port allocation: oldest picks first (BLESS
            // "oldest-first" guarantees livelock freedom).
            flits.sort_by_key(|p| (p.injected_at, p.id));
            let mut free: Vec<Port> = valid.clone();
            for mut p in flits {
                let productive = mesh.productive_ports(here, p.dst);
                let port = productive
                    .iter()
                    .copied()
                    .find(|pp| free.contains(pp))
                    .or_else(|| free.first().copied())
                    .expect("flit count never exceeds port count");
                if !productive.contains(&port) {
                    p.deflections += 1;
                }
                free.retain(|&f| f != port);
                p.hops += 1;
                let next = mesh.neighbor(here, port).expect("free ports are valid");
                moves.push((mesh.index(next), p));
            }
        }
        for (node, p) in moves {
            at_router[node].push(p);
        }
    }
    tally.report(mesh, cycles, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshConfig {
        MeshConfig::new(4, 4).unwrap()
    }

    #[test]
    fn rate_validation() {
        assert!(simulate(RouterKind::Buffered, mesh(), Traffic::UniformRandom, 1.5, 10, 0).is_err());
        assert!(simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::Hotspot { node: 99, fraction: 0.5 },
            0.1,
            10,
            0
        )
        .is_err());
    }

    #[test]
    fn both_routers_deliver_at_low_load() {
        for kind in [RouterKind::Buffered, RouterKind::BufferlessDeflection] {
            let r = simulate(kind, mesh(), Traffic::UniformRandom, 0.05, 3000, 1).unwrap();
            assert!(r.delivered > 0, "{kind:?}");
            assert!(
                r.delivered as f64 >= r.injected as f64 * 0.9,
                "{kind:?}: delivered {} of {}",
                r.delivered,
                r.injected
            );
            assert!(r.avg_latency >= 1.0);
        }
    }

    #[test]
    fn bufferless_matches_buffered_latency_at_low_load() {
        let b = simulate(RouterKind::Buffered, mesh(), Traffic::UniformRandom, 0.02, 4000, 2).unwrap();
        let d = simulate(
            RouterKind::BufferlessDeflection,
            mesh(),
            Traffic::UniformRandom,
            0.02,
            4000,
            2,
        )
        .unwrap();
        assert!(
            (d.avg_latency - b.avg_latency).abs() < 3.0,
            "low-load latencies should be close: bufferless {:.1} vs buffered {:.1}",
            d.avg_latency,
            b.avg_latency
        );
    }

    #[test]
    fn bufferless_deflects_under_load_buffered_queues() {
        let b = simulate(RouterKind::Buffered, mesh(), Traffic::UniformRandom, 0.35, 3000, 3).unwrap();
        let d = simulate(
            RouterKind::BufferlessDeflection,
            mesh(),
            Traffic::UniformRandom,
            0.35,
            3000,
            3,
        )
        .unwrap();
        assert!(d.deflections > 0, "high load must cause deflections");
        assert!(b.peak_buffering > 0, "high load must queue packets");
        assert_eq!(b.deflections, 0, "buffered routers never deflect");
    }

    #[test]
    fn hotspot_traffic_is_harder_than_uniform() {
        // At this rate the 16 nodes offer ~2.8 packets/cycle to the
        // hotspot's ≤4 incoming links: the queues around it must grow.
        let u = simulate(RouterKind::Buffered, mesh(), Traffic::UniformRandom, 0.25, 3000, 4).unwrap();
        let h = simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::Hotspot { node: 5, fraction: 0.7 },
            0.25,
            3000,
            4,
        )
        .unwrap();
        assert!(
            h.avg_latency > 2.0 * u.avg_latency,
            "hotspot {:.1} vs uniform {:.1}",
            h.avg_latency,
            u.avg_latency
        );
    }

    #[test]
    fn hops_are_at_least_distance_on_average() {
        let r = simulate(RouterKind::Buffered, mesh(), Traffic::BitComplement, 0.05, 2000, 5).unwrap();
        // Bit-complement on a 4x4 mesh averages > 2 hops.
        assert!(r.avg_hops >= 2.0, "avg hops {:.2}", r.avg_hops);
    }

    #[test]
    fn throughput_reflects_injection_rate_below_saturation() {
        let r = simulate(RouterKind::Buffered, mesh(), Traffic::UniformRandom, 0.05, 5000, 6).unwrap();
        assert!((r.throughput - 0.05).abs() < 0.01, "throughput {:.3}", r.throughput);
    }
}
