//! Cycle-level simulation of two router classes:
//!
//! * **Buffered XY** — input-queued routers with dimension-order routing:
//!   the conventional design whose buffers dominate NoC area/power.
//! * **Bufferless deflection** (BLESS, Moscibroda & Mutlu ISCA 2009;
//!   CHIPPER, Fallin+ HPCA 2011) — no buffers at all: flits always move,
//!   age-prioritized, mis-routed ("deflected") on port conflicts.
//!
//! The paper's data-centric lens: bufferless routing trades a little
//! latency at high load for eliminating the buffers entirely — a
//! hardware-cost-aware design the fixed "always buffer" mindset misses.
//!
//! Both meshes are [`Clocked`] components driven by the workspace-wide
//! [`SimLoop`]. A synthetic-traffic mesh draws injection randomness every
//! cycle, so — unlike the memory controller — there are no idle gaps to
//! skip; the port buys the uniform component model and sink-based
//! delivery, which lets a mesh be composed into larger clocked systems.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ia_sim::{Clocked, CompletionSink, Cycle, FnSink, SimLoop};
use ia_trace::{ComponentTrace, TraceLog, Tracer};

use crate::mesh::{MeshConfig, Port, Ports, RouteTable};
use crate::NocError;

/// Router microarchitecture under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterKind {
    /// Input-queued XY routing.
    Buffered,
    /// BLESS-style bufferless deflection routing.
    BufferlessDeflection,
}

/// Synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// Uniform-random destinations.
    UniformRandom,
    /// A fraction of packets target one hotspot node.
    Hotspot {
        /// The hotspot node index.
        node: usize,
        /// Fraction of traffic directed at it, in [0, 1].
        fraction: f64,
    },
    /// Destination = bit-complement of the source index.
    BitComplement,
}

/// A single-flit packet. The destination is a flat node index so the
/// routing hot loops index the precomputed [`RouteTable`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    id: u64,
    dst: u32,
    injected_at: u64,
    hops: u32,
    deflections: u32,
}

impl Packet {
    fn delivered(&self, now: u64) -> Delivered {
        Delivered {
            latency: now - self.injected_at,
            hops: self.hops,
            deflections: self.deflections,
        }
    }
}

/// A slab arena of in-flight flits. Router queues hold `u32` handles into
/// it; freed slots are recycled through a free list, so the steady state
/// allocates nothing and moving a flit between routers copies four bytes
/// instead of the whole packet.
#[derive(Debug, Default)]
struct FlitArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
}

impl FlitArena {
    fn alloc(&mut self, p: Packet) -> u32 {
        if let Some(h) = self.free.pop() {
            self.slots[h as usize] = p;
            h
        } else {
            self.slots.push(p);
            (self.slots.len() - 1) as u32
        }
    }

    #[inline]
    fn release(&mut self, h: u32) {
        self.free.push(h);
    }
}

/// One input-queue slot of a buffered router: the flit's handle plus two
/// facts that are invariant while it waits here — its age-ordering id and
/// its routing class at THIS node (output port, or "eject"). Caching them
/// means the per-cycle allocation pass reads only this 16-byte entry for
/// flits that stay put; the arena is touched just when a flit ejects or
/// moves.
#[derive(Debug, Clone, Copy)]
struct QEntry {
    id: u64,
    h: u32,
    class: u8,
}

/// [`QEntry::class`] value for "this node is the destination".
const CLASS_EJECT: u8 = 4;

/// A packet leaving the network: the [`Clocked::Completion`] type of both
/// mesh simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// Cycles from injection to ejection.
    pub latency: u64,
    /// Links traversed.
    pub hops: u32,
    /// Times the packet was mis-routed (bufferless only).
    pub deflections: u32,
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocReport {
    /// Packets delivered.
    pub delivered: u64,
    /// Packets injected.
    pub injected: u64,
    /// Mean packet latency in cycles.
    pub avg_latency: f64,
    /// Worst packet latency.
    pub max_latency: u64,
    /// Mean hops per delivered packet.
    pub avg_hops: f64,
    /// Total deflections (bufferless only).
    pub deflections: u64,
    /// Peak total buffer occupancy observed (buffered only).
    pub peak_buffering: usize,
    /// Delivered packets per node per cycle.
    pub throughput: f64,
}

/// Runs a `kind` router mesh under `traffic` at per-node injection rate
/// `rate` for `cycles` cycles.
///
/// # Errors
///
/// Returns [`NocError`] if `rate` is outside `[0, 1]` or a hotspot node
/// is out of range.
pub fn simulate(
    kind: RouterKind,
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    cycles: u64,
    seed: u64,
) -> Result<NocReport, NocError> {
    run_mesh(kind, mesh, traffic, rate, cycles, seed, false).map(|(report, _)| report)
}

/// [`simulate`], additionally recording an `ia-trace` log of per-cycle
/// mesh activity (`noc.active`/`noc.idle` marks, `noc.deflect`
/// instants) on track `"noc"`. Tracing never touches the RNG stream, so
/// the [`NocReport`] is bit-identical to [`simulate`]'s.
///
/// # Errors
///
/// Returns [`NocError`] under the same conditions as [`simulate`].
pub fn simulate_traced(
    kind: RouterKind,
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    cycles: u64,
    seed: u64,
) -> Result<(NocReport, TraceLog), NocError> {
    run_mesh(kind, mesh, traffic, rate, cycles, seed, true).map(|(report, log)| {
        (
            report,
            // lint: allow(P001, run_mesh(traced=true) always yields a log)
            log.expect("traced run yields a log"),
        )
    })
}

fn run_mesh(
    kind: RouterKind,
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    cycles: u64,
    seed: u64,
    traced: bool,
) -> Result<(NocReport, Option<TraceLog>), NocError> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(NocError::invalid("injection rate must be in [0, 1]"));
    }
    if let Traffic::Hotspot { node, fraction } = traffic {
        if node >= mesh.nodes() {
            return Err(NocError::invalid("hotspot node out of range"));
        }
        if !(0.0..=1.0).contains(&fraction) {
            return Err(NocError::invalid("hotspot fraction must be in [0, 1]"));
        }
    }
    let log_of = |trace: ComponentTrace| {
        let mut log = TraceLog::new();
        log.push(trace);
        log
    };
    match kind {
        RouterKind::Buffered => {
            let mut sim = BufferedMeshSim::new(mesh, traffic, rate, cycles, seed);
            if traced {
                sim.enable_cycle_trace(ia_trace::DEFAULT_EVENT_CAPACITY);
            }
            let tally = drive(&mut sim, cycles);
            let log = traced.then(|| log_of(sim.take_cycle_trace()));
            Ok((
                tally.report(mesh, cycles, sim.injected(), sim.peak_buffering()),
                log,
            ))
        }
        RouterKind::BufferlessDeflection => {
            let mut sim = BufferlessMeshSim::new(mesh, traffic, rate, cycles, seed);
            if traced {
                sim.enable_cycle_trace(ia_trace::DEFAULT_EVENT_CAPACITY);
            }
            let tally = drive(&mut sim, cycles);
            let log = traced.then(|| log_of(sim.take_cycle_trace()));
            Ok((tally.report(mesh, cycles, sim.injected(), 0), log))
        }
    }
}

/// Drives a mesh to its horizon through the event-driven engine,
/// aggregating delivered packets.
fn drive<C: Clocked<Completion = Delivered>>(sim: &mut C, cycles: u64) -> Tally {
    let mut tally = Tally::default();
    let mut engine = SimLoop::new();
    let mut sink = FnSink(|d: Delivered| tally.add(d));
    engine.run_while(sim, &mut sink, Cycle::new(cycles), |_| true);
    tally
}

/// Picks a destination node (flat index) for a packet injected at `src`.
/// The RNG draw sequence is identical per traffic pattern regardless of
/// how the caller stores destinations.
fn pick_destination(mesh: MeshConfig, traffic: Traffic, src: usize, rng: &mut SmallRng) -> usize {
    match traffic {
        Traffic::UniformRandom => {
            let mut d = rng.gen_range(0..mesh.nodes());
            if d == src {
                d = (d + 1) % mesh.nodes();
            }
            d
        }
        Traffic::Hotspot { node, fraction } => {
            if rng.gen::<f64>() < fraction && node != src {
                node
            } else {
                pick_destination(mesh, Traffic::UniformRandom, src, rng)
            }
        }
        Traffic::BitComplement => {
            let d = (mesh.nodes() - 1 - src) % mesh.nodes();
            if d == src {
                (d + 1) % mesh.nodes()
            } else {
                d
            }
        }
    }
}

#[derive(Debug, Default)]
struct Tally {
    delivered: u64,
    total_latency: u64,
    max_latency: u64,
    total_hops: u64,
    deflections: u64,
}

impl Tally {
    fn add(&mut self, d: Delivered) {
        self.delivered += 1;
        self.total_latency += d.latency;
        self.max_latency = self.max_latency.max(d.latency);
        self.total_hops += u64::from(d.hops);
        self.deflections += u64::from(d.deflections);
    }

    fn report(
        &self,
        mesh: MeshConfig,
        cycles: u64,
        injected: u64,
        peak_buffering: usize,
    ) -> NocReport {
        NocReport {
            delivered: self.delivered,
            injected,
            avg_latency: if self.delivered == 0 {
                0.0
            } else {
                self.total_latency as f64 / self.delivered as f64
            },
            max_latency: self.max_latency,
            avg_hops: if self.delivered == 0 {
                0.0
            } else {
                self.total_hops as f64 / self.delivered as f64
            },
            deflections: self.deflections,
            peak_buffering,
            throughput: self.delivered as f64 / (mesh.nodes() as f64 * cycles as f64),
        }
    }
}

/// An input-queued XY-routed mesh as a [`Clocked`] component.
///
/// `rate` must already be validated to [0, 1] (done by [`simulate`]).
#[derive(Debug)]
pub struct BufferedMeshSim {
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    horizon: u64,
    rng: SmallRng,
    now: u64,
    table: RouteTable,
    arena: FlitArena,
    queues: Vec<Vec<QEntry>>,
    /// One bit per node, set while its input queue is non-empty: the
    /// routing loop visits only occupied routers instead of scanning the
    /// whole mesh every cycle.
    occupied: Vec<u64>,
    /// Live total queue occupancy (maintained incrementally; equals the
    /// per-cycle sum the former code recomputed).
    occupancy: usize,
    next_id: u64,
    injected: u64,
    peak: usize,
    // Scratch buffers reused across ticks so the steady-state routing
    // loop never allocates. Behaviorally inert: each is cleared before
    // (or fully drained by) every use.
    moves: Vec<(u32, u32)>,
    tracer: Tracer,
}

impl BufferedMeshSim {
    /// Creates a mesh that will accept injections for `horizon` cycles.
    #[must_use]
    pub fn new(mesh: MeshConfig, traffic: Traffic, rate: f64, horizon: u64, seed: u64) -> Self {
        BufferedMeshSim {
            mesh,
            traffic,
            rate,
            horizon,
            rng: SmallRng::seed_from_u64(seed),
            now: 0,
            table: RouteTable::new(mesh),
            arena: FlitArena::default(),
            queues: vec![Vec::new(); mesh.nodes()],
            occupied: vec![0; mesh.nodes().div_ceil(64)],
            occupancy: 0,
            next_id: 0,
            injected: 0,
            peak: 0,
            moves: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Packets injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Peak total buffer occupancy observed so far.
    #[must_use]
    pub fn peak_buffering(&self) -> usize {
        self.peak
    }

    /// Enables per-cycle activity tracing (track `"noc"`). Off by
    /// default; one branch per cycle, no effect on the RNG stream.
    pub fn enable_cycle_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::new("noc", capacity);
    }

    /// Drains the recorded trace.
    #[must_use]
    pub fn take_cycle_trace(&mut self) -> ComponentTrace {
        self.tracer.take()
    }
}

impl Clocked for BufferedMeshSim {
    type Completion = Delivered;

    fn now(&self) -> Cycle {
        Cycle::new(self.now)
    }

    // lint: hot-path
    fn tick_into(&mut self, sink: &mut dyn CompletionSink<Delivered>) {
        let now = self.now;
        let n = self.mesh.nodes();
        // Inject. Every node draws injection randomness every cycle, so
        // this loop cannot skip nodes without changing the RNG stream.
        for src in 0..n {
            if self.rng.gen::<f64>() < self.rate {
                let dst = pick_destination(self.mesh, self.traffic, src, &mut self.rng) as u32;
                let h = self.arena.alloc(Packet {
                    id: self.next_id,
                    dst,
                    injected_at: now,
                    hops: 0,
                    deflections: 0,
                });
                let class = self
                    .table
                    .xy_port(src, dst as usize)
                    // lint: allow(P001, pick_destination never picks the source)
                    .expect("injected packets are never local") as u8;
                self.queues[src].push(QEntry {
                    id: self.next_id,
                    h,
                    class,
                });
                self.occupied[src / 64] |= 1 << (src % 64);
                self.occupancy += 1;
                self.next_id += 1;
                self.injected += 1;
            }
        }
        self.peak = self.peak.max(self.occupancy);
        if self.tracer.is_enabled() {
            let phase = if self.occupancy > 0 {
                "noc.active"
            } else {
                "noc.idle"
            };
            self.tracer.mark(phase, now);
        }

        // Route: each output port of each router carries one packet,
        // oldest first. Queues are kept in age order (flit ids are
        // allocated monotonically, so id order IS age order: injections
        // append, arrivals binary-insert below), which lets ejection and
        // port allocation share one in-place compaction pass with no
        // per-cycle sort. Only occupied routers are visited; an empty
        // router has nothing to eject or forward.
        let arena = &mut self.arena;
        for w in 0..self.occupied.len() {
            let mut word = self.occupied[w];
            while word != 0 {
                let node = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let q = &mut self.queues[node];
                let mut used = Ports::default();
                let mut write = 0;
                for read in 0..q.len() {
                    let e = q[read];
                    // Eject everything that has arrived.
                    if e.class == CLASS_EJECT {
                        let p = &arena.slots[e.h as usize];
                        sink.complete(p.delivered(now));
                        arena.free.push(e.h);
                        self.occupancy -= 1;
                        continue;
                    }
                    let port = Port::from_index(e.class);
                    if used.contains(port) {
                        // Port taken by an older packet: wait in place.
                        q[write] = e;
                        write += 1;
                        continue;
                    }
                    used.push(port);
                    arena.slots[e.h as usize].hops += 1;
                    let next = self
                        .table
                        .neighbor_index(node, port)
                        // lint: allow(P001, xy_route only returns in-mesh ports)
                        .expect("xy routes stay in mesh");
                    self.moves.push((next as u32, e.h));
                }
                q.truncate(write);
                if q.is_empty() {
                    self.occupied[w] &= !(1 << (node % 64));
                }
            }
        }
        for (node, h) in self.moves.drain(..) {
            let p = &arena.slots[h as usize];
            let class = match self.table.xy_port(node as usize, p.dst as usize) {
                Some(port) => port as u8,
                None => CLASS_EJECT,
            };
            let e = QEntry { id: p.id, h, class };
            let q = &mut self.queues[node as usize];
            let pos = q.partition_point(|&e2| e2.id < e.id);
            q.insert(pos, e);
            self.occupied[node as usize / 64] |= 1 << (node % 64);
        }
        self.now += 1;
    }

    fn next_event_at(&self) -> Option<Cycle> {
        // Injection draws randomness every cycle up to the horizon, so
        // every cycle is an event; there is nothing to skip.
        (self.now < self.horizon).then(|| Cycle::new(self.now))
    }
}

/// A BLESS-style bufferless deflection mesh as a [`Clocked`] component.
///
/// `rate` must already be validated to [0, 1] (done by [`simulate`]).
#[derive(Debug)]
pub struct BufferlessMeshSim {
    mesh: MeshConfig,
    traffic: Traffic,
    rate: f64,
    horizon: u64,
    rng: SmallRng,
    now: u64,
    table: RouteTable,
    arena: FlitArena,
    at_router: Vec<Vec<u32>>,
    next_id: u64,
    injected: u64,
    // Scratch buffers reused across ticks so the steady-state routing
    // loop never allocates. `flits` swaps with each router's vec (both
    // keep their capacity); `moves` is drained every tick.
    moves: Vec<(u32, u32)>,
    flits: Vec<u32>,
    tracer: Tracer,
}

impl BufferlessMeshSim {
    /// Creates a mesh that will accept injections for `horizon` cycles.
    #[must_use]
    pub fn new(mesh: MeshConfig, traffic: Traffic, rate: f64, horizon: u64, seed: u64) -> Self {
        BufferlessMeshSim {
            mesh,
            traffic,
            rate,
            horizon,
            rng: SmallRng::seed_from_u64(seed),
            now: 0,
            table: RouteTable::new(mesh),
            arena: FlitArena::default(),
            at_router: vec![Vec::new(); mesh.nodes()],
            next_id: 0,
            injected: 0,
            moves: Vec::new(),
            flits: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Packets injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Enables per-cycle activity tracing (track `"noc"`). Off by
    /// default; one branch per cycle, no effect on the RNG stream.
    pub fn enable_cycle_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::new("noc", capacity);
    }

    /// Drains the recorded trace.
    #[must_use]
    pub fn take_cycle_trace(&mut self) -> ComponentTrace {
        self.tracer.take()
    }
}

impl Clocked for BufferlessMeshSim {
    type Completion = Delivered;

    fn now(&self) -> Cycle {
        Cycle::new(self.now)
    }

    // lint: hot-path
    fn tick_into(&mut self, sink: &mut dyn CompletionSink<Delivered>) {
        let now = self.now;
        let n = self.mesh.nodes();
        if self.tracer.is_enabled() {
            let occupancy: usize = self.at_router.iter().map(Vec::len).sum();
            let phase = if occupancy > 0 {
                "noc.active"
            } else {
                "noc.idle"
            };
            self.tracer.mark(phase, now);
        }
        let mut deflected_this_cycle = 0u64;
        let arena = &mut self.arena;
        // Every node is visited: the injection gate below conditions the
        // RNG draw on local occupancy, so even idle nodes participate in
        // the random stream. Idle nodes fall through in a few branches.
        for node in 0..n {
            // Swap rather than take: the router keeps the scratch's old
            // (empty) buffer, so capacities circulate instead of being
            // freed and re-grown every cycle.
            std::mem::swap(&mut self.flits, &mut self.at_router[node]);

            // Ejection: one flit per cycle may leave the network.
            if let Some(pos) = self
                .flits
                .iter()
                .position(|&h| arena.slots[h as usize].dst == node as u32)
            {
                let h = self.flits.remove(pos);
                sink.complete(arena.slots[h as usize].delivered(now));
                arena.release(h);
            }

            // Injection: allowed only if a free output slot will remain.
            let valid = self.table.valid_ports(node);
            if self.flits.len() < valid.len() && self.rng.gen::<f64>() < self.rate {
                let dst = pick_destination(self.mesh, self.traffic, node, &mut self.rng) as u32;
                let h = arena.alloc(Packet {
                    id: self.next_id,
                    dst,
                    injected_at: now,
                    hops: 0,
                    deflections: 0,
                });
                self.flits.push(h);
                self.next_id += 1;
                self.injected += 1;
            }
            if self.flits.is_empty() {
                continue;
            }

            // Age-ordered port allocation: oldest picks first (BLESS
            // "oldest-first" guarantees livelock freedom).
            // Ids are allocated monotonically, so id order is age order.
            self.flits
                .sort_unstable_by_key(|&h| arena.slots[h as usize].id);
            let mut free = valid;
            for k in 0..self.flits.len() {
                let h = self.flits[k];
                let productive = self
                    .table
                    .productive_ports(node, arena.slots[h as usize].dst as usize);
                let port = productive
                    .iter()
                    .find(|&pp| free.contains(pp))
                    .or_else(|| free.first())
                    // lint: allow(P001, bufferless injection caps flits at the port count)
                    .expect("flit count never exceeds port count");
                let p = &mut arena.slots[h as usize];
                if !productive.contains(port) {
                    p.deflections += 1;
                    deflected_this_cycle += 1;
                }
                free.remove(port);
                p.hops += 1;
                let next = self
                    .table
                    .neighbor_index(node, port)
                    // lint: allow(P001, the free-port set only holds valid mesh ports)
                    .expect("free ports are valid");
                self.moves.push((next as u32, h));
            }
            self.flits.clear();
        }
        for (node, h) in self.moves.drain(..) {
            self.at_router[node as usize].push(h);
        }
        if self.tracer.is_enabled() && deflected_this_cycle > 0 {
            self.tracer
                .instant_value("noc.deflect", now, deflected_this_cycle as f64);
        }
        self.now += 1;
    }

    fn next_event_at(&self) -> Option<Cycle> {
        // Injection draws randomness every cycle up to the horizon, so
        // every cycle is an event; there is nothing to skip.
        (self.now < self.horizon).then(|| Cycle::new(self.now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshConfig {
        MeshConfig::new(4, 4).unwrap()
    }

    #[test]
    fn traced_simulation_matches_untraced_report_exactly() {
        for kind in [RouterKind::Buffered, RouterKind::BufferlessDeflection] {
            let plain = simulate(kind, mesh(), Traffic::UniformRandom, 0.3, 400, 7).unwrap();
            let (traced, log) =
                simulate_traced(kind, mesh(), Traffic::UniformRandom, 0.3, 400, 7).unwrap();
            assert_eq!(plain, traced, "tracing must not perturb the simulation");
            assert_eq!(log.components.len(), 1);
            let noc = &log.components[0];
            assert_eq!(noc.track, "noc");
            assert_eq!(
                noc.attributed(),
                400,
                "every simulated cycle lands in exactly one mark phase"
            );
            assert!(
                noc.marks.iter().any(|(phase, _)| *phase == "noc.active"),
                "a loaded mesh must show active cycles"
            );
            if kind == RouterKind::BufferlessDeflection {
                let deflects: f64 = noc
                    .instants
                    .iter()
                    .filter(|i| i.name == "noc.deflect")
                    .map(|i| i.sum)
                    .sum();
                // The report tallies deflections of *delivered* packets
                // only; instants also see flits still in flight at the
                // horizon, so the trace is an upper bound.
                assert!(
                    deflects as u64 >= traced.deflections && traced.deflections > 0,
                    "deflect instants ({deflects}) must cover the report's \
                     delivered-packet deflections ({})",
                    traced.deflections
                );
            }
        }
    }

    #[test]
    fn rate_validation() {
        assert!(simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::UniformRandom,
            1.5,
            10,
            0
        )
        .is_err());
        assert!(simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::Hotspot {
                node: 99,
                fraction: 0.5
            },
            0.1,
            10,
            0
        )
        .is_err());
    }

    #[test]
    fn both_routers_deliver_at_low_load() {
        for kind in [RouterKind::Buffered, RouterKind::BufferlessDeflection] {
            let r = simulate(kind, mesh(), Traffic::UniformRandom, 0.05, 3000, 1).unwrap();
            assert!(r.delivered > 0, "{kind:?}");
            assert!(
                r.delivered as f64 >= r.injected as f64 * 0.9,
                "{kind:?}: delivered {} of {}",
                r.delivered,
                r.injected
            );
            assert!(r.avg_latency >= 1.0);
        }
    }

    #[test]
    fn bufferless_matches_buffered_latency_at_low_load() {
        let b = simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::UniformRandom,
            0.02,
            4000,
            2,
        )
        .unwrap();
        let d = simulate(
            RouterKind::BufferlessDeflection,
            mesh(),
            Traffic::UniformRandom,
            0.02,
            4000,
            2,
        )
        .unwrap();
        assert!(
            (d.avg_latency - b.avg_latency).abs() < 3.0,
            "low-load latencies should be close: bufferless {:.1} vs buffered {:.1}",
            d.avg_latency,
            b.avg_latency
        );
    }

    #[test]
    fn bufferless_deflects_under_load_buffered_queues() {
        let b = simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::UniformRandom,
            0.35,
            3000,
            3,
        )
        .unwrap();
        let d = simulate(
            RouterKind::BufferlessDeflection,
            mesh(),
            Traffic::UniformRandom,
            0.35,
            3000,
            3,
        )
        .unwrap();
        assert!(d.deflections > 0, "high load must cause deflections");
        assert!(b.peak_buffering > 0, "high load must queue packets");
        assert_eq!(b.deflections, 0, "buffered routers never deflect");
    }

    #[test]
    fn hotspot_traffic_is_harder_than_uniform() {
        // At this rate the 16 nodes offer ~2.8 packets/cycle to the
        // hotspot's ≤4 incoming links: the queues around it must grow.
        let u = simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::UniformRandom,
            0.25,
            3000,
            4,
        )
        .unwrap();
        let h = simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::Hotspot {
                node: 5,
                fraction: 0.7,
            },
            0.25,
            3000,
            4,
        )
        .unwrap();
        assert!(
            h.avg_latency > 2.0 * u.avg_latency,
            "hotspot {:.1} vs uniform {:.1}",
            h.avg_latency,
            u.avg_latency
        );
    }

    #[test]
    fn hops_are_at_least_distance_on_average() {
        let r = simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::BitComplement,
            0.05,
            2000,
            5,
        )
        .unwrap();
        // Bit-complement on a 4x4 mesh averages > 2 hops.
        assert!(r.avg_hops >= 2.0, "avg hops {:.2}", r.avg_hops);
    }

    #[test]
    fn throughput_reflects_injection_rate_below_saturation() {
        let r = simulate(
            RouterKind::Buffered,
            mesh(),
            Traffic::UniformRandom,
            0.05,
            5000,
            6,
        )
        .unwrap();
        assert!(
            (r.throughput - 0.05).abs() < 0.01,
            "throughput {:.3}",
            r.throughput
        );
    }

    /// Reports recorded from the pre-`Clocked` per-cycle loops. The port
    /// transplanted the loop bodies verbatim (preserving RNG call order),
    /// so results must be bit-identical, not just statistically close.
    #[test]
    fn clocked_port_is_bit_identical_to_the_legacy_loop() {
        let m = mesh();
        let b = simulate(
            RouterKind::Buffered,
            m,
            Traffic::UniformRandom,
            0.12,
            2500,
            42,
        )
        .unwrap();
        assert_eq!(
            b,
            NocReport {
                delivered: 4792,
                injected: 4794,
                avg_latency: 2.684474123539232,
                max_latency: 6,
                avg_hops: 2.6085141903171953,
                deflections: 0,
                peak_buffering: 18,
                throughput: 0.1198,
            }
        );
        let bh = simulate(
            RouterKind::Buffered,
            m,
            Traffic::Hotspot {
                node: 5,
                fraction: 0.6,
            },
            0.2,
            1500,
            7,
        )
        .unwrap();
        assert_eq!(
            bh,
            NocReport {
                delivered: 4730,
                injected: 4789,
                avg_latency: 13.274207188160677,
                max_latency: 64,
                avg_hops: 2.3228329809725157,
                deflections: 0,
                peak_buffering: 77,
                throughput: 0.19708333333333333,
            }
        );
        let d = simulate(
            RouterKind::BufferlessDeflection,
            m,
            Traffic::UniformRandom,
            0.12,
            2500,
            42,
        )
        .unwrap();
        assert_eq!(
            d,
            NocReport {
                delivered: 4789,
                injected: 4794,
                avg_latency: 2.832950511589058,
                max_latency: 8,
                avg_hops: 2.832950511589058,
                deflections: 514,
                peak_buffering: 0,
                throughput: 0.119725,
            }
        );
        let dh = simulate(
            RouterKind::BufferlessDeflection,
            m,
            Traffic::Hotspot {
                node: 5,
                fraction: 0.6,
            },
            0.2,
            1500,
            7,
        )
        .unwrap();
        assert_eq!(
            dh,
            NocReport {
                delivered: 2755,
                injected: 2786,
                avg_latency: 17.664609800362978,
                max_latency: 107,
                avg_hops: 17.664609800362978,
                deflections: 21079,
                peak_buffering: 0,
                throughput: 0.11479166666666667,
            }
        );
    }

    /// The meshes honor the `Clocked` contract when driven by hand.
    #[test]
    fn mesh_sims_are_well_behaved_clocked_components() {
        let mut sim = BufferedMeshSim::new(mesh(), Traffic::UniformRandom, 0.1, 100, 9);
        assert_eq!(Clocked::now(&sim), Cycle::ZERO);
        assert_eq!(sim.next_event_at(), Some(Cycle::ZERO));
        let mut out: Vec<Delivered> = Vec::new();
        let mut engine = SimLoop::new();
        let outcome = engine.run_while(&mut sim, &mut out, Cycle::new(100), |_| true);
        assert_eq!(outcome, ia_sim::RunOutcome::Drained);
        assert_eq!(Clocked::now(&sim), Cycle::new(100));
        assert_eq!(sim.next_event_at(), None, "horizon reached: drained");
        assert_eq!(
            engine.stats().events_processed,
            100,
            "every cycle is an event"
        );
        assert_eq!(
            engine.stats().cycles_skipped,
            0,
            "injection leaves no idle gaps"
        );
        assert!(
            out.len() as u64 <= sim.injected(),
            "can't deliver more than injected"
        );
    }
}
