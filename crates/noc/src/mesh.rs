//! 2D mesh geometry and XY dimension-order routing.

use crate::NocError;

/// A node coordinate in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

/// An output port of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// +x.
    East,
    /// −x.
    West,
    /// +y.
    North,
    /// −y.
    South,
}

impl Port {
    /// All ports.
    #[must_use]
    pub fn all() -> [Port; 4] {
        [Port::East, Port::West, Port::North, Port::South]
    }
}

/// A small ordered set of ports. A mesh router has at most four, so this
/// lives entirely on the stack — the routing hot loops query port sets
/// every cycle and must not allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ports {
    slots: [Port; 4],
    len: u8,
}

impl Default for Ports {
    fn default() -> Self {
        Ports {
            slots: [Port::East; 4],
            len: 0,
        }
    }
}

impl Ports {
    /// Number of ports in the set.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the set holds no ports.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a port.
    ///
    /// # Panics
    ///
    /// Panics if the set already holds four ports.
    #[inline]
    pub fn push(&mut self, p: Port) {
        self.slots[self.len as usize] = p;
        self.len += 1;
    }

    /// True when `p` is in the set.
    #[must_use]
    #[inline]
    pub fn contains(&self, p: Port) -> bool {
        self.as_slice().contains(&p)
    }

    /// The first port in insertion order, if any.
    #[must_use]
    #[inline]
    pub fn first(&self) -> Option<Port> {
        self.as_slice().first().copied()
    }

    /// The set's ports in insertion order.
    #[must_use]
    #[inline]
    pub fn as_slice(&self) -> &[Port] {
        &self.slots[..self.len as usize]
    }

    /// Iterates the ports in insertion order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Port> + '_ {
        self.as_slice().iter().copied()
    }

    /// Removes the first occurrence of `p`, preserving order.
    #[inline]
    pub fn remove(&mut self, p: Port) {
        if let Some(pos) = self.as_slice().iter().position(|&q| q == p) {
            let n = self.len as usize;
            self.slots.copy_within(pos + 1..n, pos);
            self.len -= 1;
        }
    }
}

impl IntoIterator for Ports {
    type Item = Port;
    type IntoIter = std::iter::Take<std::array::IntoIter<Port, 4>>;
    fn into_iter(self) -> Self::IntoIter {
        self.slots.into_iter().take(self.len as usize)
    }
}

/// Mesh dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshConfig {
    /// Columns.
    pub width: u16,
    /// Rows.
    pub height: u16,
}

impl MeshConfig {
    /// Creates a mesh configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] if either dimension is below 2.
    pub fn new(width: u16, height: u16) -> Result<Self, NocError> {
        if width < 2 || height < 2 {
            return Err(NocError::invalid("mesh needs at least 2x2 nodes"));
        }
        Ok(MeshConfig { width, height })
    }

    /// Node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Flat index of a coordinate.
    #[must_use]
    pub fn index(&self, c: Coord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Coordinate of a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nodes()`.
    #[must_use]
    pub fn coord(&self, i: usize) -> Coord {
        assert!(i < self.nodes(), "node index out of range");
        Coord {
            x: (i % self.width as usize) as u16,
            y: (i / self.width as usize) as u16,
        }
    }

    /// The neighbor reached through `port`, if it exists.
    #[must_use]
    pub fn neighbor(&self, c: Coord, port: Port) -> Option<Coord> {
        match port {
            Port::East => (c.x + 1 < self.width).then(|| Coord { x: c.x + 1, y: c.y }),
            Port::West => c.x.checked_sub(1).map(|x| Coord { x, y: c.y }),
            Port::North => (c.y + 1 < self.height).then(|| Coord { x: c.x, y: c.y + 1 }),
            Port::South => c.y.checked_sub(1).map(|y| Coord { x: c.x, y }),
        }
    }

    /// Ports that lead to existing neighbors from `c`.
    #[must_use]
    pub fn valid_ports(&self, c: Coord) -> Ports {
        let mut out = Ports::default();
        for p in Port::all() {
            if self.neighbor(c, p).is_some() {
                out.push(p);
            }
        }
        out
    }

    /// XY dimension-order routing: the productive port toward `dst`
    /// (x first, then y), or `None` if already there.
    #[must_use]
    pub fn xy_route(&self, from: Coord, dst: Coord) -> Option<Port> {
        if from.x < dst.x {
            Some(Port::East)
        } else if from.x > dst.x {
            Some(Port::West)
        } else if from.y < dst.y {
            Some(Port::North)
        } else if from.y > dst.y {
            Some(Port::South)
        } else {
            None
        }
    }

    /// Ports that reduce distance to `dst` (for deflection routing's
    /// preferred set).
    #[must_use]
    pub fn productive_ports(&self, from: Coord, dst: Coord) -> Ports {
        let mut out = Ports::default();
        if from.x < dst.x {
            out.push(Port::East);
        }
        if from.x > dst.x {
            out.push(Port::West);
        }
        if from.y < dst.y {
            out.push(Port::North);
        }
        if from.y > dst.y {
            out.push(Port::South);
        }
        out
    }

    /// Manhattan distance.
    #[must_use]
    pub fn distance(&self, a: Coord, b: Coord) -> u32 {
        u32::from(a.x.abs_diff(b.x)) + u32::from(a.y.abs_diff(b.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(MeshConfig::new(1, 4).is_err());
        assert!(MeshConfig::new(4, 1).is_err());
        assert!(MeshConfig::new(2, 2).is_ok());
    }

    #[test]
    fn index_coord_roundtrip() {
        let m = MeshConfig::new(4, 3).unwrap();
        for i in 0..m.nodes() {
            assert_eq!(m.index(m.coord(i)), i);
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = MeshConfig::new(3, 3).unwrap();
        let corner = Coord { x: 0, y: 0 };
        assert_eq!(m.neighbor(corner, Port::West), None);
        assert_eq!(m.neighbor(corner, Port::South), None);
        assert_eq!(m.neighbor(corner, Port::East), Some(Coord { x: 1, y: 0 }));
        assert_eq!(m.valid_ports(corner).len(), 2);
        let center = Coord { x: 1, y: 1 };
        assert_eq!(m.valid_ports(center).len(), 4);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = MeshConfig::new(4, 4).unwrap();
        let from = Coord { x: 0, y: 0 };
        let dst = Coord { x: 2, y: 3 };
        assert_eq!(m.xy_route(from, dst), Some(Port::East));
        assert_eq!(m.xy_route(Coord { x: 2, y: 0 }, dst), Some(Port::North));
        assert_eq!(m.xy_route(dst, dst), None);
    }

    #[test]
    fn xy_route_always_reaches_destination() {
        let m = MeshConfig::new(5, 5).unwrap();
        let dst = Coord { x: 4, y: 2 };
        let mut cur = Coord { x: 0, y: 4 };
        let mut hops = 0;
        while let Some(p) = m.xy_route(cur, dst) {
            cur = m.neighbor(cur, p).expect("xy route is always valid");
            hops += 1;
            assert!(hops <= 20, "routing loop");
        }
        assert_eq!(cur, dst);
        assert_eq!(hops, m.distance(Coord { x: 0, y: 4 }, dst));
    }

    #[test]
    fn productive_ports_shrink_distance() {
        let m = MeshConfig::new(4, 4).unwrap();
        let from = Coord { x: 1, y: 1 };
        let dst = Coord { x: 3, y: 0 };
        for p in m.productive_ports(from, dst) {
            let next = m.neighbor(from, p).expect("productive implies valid");
            assert!(m.distance(next, dst) < m.distance(from, dst));
        }
    }
}
