//! 2D mesh geometry and XY dimension-order routing.

use crate::NocError;

/// A node coordinate in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

/// An output port of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Port {
    /// +x.
    East = 0,
    /// −x.
    West = 1,
    /// +y.
    North = 2,
    /// −y.
    South = 3,
}

impl Port {
    /// All ports, in canonical (East, West, North, South) order.
    #[must_use]
    pub fn all() -> [Port; 4] {
        [Port::East, Port::West, Port::North, Port::South]
    }

    /// The port with canonical index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[must_use]
    #[inline]
    pub fn from_index(i: u8) -> Port {
        match i {
            0 => Port::East,
            1 => Port::West,
            2 => Port::North,
            3 => Port::South,
            // lint: allow(P002, index > 3 is a table-construction bug, not a runtime input)
            _ => panic!("port index out of range"),
        }
    }
}

/// A small set of ports, packed into one bit per port. A mesh router has
/// at most four, so this is a single byte — the routing hot loops query
/// port sets every cycle and must not allocate or scan.
///
/// Iteration yields ports in canonical (East, West, North, South) order,
/// which is also the order every constructor in this crate inserts them,
/// so replacing the former insertion-ordered array changes no observable
/// sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ports {
    mask: u8,
}

impl Ports {
    /// Number of ports in the set.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// True when the set holds no ports.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Inserts a port (idempotent).
    #[inline]
    pub fn push(&mut self, p: Port) {
        self.mask |= 1 << (p as u8);
    }

    /// True when `p` is in the set.
    #[must_use]
    #[inline]
    pub fn contains(&self, p: Port) -> bool {
        self.mask & (1 << (p as u8)) != 0
    }

    /// The raw occupancy bits, one per [`Port`] discriminant — a compact
    /// stable encoding of the whole set (checksums, debugging).
    #[must_use]
    #[inline]
    pub fn mask(&self) -> u8 {
        self.mask
    }

    /// The first port in canonical order, if any.
    #[must_use]
    #[inline]
    pub fn first(&self) -> Option<Port> {
        if self.mask == 0 {
            None
        } else {
            Some(Port::from_index(self.mask.trailing_zeros() as u8))
        }
    }

    /// Iterates the ports in canonical order.
    #[inline]
    pub fn iter(&self) -> PortsIter {
        PortsIter { mask: self.mask }
    }

    /// Removes `p` if present.
    #[inline]
    pub fn remove(&mut self, p: Port) {
        self.mask &= !(1 << (p as u8));
    }
}

impl IntoIterator for Ports {
    type Item = Port;
    type IntoIter = PortsIter;
    fn into_iter(self) -> Self::IntoIter {
        PortsIter { mask: self.mask }
    }
}

/// Iterator over a [`Ports`] set, in canonical port order.
#[derive(Debug, Clone)]
pub struct PortsIter {
    mask: u8,
}

impl Iterator for PortsIter {
    type Item = Port;

    #[inline]
    fn next(&mut self) -> Option<Port> {
        if self.mask == 0 {
            return None;
        }
        let i = self.mask.trailing_zeros() as u8;
        self.mask &= self.mask - 1;
        Some(Port::from_index(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.mask.count_ones() as usize;
        (n, Some(n))
    }
}

/// Mesh dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshConfig {
    /// Columns.
    pub width: u16,
    /// Rows.
    pub height: u16,
}

impl MeshConfig {
    /// Creates a mesh configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] if either dimension is below 2.
    pub fn new(width: u16, height: u16) -> Result<Self, NocError> {
        if width < 2 || height < 2 {
            return Err(NocError::invalid("mesh needs at least 2x2 nodes"));
        }
        Ok(MeshConfig { width, height })
    }

    /// Node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Flat index of a coordinate.
    #[must_use]
    pub fn index(&self, c: Coord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Coordinate of a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nodes()`.
    #[must_use]
    pub fn coord(&self, i: usize) -> Coord {
        assert!(i < self.nodes(), "node index out of range");
        Coord {
            x: (i % self.width as usize) as u16,
            y: (i / self.width as usize) as u16,
        }
    }

    /// The neighbor reached through `port`, if it exists.
    #[must_use]
    pub fn neighbor(&self, c: Coord, port: Port) -> Option<Coord> {
        match port {
            Port::East => (c.x + 1 < self.width).then(|| Coord { x: c.x + 1, y: c.y }),
            Port::West => c.x.checked_sub(1).map(|x| Coord { x, y: c.y }),
            Port::North => (c.y + 1 < self.height).then(|| Coord { x: c.x, y: c.y + 1 }),
            Port::South => c.y.checked_sub(1).map(|y| Coord { x: c.x, y }),
        }
    }

    /// Ports that lead to existing neighbors from `c`.
    #[must_use]
    pub fn valid_ports(&self, c: Coord) -> Ports {
        let mut out = Ports::default();
        for p in Port::all() {
            if self.neighbor(c, p).is_some() {
                out.push(p);
            }
        }
        out
    }

    /// XY dimension-order routing: the productive port toward `dst`
    /// (x first, then y), or `None` if already there.
    #[must_use]
    pub fn xy_route(&self, from: Coord, dst: Coord) -> Option<Port> {
        if from.x < dst.x {
            Some(Port::East)
        } else if from.x > dst.x {
            Some(Port::West)
        } else if from.y < dst.y {
            Some(Port::North)
        } else if from.y > dst.y {
            Some(Port::South)
        } else {
            None
        }
    }

    /// Ports that reduce distance to `dst` (for deflection routing's
    /// preferred set).
    #[must_use]
    pub fn productive_ports(&self, from: Coord, dst: Coord) -> Ports {
        let mut out = Ports::default();
        if from.x < dst.x {
            out.push(Port::East);
        }
        if from.x > dst.x {
            out.push(Port::West);
        }
        if from.y < dst.y {
            out.push(Port::North);
        }
        if from.y > dst.y {
            out.push(Port::South);
        }
        out
    }

    /// Manhattan distance.
    #[must_use]
    pub fn distance(&self, a: Coord, b: Coord) -> u32 {
        u32::from(a.x.abs_diff(b.x)) + u32::from(a.y.abs_diff(b.y))
    }
}

/// Largest node count for which [`RouteTable`] materializes the O(n²)
/// per-(source, destination) tables. Bigger meshes fall back to the
/// arithmetic routing functions, which are exact but slower per lookup.
const QUADRATIC_TABLE_MAX_NODES: usize = 4096;

/// Sentinel for "source equals destination" in the packed XY table.
const XY_LOCAL: u8 = 0xFF;

/// Precomputed routing state for one mesh: flat-index coordinates, valid
/// port masks, neighbor indices, and (for meshes up to
/// 4096 nodes) dense per-(source, destination) XY and productive-port
/// tables. Every accessor returns exactly what the corresponding
/// [`MeshConfig`] arithmetic would — the table is a cache, not a policy
/// change — so simulators built on it stay bit-identical to the
/// arithmetic path.
#[derive(Debug, Clone)]
pub struct RouteTable {
    mesh: MeshConfig,
    coords: Vec<Coord>,
    valid: Vec<Ports>,
    /// `neighbor[node * 4 + port]`; `u32::MAX` when the port exits the mesh.
    neighbor: Vec<u32>,
    /// `xy[src * nodes + dst]`: canonical port index, or [`XY_LOCAL`].
    xy: Option<Vec<u8>>,
    /// `productive[src * nodes + dst]`: ports that shrink the distance.
    productive: Option<Vec<Ports>>,
}

impl RouteTable {
    /// Builds the tables for `mesh`.
    #[must_use]
    pub fn new(mesh: MeshConfig) -> Self {
        let n = mesh.nodes();
        let coords: Vec<Coord> = (0..n).map(|i| mesh.coord(i)).collect();
        let valid: Vec<Ports> = coords.iter().map(|&c| mesh.valid_ports(c)).collect();
        let mut neighbor = vec![u32::MAX; n * 4];
        for (i, &c) in coords.iter().enumerate() {
            for p in Port::all() {
                if let Some(nb) = mesh.neighbor(c, p) {
                    neighbor[i * 4 + p as usize] = mesh.index(nb) as u32;
                }
            }
        }
        let (xy, productive) = if n <= QUADRATIC_TABLE_MAX_NODES {
            let mut xy = vec![XY_LOCAL; n * n];
            let mut productive = vec![Ports::default(); n * n];
            for (s, &from) in coords.iter().enumerate() {
                for (d, &dst) in coords.iter().enumerate() {
                    if let Some(p) = mesh.xy_route(from, dst) {
                        xy[s * n + d] = p as u8;
                    }
                    productive[s * n + d] = mesh.productive_ports(from, dst);
                }
            }
            (Some(xy), Some(productive))
        } else {
            (None, None)
        };
        RouteTable {
            mesh,
            coords,
            valid,
            neighbor,
            xy,
            productive,
        }
    }

    /// The mesh these tables were built for.
    #[must_use]
    pub fn mesh(&self) -> MeshConfig {
        self.mesh
    }

    /// Coordinate of flat index `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    #[inline]
    pub fn coord(&self, node: usize) -> Coord {
        self.coords[node]
    }

    /// Ports that lead to existing neighbors from `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    #[inline]
    pub fn valid_ports(&self, node: usize) -> Ports {
        self.valid[node]
    }

    /// Flat index of the neighbor reached through `port`, if it exists.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    #[inline]
    pub fn neighbor_index(&self, node: usize, port: Port) -> Option<usize> {
        let nb = self.neighbor[node * 4 + port as usize];
        (nb != u32::MAX).then_some(nb as usize)
    }

    /// XY dimension-order route from `src` toward `dst` (flat indices),
    /// or `None` when they coincide.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    #[inline]
    pub fn xy_port(&self, src: usize, dst: usize) -> Option<Port> {
        match &self.xy {
            Some(t) => {
                let p = t[src * self.coords.len() + dst];
                (p != XY_LOCAL).then(|| Port::from_index(p))
            }
            None => self.mesh.xy_route(self.coords[src], self.coords[dst]),
        }
    }

    /// Ports that reduce the distance from `src` to `dst` (flat indices).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    #[inline]
    pub fn productive_ports(&self, src: usize, dst: usize) -> Ports {
        match &self.productive {
            Some(t) => t[src * self.coords.len() + dst],
            None => self
                .mesh
                .productive_ports(self.coords[src], self.coords[dst]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(MeshConfig::new(1, 4).is_err());
        assert!(MeshConfig::new(4, 1).is_err());
        assert!(MeshConfig::new(2, 2).is_ok());
    }

    #[test]
    fn index_coord_roundtrip() {
        let m = MeshConfig::new(4, 3).unwrap();
        for i in 0..m.nodes() {
            assert_eq!(m.index(m.coord(i)), i);
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = MeshConfig::new(3, 3).unwrap();
        let corner = Coord { x: 0, y: 0 };
        assert_eq!(m.neighbor(corner, Port::West), None);
        assert_eq!(m.neighbor(corner, Port::South), None);
        assert_eq!(m.neighbor(corner, Port::East), Some(Coord { x: 1, y: 0 }));
        assert_eq!(m.valid_ports(corner).len(), 2);
        let center = Coord { x: 1, y: 1 };
        assert_eq!(m.valid_ports(center).len(), 4);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = MeshConfig::new(4, 4).unwrap();
        let from = Coord { x: 0, y: 0 };
        let dst = Coord { x: 2, y: 3 };
        assert_eq!(m.xy_route(from, dst), Some(Port::East));
        assert_eq!(m.xy_route(Coord { x: 2, y: 0 }, dst), Some(Port::North));
        assert_eq!(m.xy_route(dst, dst), None);
    }

    #[test]
    fn xy_route_always_reaches_destination() {
        let m = MeshConfig::new(5, 5).unwrap();
        let dst = Coord { x: 4, y: 2 };
        let mut cur = Coord { x: 0, y: 4 };
        let mut hops = 0;
        while let Some(p) = m.xy_route(cur, dst) {
            cur = m.neighbor(cur, p).expect("xy route is always valid");
            hops += 1;
            assert!(hops <= 20, "routing loop");
        }
        assert_eq!(cur, dst);
        assert_eq!(hops, m.distance(Coord { x: 0, y: 4 }, dst));
    }

    #[test]
    fn ports_iterate_in_canonical_order_and_dedupe() {
        let mut s = Ports::default();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        s.push(Port::South);
        s.push(Port::East);
        s.push(Port::East);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first(), Some(Port::East));
        let got: Vec<Port> = s.iter().collect();
        assert_eq!(got, vec![Port::East, Port::South]);
        s.remove(Port::East);
        assert_eq!(s.first(), Some(Port::South));
        s.remove(Port::East);
        assert_eq!(s.len(), 1);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![Port::South]);
    }

    #[test]
    fn route_table_matches_arithmetic_everywhere() {
        for (w, h) in [(2, 2), (4, 3), (8, 8)] {
            let m = MeshConfig::new(w, h).unwrap();
            let t = RouteTable::new(m);
            for s in 0..m.nodes() {
                let from = m.coord(s);
                assert_eq!(t.coord(s), from);
                assert_eq!(t.valid_ports(s), m.valid_ports(from));
                for p in Port::all() {
                    assert_eq!(
                        t.neighbor_index(s, p),
                        m.neighbor(from, p).map(|c| m.index(c))
                    );
                }
                for d in 0..m.nodes() {
                    let dst = m.coord(d);
                    assert_eq!(t.xy_port(s, d), m.xy_route(from, dst), "{s}->{d}");
                    assert_eq!(t.productive_ports(s, d), m.productive_ports(from, dst));
                }
            }
        }
    }

    #[test]
    fn productive_ports_shrink_distance() {
        let m = MeshConfig::new(4, 4).unwrap();
        let from = Coord { x: 1, y: 1 };
        let dst = Coord { x: 3, y: 0 };
        for p in m.productive_ports(from, dst) {
            let next = m.neighbor(from, p).expect("productive implies valid");
            assert!(m.distance(next, dst) < m.distance(from, dst));
        }
    }
}
