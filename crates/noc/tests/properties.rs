//! Property-based tests for the NoC simulators.

use ia_noc::{simulate, Coord, MeshConfig, Port, RouterKind, Traffic};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// XY routing from any source reaches any destination in exactly the
    /// Manhattan distance.
    #[test]
    fn xy_route_is_shortest_path(w in 2u16..10, h in 2u16..10, a in 0usize..100, b in 0usize..100) {
        let mesh = MeshConfig::new(w, h).unwrap();
        let from = mesh.coord(a % mesh.nodes());
        let dst = mesh.coord(b % mesh.nodes());
        let mut cur = from;
        let mut hops = 0u32;
        while let Some(p) = mesh.xy_route(cur, dst) {
            cur = mesh.neighbor(cur, p).expect("xy stays inside the mesh");
            hops += 1;
            prop_assert!(hops <= 64, "routing loop");
        }
        prop_assert_eq!(cur, dst);
        prop_assert_eq!(hops, mesh.distance(from, dst));
    }

    /// Index/coord conversion is a bijection for any mesh shape.
    #[test]
    fn coord_bijection(w in 2u16..12, h in 2u16..12) {
        let mesh = MeshConfig::new(w, h).unwrap();
        for i in 0..mesh.nodes() {
            prop_assert_eq!(mesh.index(mesh.coord(i)), i);
        }
    }

    /// Every neighbor relation is symmetric (East/West, North/South).
    #[test]
    fn neighbors_are_symmetric(w in 2u16..8, h in 2u16..8, n in 0usize..64) {
        let mesh = MeshConfig::new(w, h).unwrap();
        let c = mesh.coord(n % mesh.nodes());
        for (p, q) in [(Port::East, Port::West), (Port::North, Port::South)] {
            if let Some(nb) = mesh.neighbor(c, p) {
                prop_assert_eq!(mesh.neighbor(nb, q), Some(c));
            }
        }
    }

    /// Conservation: both routers deliver at most what was injected, and
    /// at low load they deliver nearly everything.
    #[test]
    fn packet_conservation(seed in any::<u64>(), rate_pm in 1u32..100) {
        let mesh = MeshConfig::new(4, 4).unwrap();
        let rate = f64::from(rate_pm) / 1000.0;
        for kind in [RouterKind::Buffered, RouterKind::BufferlessDeflection] {
            let r = simulate(kind, mesh, Traffic::UniformRandom, rate, 2000, seed).unwrap();
            prop_assert!(r.delivered <= r.injected, "{kind:?}");
            if r.delivered > 0 {
                prop_assert!(r.avg_latency >= 1.0);
                prop_assert!(r.avg_hops >= 1.0);
                prop_assert!(r.max_latency as f64 >= r.avg_latency);
            }
            if rate <= 0.05 {
                prop_assert!(
                    r.delivered as f64 >= r.injected as f64 * 0.85,
                    "{kind:?}: {} of {} at rate {rate}",
                    r.delivered,
                    r.injected
                );
            }
        }
    }

    /// Average latency is bounded below by average hop count (one cycle
    /// per hop minimum).
    #[test]
    fn latency_at_least_hops(seed in any::<u64>()) {
        let mesh = MeshConfig::new(4, 4).unwrap();
        for kind in [RouterKind::Buffered, RouterKind::BufferlessDeflection] {
            let r = simulate(kind, mesh, Traffic::UniformRandom, 0.05, 2000, seed).unwrap();
            if r.delivered > 0 {
                prop_assert!(r.avg_latency + 1e-9 >= r.avg_hops, "{kind:?}");
            }
        }
    }

    /// The bufferless router's hop counts exceed distance only by its
    /// deflections.
    #[test]
    fn deflections_explain_extra_hops(seed in any::<u64>()) {
        let mesh = MeshConfig::new(4, 4).unwrap();
        let r = simulate(
            RouterKind::BufferlessDeflection,
            mesh,
            Traffic::UniformRandom,
            0.10,
            3000,
            seed,
        )
        .unwrap();
        if r.delivered > 0 {
            // Each deflection adds at most 2 hops (one away, one back).
            let max_extra = 2.0 * r.deflections as f64 / r.delivered as f64;
            // Average minimal distance on a 4x4 mesh is ≤ 8.
            prop_assert!(r.avg_hops <= 8.0 + max_extra);
        }
    }
}

/// Coordinates display/compare sanely (non-property sanity).
#[test]
fn coord_basics() {
    let c = Coord { x: 1, y: 2 };
    assert_eq!(c, Coord { x: 1, y: 2 });
    assert_ne!(c, Coord { x: 2, y: 1 });
}
