//! Error type for the system-level simulator.

use std::error::Error;
use std::fmt;

/// A system-composition or run failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreError {
    msg: String,
}

impl CoreError {
    pub(crate) fn invalid(msg: &str) -> Self {
        CoreError {
            msg: msg.to_owned(),
        }
    }

    pub(crate) fn config(msg: String) -> Self {
        CoreError { msg }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_nonempty_and_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<CoreError>();
        assert!(!CoreError::invalid("bad").to_string().is_empty());
        assert!(!CoreError::config("x".into()).to_string().is_empty());
    }
}
