//! The paper's three design principles as a composable configuration.

use std::fmt;

/// One of the paper's three principles for intelligent architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Principle {
    /// Minimize data movement; compute in or near where data resides;
    /// low-latency, low-energy, low-cost data access.
    DataCentric,
    /// Controllers learn their policies online from the data flowing
    /// through them.
    DataDriven,
    /// Policies adapt to the semantic characteristics of each piece of
    /// data.
    DataAware,
}

impl Principle {
    /// All three principles.
    #[must_use]
    pub fn all() -> [Principle; 3] {
        [
            Principle::DataCentric,
            Principle::DataDriven,
            Principle::DataAware,
        ]
    }
}

impl fmt::Display for Principle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Principle::DataCentric => "data-centric",
            Principle::DataDriven => "data-driven",
            Principle::DataAware => "data-aware",
        })
    }
}

/// Which principles a system configuration enables.
///
/// # Examples
///
/// ```
/// use ia_core::{Principle, PrincipleSet};
/// let s = PrincipleSet::none().with(Principle::DataCentric);
/// assert!(s.has(Principle::DataCentric));
/// assert!(!s.has(Principle::DataDriven));
/// assert_eq!(PrincipleSet::all().count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PrincipleSet {
    centric: bool,
    driven: bool,
    aware: bool,
}

impl PrincipleSet {
    /// The processor-centric baseline: no principles.
    #[must_use]
    pub fn none() -> Self {
        PrincipleSet::default()
    }

    /// The full intelligent architecture.
    #[must_use]
    pub fn all() -> Self {
        PrincipleSet {
            centric: true,
            driven: true,
            aware: true,
        }
    }

    /// Adds a principle.
    #[must_use]
    pub fn with(mut self, p: Principle) -> Self {
        match p {
            Principle::DataCentric => self.centric = true,
            Principle::DataDriven => self.driven = true,
            Principle::DataAware => self.aware = true,
        }
        self
    }

    /// Tests for a principle.
    #[must_use]
    pub fn has(self, p: Principle) -> bool {
        match p {
            Principle::DataCentric => self.centric,
            Principle::DataDriven => self.driven,
            Principle::DataAware => self.aware,
        }
    }

    /// Number of enabled principles.
    #[must_use]
    pub fn count(self) -> usize {
        usize::from(self.centric) + usize::from(self.driven) + usize::from(self.aware)
    }

    /// The ablation ladder: none → +centric → +driven → +aware (all).
    #[must_use]
    pub fn ladder() -> [PrincipleSet; 4] {
        [
            PrincipleSet::none(),
            PrincipleSet::none().with(Principle::DataCentric),
            PrincipleSet::none()
                .with(Principle::DataCentric)
                .with(Principle::DataDriven),
            PrincipleSet::all(),
        ]
    }
}

impl fmt::Display for PrincipleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count() == 0 {
            return f.write_str("processor-centric baseline");
        }
        let mut parts = Vec::new();
        for p in Principle::all() {
            if self.has(p) {
                parts.push(p.to_string());
            }
        }
        f.write_str(&parts.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let s = PrincipleSet::none();
        assert_eq!(s.count(), 0);
        let s = s.with(Principle::DataDriven);
        assert!(s.has(Principle::DataDriven));
        assert!(!s.has(Principle::DataAware));
        assert_eq!(s.count(), 1);
        assert_eq!(PrincipleSet::all().count(), 3);
    }

    #[test]
    fn ladder_is_monotone() {
        let ladder = PrincipleSet::ladder();
        for w in ladder.windows(2) {
            assert!(w[0].count() < w[1].count());
        }
        assert_eq!(ladder[3], PrincipleSet::all());
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            PrincipleSet::none().to_string(),
            "processor-centric baseline"
        );
        assert_eq!(
            PrincipleSet::all().to_string(),
            "data-centric+data-driven+data-aware"
        );
        assert_eq!(Principle::DataCentric.to_string(), "data-centric");
    }
}
