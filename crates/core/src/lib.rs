//! # ia-core — the intelligent architecture
//!
//! The paper's contribution is an argument: computing systems should be
//! **data-centric** (compute where data lives), **data-driven**
//! (controllers learn their policies online), and **data-aware** (policies
//! adapt to the semantics of the data). This crate composes the substrate
//! crates of the workspace into a configurable full system where each
//! principle is a switch, so the argument can be evaluated quantitatively:
//!
//! * [`PrincipleSet`] — which principles are enabled.
//! * [`IntelligentSystem`] / [`SystemConfig`] — trace-driven full-system
//!   simulation (LLC → memory controller → DRAM) where:
//!   * *data-centric* enables ChargeCache-style reduced-latency DRAM (and
//!     the PUM/PNM crates provide in/near-memory execution for the bulk
//!     and irregular kernels),
//!   * *data-driven* swaps the fixed scheduler for the RL self-optimizing
//!     controller and the LLC insertion policy for set-dueling DIP,
//!   * *data-aware* consults an X-Mem [`ia_xmem::AtomRegistry`] to steer
//!     cache insertion by data semantics.
//! * [`run_ablation`] — the none → all principle ladder on one workload.
//! * [`Table`] — the text-table formatter all experiment harnesses share.
//!
//! ## Example
//!
//! ```
//! use ia_core::{run_ablation, SystemConfig};
//! use ia_workloads::{TraceGenerator, ZipfGen};
//! use ia_xmem::AtomRegistry;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let trace = ZipfGen::new(0, 1024, 4096, 1.1, 0.2)?.generate(1500, &mut rng);
//! let rows = run_ablation(&SystemConfig::default(), &AtomRegistry::new(), &trace)?;
//! assert_eq!(rows.len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ablation;
mod error;
mod principles;
mod system;
mod table;

pub use ablation::{run_ablation, AblationRow};
pub use error::CoreError;
pub use principles::{Principle, PrincipleSet};
pub use system::{IntelligentSystem, SchedulerKind, SystemConfig, SystemReport};
pub use table::Table;
