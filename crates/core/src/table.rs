//! A minimal fixed-width text-table formatter for the experiment
//! binaries, so every harness prints paper-style rows consistently.

use std::fmt::Write as _;

/// A simple text table.
///
/// # Examples
///
/// ```
/// use ia_core::Table;
/// let mut t = Table::new(&["scheduler", "speedup"]);
/// t.row(&["FR-FCFS", "1.00"]);
/// t.row(&["RL", "1.17"]);
/// let s = t.to_string();
/// assert!(s.contains("FR-FCFS"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are dropped.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        self.rows.push(
            (0..self.headers.len())
                .map(|i| {
                    cells
                        .get(i)
                        .map(|c| c.as_ref().to_owned())
                        .unwrap_or_default()
                })
                .collect(),
        );
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(line, "| {h:<w$} ");
        }
        line.push('|');
        let sep: String = line
            .chars()
            .map(|c| if c == '|' { '+' } else { '-' })
            .collect();
        writeln!(f, "{sep}")?;
        writeln!(f, "{line}")?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "| {cell:<w$} ");
            }
            line.push('|');
            writeln!(f, "{line}")?;
        }
        write!(f, "{sep}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxxxx", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
        let width = lines[0].len();
        assert!(
            lines.iter().all(|l| l.len() == width),
            "all lines equal width:\n{s}"
        );
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn short_rows_pad_and_long_rows_truncate() {
        let mut t = Table::new(&["a", "b"]);
        t.row::<&str>(&["only-a"]);
        t.row(&["1", "2", "3"]);
        let s = t.to_string();
        assert!(s.contains("only-a"));
        assert!(!s.contains('3'));
    }
}
