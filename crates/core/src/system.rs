//! The intelligent system: a configurable composition of the three
//! principles over the substrate crates, with a trace-driven full-system
//! simulation path (cache → memory controller → DRAM).

use ia_cache::{Cache, CacheOp, DipCache};
use ia_dram::{DramConfig, LatencyMode};
use ia_memctrl::{
    run_closed_loop_with, MemRequest, MemoryController, RlScheduler, RlSchedulerConfig, RunReport,
    Scheduler,
};
use ia_workloads::{Op, TraceRequest};
use ia_xmem::{AtomRegistry, DataAwareCache};

use crate::error::CoreError;
use crate::principles::{Principle, PrincipleSet};

/// Which fixed scheduler a non-learning configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-come first-served.
    Fcfs,
    /// First-ready FCFS.
    FrFcfs,
    /// Parallelism-aware batch scheduling.
    ParBs,
    /// Least-attained-service ranking.
    Atlas,
    /// Thread-cluster memory scheduling.
    Tcm,
    /// Blacklisting scheduler.
    Bliss,
    /// The self-optimizing RL scheduler.
    Rl,
}

impl SchedulerKind {
    /// Every scheduler, baseline first.
    #[must_use]
    pub fn all() -> [SchedulerKind; 7] {
        [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::ParBs,
            SchedulerKind::Atlas,
            SchedulerKind::Tcm,
            SchedulerKind::Bliss,
            SchedulerKind::Rl,
        ]
    }

    /// Instantiates the scheduler for `threads` hardware threads.
    #[must_use]
    pub fn build(self, threads: usize) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(ia_memctrl::Fcfs::new()),
            SchedulerKind::FrFcfs => Box::new(ia_memctrl::FrFcfs::new()),
            SchedulerKind::ParBs => Box::new(ia_memctrl::ParBs::new(threads)),
            SchedulerKind::Atlas => Box::new(ia_memctrl::Atlas::new(threads, 100_000)),
            SchedulerKind::Tcm => Box::new(ia_memctrl::Tcm::new(threads, 50_000, 5_000)),
            SchedulerKind::Bliss => Box::new(ia_memctrl::Bliss::new()),
            SchedulerKind::Rl => Box::new(RlScheduler::new(RlSchedulerConfig::default())),
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::ParBs => "PAR-BS",
            SchedulerKind::Atlas => "ATLAS",
            SchedulerKind::Tcm => "TCM",
            SchedulerKind::Bliss => "BLISS",
            SchedulerKind::Rl => "RL",
        }
    }
}

/// Full-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DRAM device.
    pub dram: DramConfig,
    /// Enabled principles.
    pub principles: PrincipleSet,
    /// Last-level cache size in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Cache line size.
    pub line_bytes: u64,
    /// Scheduler used when the data-driven principle is off.
    pub fixed_scheduler: SchedulerKind,
    /// Outstanding requests per thread (memory-level parallelism).
    pub window: usize,
    /// Simulation cycle budget.
    pub max_cycles: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            dram: DramConfig::ddr3_1600(),
            principles: PrincipleSet::none(),
            llc_bytes: 256 * 1024,
            llc_ways: 16,
            line_bytes: 64,
            fixed_scheduler: SchedulerKind::FrFcfs,
            window: 8,
            max_cycles: 50_000_000,
        }
    }
}

/// Result of one full-system run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Principles that were enabled.
    pub principles: PrincipleSet,
    /// LLC hit rate over the input trace.
    pub llc_hit_rate: f64,
    /// Requests that reached memory (misses + writebacks).
    pub memory_requests: u64,
    /// The memory-side run report.
    pub memory: RunReport,
}

impl SystemReport {
    /// End-to-end cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.memory.cycles
    }

    /// Off-chip data-movement energy, picojoules.
    #[must_use]
    pub fn movement_energy_pj(&self) -> f64 {
        self.memory.io_energy_pj
    }
}

/// The composed intelligent system.
///
/// # Examples
///
/// ```
/// use ia_core::{IntelligentSystem, PrincipleSet, SystemConfig};
/// use ia_workloads::{StreamGen, TraceGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let trace = StreamGen::new(0, 64, 1 << 20, 0.0)?.generate(2000, &mut rng);
/// let system = IntelligentSystem::new(SystemConfig {
///     principles: PrincipleSet::all(),
///     ..SystemConfig::default()
/// });
/// let report = system.run(&trace)?;
/// assert!(report.llc_hit_rate >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct IntelligentSystem {
    config: SystemConfig,
    registry: AtomRegistry,
}

impl IntelligentSystem {
    /// Creates a system from a configuration.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        IntelligentSystem {
            config,
            registry: AtomRegistry::new(),
        }
    }

    /// Attaches an X-Mem atom registry (used by the data-aware principle).
    #[must_use]
    pub fn with_registry(mut self, registry: AtomRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Records the workload a [`run`](IntelligentSystem::run) would
    /// consume into an `ia-tracefmt` writer, making the run a replayable
    /// on-disk artifact (replay it with
    /// [`run_recorded`](IntelligentSystem::run_recorded)).
    pub fn record_trace(&self, trace: &[TraceRequest], w: &mut ia_tracefmt::TraceWriter) {
        ia_workloads::record_trace(trace, w);
    }

    /// Replays a decoded `ia-tracefmt` artifact through the system —
    /// the counterpart of [`record_trace`](IntelligentSystem::record_trace).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the recorded trace is empty or the
    /// configuration is invalid.
    pub fn run_recorded(
        &self,
        reader: &ia_tracefmt::TraceReader,
    ) -> Result<SystemReport, CoreError> {
        self.run(&ia_workloads::trace_from_records(reader.records()))
    }

    /// Runs a trace through the system: the LLC filters it, misses and
    /// writebacks go to the memory controller, the configured principles
    /// select the cache policy, scheduler, and DRAM latency mode.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the trace is empty or the configuration is
    /// invalid.
    pub fn run(&self, trace: &[TraceRequest]) -> Result<SystemReport, CoreError> {
        if trace.is_empty() {
            return Err(CoreError::invalid("trace must be non-empty"));
        }
        let cfg = &self.config;
        let p = cfg.principles;
        let threads = trace.iter().map(|r| r.thread).max().unwrap_or(0) + 1;

        // ---- Cache stage (data-aware / data-driven choose the policy) ----
        let mut miss_traces: Vec<Vec<MemRequest>> = vec![Vec::new(); threads];
        let push = |addr: u64, op: Op, thread: usize, traces: &mut Vec<Vec<MemRequest>>| {
            let req = match op {
                Op::Read => MemRequest::read(addr, thread),
                Op::Write => MemRequest::write(addr, thread),
            };
            traces[thread].push(req);
        };
        let (hits, misses) = if p.has(Principle::DataAware) {
            let base = Cache::new(cfg.llc_bytes, cfg.line_bytes, cfg.llc_ways)
                .map_err(|_| CoreError::invalid("invalid LLC geometry"))?;
            let mut cache = DataAwareCache::new(base, &self.registry);
            for r in trace {
                let access = cache.access(r.addr, to_cache_op(r.op));
                if !access.hit {
                    push(r.addr, r.op, r.thread, &mut miss_traces);
                }
                if let Some(wb) = access.writeback {
                    push(wb, Op::Write, r.thread, &mut miss_traces);
                }
            }
            (cache.cache().stats().hits, cache.cache().stats().misses)
        } else if p.has(Principle::DataDriven) {
            let mut cache = DipCache::new(cfg.llc_bytes, cfg.line_bytes, cfg.llc_ways)
                .map_err(|_| CoreError::invalid("invalid LLC geometry"))?;
            for r in trace {
                let access = cache.access(r.addr, to_cache_op(r.op));
                if !access.hit {
                    push(r.addr, r.op, r.thread, &mut miss_traces);
                }
                if let Some(wb) = access.writeback {
                    push(wb, Op::Write, r.thread, &mut miss_traces);
                }
            }
            (cache.cache().stats().hits, cache.cache().stats().misses)
        } else {
            let mut cache = Cache::new(cfg.llc_bytes, cfg.line_bytes, cfg.llc_ways)
                .map_err(|_| CoreError::invalid("invalid LLC geometry"))?;
            for r in trace {
                let access = cache.access(r.addr, to_cache_op(r.op));
                if !access.hit {
                    push(r.addr, r.op, r.thread, &mut miss_traces);
                }
                if let Some(wb) = access.writeback {
                    push(wb, Op::Write, r.thread, &mut miss_traces);
                }
            }
            (cache.stats().hits, cache.stats().misses)
        };
        let llc_hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };

        // Threads with no misses still need a placeholder so the harness
        // has a non-empty trace per thread.
        for t in &mut miss_traces {
            if t.is_empty() {
                t.push(MemRequest::read(0, 0));
            }
        }
        let memory_requests: u64 = miss_traces.iter().map(|t| t.len() as u64).sum();

        // ---- Memory stage (data-driven scheduler, data-centric DRAM) ----
        let scheduler: Box<dyn Scheduler> = if p.has(Principle::DataDriven) {
            SchedulerKind::Rl.build(threads)
        } else {
            cfg.fixed_scheduler.build(threads)
        };
        let mut ctrl = MemoryController::new(cfg.dram.clone(), scheduler)
            .map_err(|e| CoreError::config(e.to_string()))?;
        if p.has(Principle::DataCentric) {
            // The data-centric principle's "low-latency access to data":
            // AL-DRAM-style common-case timing (the strongest published
            // single mechanism; ChargeCache/TL-DRAM are evaluated
            // separately in E13).
            ctrl = ctrl.with_latency_mode(LatencyMode::AlDram { scale: 0.75 });
        }
        let memory = run_closed_loop_with(ctrl, &miss_traces, cfg.window, cfg.max_cycles)
            .map_err(|e| CoreError::config(e.to_string()))?;

        Ok(SystemReport {
            principles: p,
            llc_hit_rate,
            memory_requests,
            memory,
        })
    }
}

fn to_cache_op(op: Op) -> CacheOp {
    match op {
        Op::Read => CacheOp::Read,
        Op::Write => CacheOp::Write,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_workloads::{StreamGen, TraceGenerator, ZipfGen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn zipf_trace(n: usize) -> Vec<TraceRequest> {
        let mut r = rng();
        ZipfGen::new(0, 4096, 4096, 1.1, 0.2)
            .unwrap()
            .generate(n, &mut r)
    }

    #[test]
    fn baseline_system_runs() {
        let sys = IntelligentSystem::new(SystemConfig::default());
        let report = sys.run(&zipf_trace(3000)).unwrap();
        assert!(report.memory.stats.completed > 0);
        assert!(report.llc_hit_rate > 0.0 && report.llc_hit_rate < 1.0);
        assert_eq!(report.principles, PrincipleSet::none());
    }

    #[test]
    fn empty_trace_is_an_error() {
        let sys = IntelligentSystem::new(SystemConfig::default());
        assert!(sys.run(&[]).is_err());
    }

    #[test]
    fn streaming_trace_hits_llc_heavily() {
        let mut r = rng();
        let trace = StreamGen::new(0, 64, 16 * 1024, 0.0)
            .unwrap()
            .generate(5000, &mut r);
        let sys = IntelligentSystem::new(SystemConfig::default());
        let report = sys.run(&trace).unwrap();
        assert!(
            report.llc_hit_rate > 0.9,
            "small working set should hit: {}",
            report.llc_hit_rate
        );
    }

    #[test]
    fn data_centric_system_is_no_slower() {
        let trace = zipf_trace(4000);
        let base = IntelligentSystem::new(SystemConfig::default())
            .run(&trace)
            .unwrap();
        let centric = IntelligentSystem::new(SystemConfig {
            principles: PrincipleSet::none().with(Principle::DataCentric),
            ..SystemConfig::default()
        })
        .run(&trace)
        .unwrap();
        assert!(centric.cycles() <= base.cycles());
    }

    #[test]
    fn all_principles_system_runs_and_reports() {
        let trace = zipf_trace(3000);
        let sys = IntelligentSystem::new(SystemConfig {
            principles: PrincipleSet::all(),
            ..SystemConfig::default()
        });
        let report = sys.run(&trace).unwrap();
        assert_eq!(report.principles.count(), 3);
        assert!(report.memory_requests > 0);
        assert!(report.movement_energy_pj() > 0.0);
    }

    #[test]
    fn scheduler_kinds_build() {
        for kind in SchedulerKind::all() {
            let s = kind.build(4);
            assert!(!s.name().is_empty());
            assert!(!kind.name().is_empty());
        }
    }
}
