//! Principle ablation: the paper's thesis, quantified — each principle
//! added to the processor-centric baseline should independently improve
//! the system, and the three compose.

use ia_workloads::TraceRequest;
use ia_xmem::AtomRegistry;

use crate::error::CoreError;
use crate::principles::PrincipleSet;
use crate::system::{IntelligentSystem, SystemConfig, SystemReport};

/// One rung of the ablation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Principles enabled at this rung.
    pub principles: PrincipleSet,
    /// Full-system report.
    pub report: SystemReport,
    /// Speedup vs. the baseline rung (cycles ratio).
    pub speedup: f64,
}

/// Runs the ablation ladder (baseline → +centric → +driven → all) over the
/// same trace and registry, returning one row per rung.
///
/// The four rungs are independent full-system simulations, so they fan
/// out on the `ia-par` worker pool (ambient `--threads` setting); the
/// pool returns reports in ladder order, so speedups — all relative to
/// the rung-0 baseline — are identical to the serial run.
///
/// # Errors
///
/// Propagates [`CoreError`] from the underlying runs (the error of the
/// lowest failing rung when several fail).
pub fn run_ablation(
    base_config: &SystemConfig,
    registry: &AtomRegistry,
    trace: &[TraceRequest],
) -> Result<Vec<AblationRow>, CoreError> {
    let reports = ia_par::par_map(
        ia_par::auto_threads(),
        PrincipleSet::ladder().to_vec(),
        |principles| {
            let config = SystemConfig {
                principles,
                ..base_config.clone()
            };
            let system = IntelligentSystem::new(config).with_registry(registry.clone());
            system.run(trace).map(|report| (principles, report))
        },
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;

    let baseline_cycles = reports
        .first()
        .map_or(1, |(_, report)| report.cycles().max(1));
    Ok(reports
        .into_iter()
        .map(|(principles, report)| AblationRow {
            principles,
            speedup: baseline_cycles as f64 / report.cycles().max(1) as f64,
            report,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_workloads::{TraceGenerator, ZipfGen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ladder_produces_four_rows_with_baseline_unity() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trace = ZipfGen::new(0, 2048, 4096, 1.1, 0.2)
            .unwrap()
            .generate(2500, &mut rng);
        let rows = run_ablation(&SystemConfig::default(), &AtomRegistry::new(), &trace).unwrap();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].principles.count(), 0);
        assert_eq!(rows[3].principles.count(), 3);
        // The full system should not be slower than the baseline.
        assert!(
            rows[3].speedup >= 0.95,
            "full system speedup {}",
            rows[3].speedup
        );
    }

    #[test]
    fn ablation_rejects_empty_trace() {
        assert!(run_ablation(&SystemConfig::default(), &AtomRegistry::new(), &[]).is_err());
    }
}
