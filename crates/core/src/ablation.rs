//! Principle ablation: the paper's thesis, quantified — each principle
//! added to the processor-centric baseline should independently improve
//! the system, and the three compose.

use ia_workloads::TraceRequest;
use ia_xmem::AtomRegistry;

use crate::error::CoreError;
use crate::principles::PrincipleSet;
use crate::system::{IntelligentSystem, SystemConfig, SystemReport};

/// One rung of the ablation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Principles enabled at this rung.
    pub principles: PrincipleSet,
    /// Full-system report.
    pub report: SystemReport,
    /// Speedup vs. the baseline rung (cycles ratio).
    pub speedup: f64,
}

/// Runs the ablation ladder (baseline → +centric → +driven → all) over the
/// same trace and registry, returning one row per rung.
///
/// # Errors
///
/// Propagates [`CoreError`] from the underlying runs.
pub fn run_ablation(
    base_config: &SystemConfig,
    registry: &AtomRegistry,
    trace: &[TraceRequest],
) -> Result<Vec<AblationRow>, CoreError> {
    let mut rows = Vec::new();
    let mut baseline_cycles = None;
    for principles in PrincipleSet::ladder() {
        let config = SystemConfig {
            principles,
            ..base_config.clone()
        };
        let system = IntelligentSystem::new(config).with_registry(registry.clone());
        let report = system.run(trace)?;
        let cycles = report.cycles().max(1);
        let base = *baseline_cycles.get_or_insert(cycles);
        rows.push(AblationRow {
            principles,
            speedup: base as f64 / cycles as f64,
            report,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_workloads::{TraceGenerator, ZipfGen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ladder_produces_four_rows_with_baseline_unity() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trace = ZipfGen::new(0, 2048, 4096, 1.1, 0.2)
            .unwrap()
            .generate(2500, &mut rng);
        let rows = run_ablation(&SystemConfig::default(), &AtomRegistry::new(), &trace).unwrap();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].principles.count(), 0);
        assert_eq!(rows[3].principles.count(), 3);
        // The full system should not be slower than the baseline.
        assert!(
            rows[3].speedup >= 0.95,
            "full system speedup {}",
            rows[3].speedup
        );
    }

    #[test]
    fn ablation_rejects_empty_trace() {
        assert!(run_ablation(&SystemConfig::default(), &AtomRegistry::new(), &[]).is_err());
    }
}
