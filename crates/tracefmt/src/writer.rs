//! The encoder: streams records into the v1 wire layout.

use std::path::Path;

use crate::record::TraceRecord;
use crate::{checksum, varint, TraceError, HEADER_LEN, MAGIC, TAG_FOOTER, TAG_RECORD, VERSION};

/// Streams [`TraceRecord`]s into the v1 binary layout: call
/// [`push`](TraceWriter::push) per record, then
/// [`finish`](TraceWriter::finish) (or
/// [`write_to_path`](TraceWriter::write_to_path)) to seal the trace
/// with its checksummed footer.
///
/// Addresses and issue cycles are delta-encoded against the previous
/// record (zigzag varints), so the common patterns — striding streams,
/// monotone clocks — cost one or two bytes per field.
#[derive(Debug, Clone)]
pub struct TraceWriter {
    seed: u64,
    body: Vec<u8>,
    count: u64,
    prev_addr: u64,
    prev_at: u64,
}

impl TraceWriter {
    /// Starts a trace whose header records `seed` — the generator seed
    /// (or campaign id) that produced the workload, kept with the data
    /// so a replayed artifact is self-describing.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TraceWriter {
            seed,
            body: Vec::new(),
            count: 0,
            prev_addr: 0,
            prev_at: 0,
        }
    }

    /// Appends one record.
    pub fn push(&mut self, rec: &TraceRecord) {
        self.body.push(TAG_RECORD);
        self.body.push(rec.op.flag_bit());
        varint::put_u64(&mut self.body, u64::from(rec.stream));
        varint::put_i64(&mut self.body, rec.addr.wrapping_sub(self.prev_addr) as i64);
        varint::put_i64(&mut self.body, rec.at.wrapping_sub(self.prev_at) as i64);
        self.prev_addr = rec.addr;
        self.prev_at = rec.at;
        self.count += 1;
    }

    /// Appends every record of `recs`.
    pub fn extend(&mut self, recs: &[TraceRecord]) {
        for r in recs {
            self.push(r);
        }
    }

    /// Records written so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no record has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Seals the trace: header, record section, and the footer carrying
    /// the record count and the FNV-1a checksum of the record section.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.body.len() + 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        let sum = checksum(&self.body);
        out.extend_from_slice(&self.body);
        out.push(TAG_FOOTER);
        varint::put_u64(&mut out, self.count);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Seals the trace and writes it to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be written.
    pub fn write_to_path(self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let path = path.as_ref();
        std::fs::write(path, self.finish())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceOp;

    #[test]
    fn layout_is_header_records_footer() {
        let mut w = TraceWriter::new(0x5EED);
        w.push(&TraceRecord::new(64, TraceOp::Read, 0, 1));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        let bytes = w.finish();
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(bytes[8..12], VERSION.to_le_bytes());
        assert_eq!(bytes[12..20], 0x5EEDu64.to_le_bytes());
        assert_eq!(bytes[HEADER_LEN], TAG_RECORD);
        // Record: tag, flags(read=0), stream=0, addr delta 64 (zigzag
        // 128 -> 2 bytes), at delta 1 (zigzag 2 -> 1 byte) = 6 bytes.
        assert_eq!(
            &bytes[HEADER_LEN..HEADER_LEN + 6],
            &[TAG_RECORD, 0x00, 0x00, 0x80, 0x01, 0x02]
        );
        let footer_at = HEADER_LEN + 6;
        assert_eq!(bytes[footer_at], TAG_FOOTER);
        assert_eq!(bytes[footer_at + 1], 1, "count varint");
        assert_eq!(bytes.len(), footer_at + 2 + 8);
    }

    #[test]
    fn deltas_reset_nothing_and_wrap_cleanly() {
        let mut w = TraceWriter::new(0);
        w.extend(&[
            TraceRecord::new(u64::MAX, TraceOp::Write, 1, 0),
            TraceRecord::new(0, TraceOp::Read, 1, u64::MAX),
        ]);
        // Wrapping deltas must not panic and must round-trip (covered by
        // the reader tests); here we only assert the writer accepts them.
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn write_to_path_reports_io_errors() {
        let w = TraceWriter::new(0);
        let err = w
            .write_to_path("/nonexistent-dir/trace.bin")
            .expect_err("unwritable path");
        assert!(matches!(err, TraceError::Io(_)));
    }
}
