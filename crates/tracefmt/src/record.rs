//! The trace record: one memory request.

/// Direction of a recorded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl TraceOp {
    /// The flags-byte encoding of this op (bit 0).
    #[must_use]
    pub(crate) fn flag_bit(self) -> u8 {
        match self {
            TraceOp::Read => 0,
            TraceOp::Write => 1,
        }
    }
}

/// One memory request of a recorded trace.
///
/// `stream` identifies the originating tenant / hardware thread /
/// request stream — replay harnesses group records by stream to rebuild
/// per-thread request lists. `at` is the issue cycle (or sequence index
/// for workloads generated outside a simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Byte address of the access.
    pub addr: u64,
    /// Load or store.
    pub op: TraceOp,
    /// Tenant / stream / hardware-thread id.
    pub stream: u32,
    /// Issue cycle (or sequence index when no clock is available).
    pub at: u64,
}

impl TraceRecord {
    /// Creates a record.
    #[must_use]
    pub fn new(addr: u64, op: TraceOp, stream: u32, at: u64) -> Self {
        TraceRecord {
            addr,
            op,
            stream,
            at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_and_flags() {
        let r = TraceRecord::new(0x40, TraceOp::Write, 3, 99);
        assert_eq!(r.addr, 0x40);
        assert_eq!(r.stream, 3);
        assert_eq!(r.at, 99);
        assert_eq!(TraceOp::Read.flag_bit(), 0);
        assert_eq!(TraceOp::Write.flag_bit(), 1);
    }
}
