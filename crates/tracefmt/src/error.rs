//! Structured decode/IO errors — the crate's no-panic contract.

use std::error::Error;
use std::fmt;

/// Every way a trace can fail to read or write. The decoder returns
/// these for *any* malformed input; it never panics, so corpus files,
/// fuzz inputs, and network-delivered traces are safe to feed in raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The first 8 bytes are not the trace magic.
    BadMagic,
    /// The header's version field names a version this decoder does not
    /// understand.
    UnknownVersion(u32),
    /// The input ended in the middle of the named field.
    Truncated(&'static str),
    /// A varint for the named field encoded more than 64 bits.
    VarintOverflow(&'static str),
    /// A record-section tag byte was neither a record nor the footer.
    BadTag(u8),
    /// A record's flags byte set bits reserved by v1.
    ReservedFlags(u8),
    /// A record's stream id does not fit in 32 bits.
    StreamTooLarge(u64),
    /// The footer's record count disagrees with the records present.
    CountMismatch {
        /// Count the footer declared.
        expected: u64,
        /// Records actually decoded.
        found: u64,
    },
    /// The footer checksum does not match the record section.
    ChecksumMismatch {
        /// Checksum the footer declared.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// Well-formed trace followed by garbage bytes.
    TrailingBytes(usize),
    /// Reading or writing the underlying file failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => f.write_str("not a trace file (bad magic)"),
            TraceError::UnknownVersion(v) => write!(f, "unknown trace format version {v}"),
            TraceError::Truncated(what) => write!(f, "truncated trace: input ended in {what}"),
            TraceError::VarintOverflow(what) => {
                write!(f, "malformed trace: varint overflow in {what}")
            }
            TraceError::BadTag(t) => write!(f, "malformed trace: unknown record tag {t:#04x}"),
            TraceError::ReservedFlags(b) => {
                write!(f, "malformed trace: reserved flag bits set ({b:#04x})")
            }
            TraceError::StreamTooLarge(s) => {
                write!(f, "malformed trace: stream id {s} exceeds 32 bits")
            }
            TraceError::CountMismatch { expected, found } => write!(
                f,
                "trace footer declares {expected} records but {found} are present"
            ),
            TraceError::ChecksumMismatch { expected, found } => write!(
                f,
                "trace checksum mismatch: footer {expected:#018x}, computed {found:#018x}"
            ),
            TraceError::TrailingBytes(n) => {
                write!(f, "malformed trace: {n} trailing bytes after footer")
            }
            TraceError::Io(msg) => write!(f, "trace io error: {msg}"),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_and_is_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<TraceError>();
        let variants = [
            TraceError::BadMagic,
            TraceError::UnknownVersion(9),
            TraceError::Truncated("header"),
            TraceError::VarintOverflow("addr delta"),
            TraceError::BadTag(0x7F),
            TraceError::ReservedFlags(0xFE),
            TraceError::StreamTooLarge(1 << 40),
            TraceError::CountMismatch {
                expected: 3,
                found: 2,
            },
            TraceError::ChecksumMismatch {
                expected: 1,
                found: 2,
            },
            TraceError::TrailingBytes(4),
            TraceError::Io("denied".to_owned()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
