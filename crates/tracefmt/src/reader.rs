//! The decoder: validates and decodes a whole trace, returning
//! structured errors for every malformed input.

use std::path::Path;

use crate::record::{TraceOp, TraceRecord};
use crate::{checksum, varint, TraceError, HEADER_LEN, MAGIC, TAG_FOOTER, TAG_RECORD, VERSION};

/// A fully validated, decoded trace.
///
/// Decoding is eager: the constructor checks the magic, version, every
/// record's encoding, the footer count, and the record-section checksum
/// before returning, so a `TraceReader` in hand is a guarantee the
/// artifact is intact.
#[derive(Debug, Clone)]
pub struct TraceReader {
    seed: u64,
    version: u32,
    records: Vec<TraceRecord>,
}

impl TraceReader {
    /// Decodes and validates `data`.
    ///
    /// # Errors
    ///
    /// Returns the [`TraceError`] describing the first malformation:
    /// bad magic, unknown version, truncation (at any boundary), bad
    /// record tag or flags, varint overflow, count mismatch, checksum
    /// mismatch, or trailing garbage. Never panics.
    pub fn from_bytes(data: &[u8]) -> Result<Self, TraceError> {
        if data.len() < 8 {
            if !data.is_empty() && data[..data.len().min(8)] != MAGIC[..data.len().min(8)] {
                return Err(TraceError::BadMagic);
            }
            return Err(TraceError::Truncated("magic"));
        }
        if data[..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let Some(version_bytes) = data.get(8..12) else {
            return Err(TraceError::Truncated("version"));
        };
        let mut v4 = [0u8; 4];
        v4.copy_from_slice(version_bytes);
        let version = u32::from_le_bytes(v4);
        if version != VERSION {
            return Err(TraceError::UnknownVersion(version));
        }
        let Some(seed_bytes) = data.get(12..HEADER_LEN) else {
            return Err(TraceError::Truncated("seed"));
        };
        let mut s8 = [0u8; 8];
        s8.copy_from_slice(seed_bytes);
        let seed = u64::from_le_bytes(s8);

        let mut pos = HEADER_LEN;
        let mut records = Vec::new();
        let mut prev_addr: u64 = 0;
        let mut prev_at: u64 = 0;
        loop {
            let Some(&tag) = data.get(pos) else {
                return Err(TraceError::Truncated("record tag"));
            };
            pos += 1;
            match tag {
                TAG_RECORD => {
                    let Some(&flags) = data.get(pos) else {
                        return Err(TraceError::Truncated("record flags"));
                    };
                    pos += 1;
                    if flags & !0x01 != 0 {
                        return Err(TraceError::ReservedFlags(flags));
                    }
                    let op = if flags & 0x01 == 0 {
                        TraceOp::Read
                    } else {
                        TraceOp::Write
                    };
                    let stream = varint::get_u64(data, &mut pos, "stream id")?;
                    let stream =
                        u32::try_from(stream).map_err(|_| TraceError::StreamTooLarge(stream))?;
                    let d_addr = varint::get_i64(data, &mut pos, "addr delta")?;
                    let d_at = varint::get_i64(data, &mut pos, "cycle delta")?;
                    prev_addr = prev_addr.wrapping_add(d_addr as u64);
                    prev_at = prev_at.wrapping_add(d_at as u64);
                    records.push(TraceRecord {
                        addr: prev_addr,
                        op,
                        stream,
                        at: prev_at,
                    });
                }
                TAG_FOOTER => {
                    let body_end = pos - 1;
                    let count = varint::get_u64(data, &mut pos, "footer count")?;
                    if count != records.len() as u64 {
                        return Err(TraceError::CountMismatch {
                            expected: count,
                            found: records.len() as u64,
                        });
                    }
                    let Some(sum_bytes) = data.get(pos..pos + 8) else {
                        return Err(TraceError::Truncated("footer checksum"));
                    };
                    let mut c8 = [0u8; 8];
                    c8.copy_from_slice(sum_bytes);
                    let expected = u64::from_le_bytes(c8);
                    pos += 8;
                    let found = checksum(&data[HEADER_LEN..body_end]);
                    if expected != found {
                        return Err(TraceError::ChecksumMismatch { expected, found });
                    }
                    if pos != data.len() {
                        return Err(TraceError::TrailingBytes(data.len() - pos));
                    }
                    return Ok(TraceReader {
                        seed,
                        version,
                        records,
                    });
                }
                other => return Err(TraceError::BadTag(other)),
            }
        }
    }

    /// Reads and decodes the trace at `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be read, otherwise any
    /// decode error from [`TraceReader::from_bytes`].
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let data =
            std::fs::read(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        TraceReader::from_bytes(&data)
    }

    /// The generator seed recorded in the header.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The format version of the decoded file.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The decoded records, in recording order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the reader, returning the records.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceWriter;

    fn sample() -> Vec<u8> {
        let mut w = TraceWriter::new(0xABCD);
        w.extend(&[
            TraceRecord::new(0x1000, TraceOp::Read, 0, 5),
            TraceRecord::new(0x1040, TraceOp::Write, 1, 6),
            TraceRecord::new(0x0800, TraceOp::Read, 2, 6),
        ]);
        w.finish()
    }

    #[test]
    fn decodes_what_the_writer_encodes() {
        let r = TraceReader::from_bytes(&sample()).expect("valid");
        assert_eq!(r.seed(), 0xABCD);
        assert_eq!(r.version(), VERSION);
        let recs = r.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], TraceRecord::new(0x1000, TraceOp::Read, 0, 5));
        assert_eq!(recs[1], TraceRecord::new(0x1040, TraceOp::Write, 1, 6));
        assert_eq!(recs[2], TraceRecord::new(0x0800, TraceOp::Read, 2, 6));
        assert_eq!(r.clone().into_records().len(), 3);
    }

    #[test]
    fn wrapping_deltas_round_trip() {
        let mut w = TraceWriter::new(0);
        let recs = [
            TraceRecord::new(u64::MAX, TraceOp::Write, 0, 0),
            TraceRecord::new(0, TraceOp::Read, 0, u64::MAX),
            TraceRecord::new(u64::MAX / 2, TraceOp::Read, u32::MAX, 1),
        ];
        w.extend(&recs);
        let r = TraceReader::from_bytes(&w.finish()).expect("valid");
        assert_eq!(r.records(), &recs);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = TraceReader::from_path("/nonexistent-dir/absent.trace").expect_err("io");
        assert!(matches!(err, TraceError::Io(_)));
    }
}
