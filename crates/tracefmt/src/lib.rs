//! # ia-tracefmt — the record/replay trace IR
//!
//! A compact, versioned, **zero-dependency** binary format for memory
//! request traces, so any workload run can be recorded once and replayed
//! everywhere: experiments become replayable artifacts, external traces
//! become ingestible, and fuzzing corpora become plain files.
//!
//! ## Shape
//!
//! * [`TraceRecord`] — one memory request: address, read/write
//!   ([`TraceOp`]), originating tenant/stream id, and issue cycle.
//! * [`TraceWriter`] — streams records into the v1 wire layout:
//!   magic + version + seed header, delta-encoded varint records, and a
//!   checksummed footer (see `FORMAT.md` for the byte-level spec).
//! * [`TraceReader`] — validates and decodes a whole trace; every
//!   malformed input (truncation, bad magic, unknown version, checksum
//!   mismatch, …) is a structured [`TraceError`] — the decoder never
//!   panics, which is what lets fuzzers and CI feed it garbage.
//!
//! ## Example
//!
//! ```
//! use ia_tracefmt::{TraceOp, TraceReader, TraceRecord, TraceWriter};
//!
//! # fn main() -> Result<(), ia_tracefmt::TraceError> {
//! let mut w = TraceWriter::new(42);
//! w.push(&TraceRecord::new(0x1000, TraceOp::Read, 0, 10));
//! w.push(&TraceRecord::new(0x1040, TraceOp::Write, 1, 11));
//! let bytes = w.finish();
//!
//! let r = TraceReader::from_bytes(&bytes)?;
//! assert_eq!(r.seed(), 42);
//! assert_eq!(r.records().len(), 2);
//! assert_eq!(r.records()[0].addr, 0x1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod reader;
mod record;
mod varint;
mod writer;

pub use error::TraceError;
pub use reader::TraceReader;
pub use record::{TraceOp, TraceRecord};
pub use writer::TraceWriter;

/// The 8-byte file magic (`"IATRACE\0"`).
pub const MAGIC: [u8; 8] = *b"IATRACE\0";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

/// Fixed header size in bytes: magic (8) + version (4) + seed (8).
pub const HEADER_LEN: usize = 20;

/// Record-section tag introducing one record.
pub(crate) const TAG_RECORD: u8 = 0x01;

/// Record-section tag introducing the footer.
pub(crate) const TAG_FOOTER: u8 = 0x00;

/// FNV-1a 64 over `bytes` — the footer checksum. Public so external
/// tooling can verify or produce traces without linking the writer.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_fnv1a64() {
        // Reference values for the FNV-1a 64 test vectors.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = TraceWriter::new(7).finish();
        assert_eq!(bytes.len(), HEADER_LEN + 1 + 1 + 8); // footer tag + count + checksum
        let r = TraceReader::from_bytes(&bytes).expect("valid");
        assert_eq!(r.seed(), 7);
        assert_eq!(r.version(), VERSION);
        assert!(r.records().is_empty());
    }
}
