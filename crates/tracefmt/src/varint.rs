//! LEB128 varints and zigzag deltas — the wire primitives of the v1
//! record section.

use crate::TraceError;

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes).
pub(crate) fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped (so small-magnitude deltas of either sign
/// stay short).
pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, zigzag(v));
}

/// Maps a signed value onto the unsigned varint domain.
#[must_use]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads an unsigned LEB128 varint from `data` starting at `*pos`,
/// advancing `*pos` past it. `what` names the field for error context.
///
/// # Errors
///
/// [`TraceError::Truncated`] if the input ends mid-varint;
/// [`TraceError::VarintOverflow`] if the encoding exceeds 64 bits.
pub(crate) fn get_u64(data: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(TraceError::Truncated(what));
        };
        *pos += 1;
        let payload = u64::from(byte & 0x7F);
        // The 10th byte (shift 63) may only carry one payload bit.
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(TraceError::VarintOverflow(what));
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads a zigzag varint (see [`get_u64`] for the error contract).
pub(crate) fn get_i64(data: &[u8], pos: &mut usize, what: &'static str) -> Result<i64, TraceError> {
    Ok(unzigzag(get_u64(data, pos, what)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u64(v: u64) {
        let mut buf = Vec::new();
        put_u64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos, "t").expect("valid"), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn u64_round_trips_across_the_domain() {
        for v in [0, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            round_trip_u64(v);
        }
    }

    #[test]
    fn i64_round_trips_and_zigzag_is_compact() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_i64(&buf, &mut pos, "t").expect("valid"), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn truncated_and_overlong_varints_are_errors() {
        let mut pos = 0;
        assert_eq!(
            get_u64(&[0x80, 0x80], &mut pos, "field"),
            Err(TraceError::Truncated("field"))
        );
        // 11 continuation bytes: more than 64 bits of payload.
        let overlong = [0xFFu8; 10];
        let mut pos = 0;
        assert_eq!(
            get_u64(&overlong, &mut pos, "field"),
            Err(TraceError::VarintOverflow("field"))
        );
        // 10 bytes whose last byte carries more than the 1 spare bit.
        let mut ten = vec![0x80u8; 9];
        ten.push(0x02);
        let mut pos = 0;
        assert_eq!(
            get_u64(&ten, &mut pos, "field"),
            Err(TraceError::VarintOverflow("field"))
        );
    }
}
