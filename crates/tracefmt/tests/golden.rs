//! Golden fixture: pins the v1 byte layout. If this test breaks, the
//! wire format changed — that requires a version bump, not a fixture
//! update (see FORMAT.md, "Versioning").

use ia_tracefmt::{TraceOp, TraceReader, TraceRecord, TraceWriter};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1.trace");

const GOLDEN_SEED: u64 = 0x1A2B_3C4D_5E6F_7788;

fn golden_records() -> Vec<TraceRecord> {
    vec![
        TraceRecord::new(0x1000, TraceOp::Read, 0, 100),
        TraceRecord::new(0x1040, TraceOp::Write, 1, 101),
        TraceRecord::new(0x0FC0, TraceOp::Read, 0, 103),
        TraceRecord::new(u64::MAX, TraceOp::Write, 7, 103),
        TraceRecord::new(0, TraceOp::Read, u32::MAX, 104),
    ]
}

fn golden_bytes() -> Vec<u8> {
    let mut w = TraceWriter::new(GOLDEN_SEED);
    w.extend(&golden_records());
    w.finish()
}

#[test]
fn fixture_decodes_to_the_golden_records() {
    let r = TraceReader::from_path(FIXTURE).expect("fixture must decode");
    assert_eq!(r.seed(), GOLDEN_SEED);
    assert_eq!(r.version(), ia_tracefmt::VERSION);
    assert_eq!(r.records(), golden_records().as_slice());
}

#[test]
fn encoder_reproduces_the_fixture_byte_for_byte() {
    let on_disk = std::fs::read(FIXTURE).expect("fixture present");
    assert_eq!(
        golden_bytes(),
        on_disk,
        "v1 byte layout drifted from the checked-in fixture"
    );
}

#[test]
fn fixture_header_fields_sit_at_their_documented_offsets() {
    let on_disk = std::fs::read(FIXTURE).expect("fixture present");
    assert_eq!(&on_disk[..8], &ia_tracefmt::MAGIC);
    assert_eq!(on_disk[8..12], ia_tracefmt::VERSION.to_le_bytes());
    assert_eq!(on_disk[12..20], GOLDEN_SEED.to_le_bytes());
}

/// Writes the fixture. Run explicitly when *adding* a new version's
/// fixture: `cargo test -p ia-tracefmt --test golden -- --ignored`.
#[test]
#[ignore = "fixture generator, not a check"]
fn regenerate_fixture() {
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
        .expect("fixtures dir");
    std::fs::write(FIXTURE, golden_bytes()).expect("write fixture");
}
