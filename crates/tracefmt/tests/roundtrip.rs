//! Property tests: encode → decode is the identity on records and seed,
//! and encoding is a pure function of its inputs.

use ia_tracefmt::{TraceOp, TraceReader, TraceRecord, TraceWriter};
use proptest::prelude::*;

fn to_records(raw: Vec<(u64, bool, u32, u64)>) -> Vec<TraceRecord> {
    raw.into_iter()
        .map(|(addr, is_write, stream, at)| {
            let op = if is_write {
                TraceOp::Write
            } else {
                TraceOp::Read
            };
            TraceRecord::new(addr, op, stream, at)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_identity(
        seed in any::<u64>(),
        raw in prop::collection::vec(
            (any::<u64>(), any::<bool>(), any::<u32>(), any::<u64>()),
            0..64,
        ),
    ) {
        let records = to_records(raw);
        let mut w = TraceWriter::new(seed);
        w.extend(&records);
        prop_assert_eq!(w.len(), records.len() as u64);
        let bytes = w.finish();

        let r = TraceReader::from_bytes(&bytes).expect("writer output must decode");
        prop_assert_eq!(r.seed(), seed);
        prop_assert_eq!(r.version(), ia_tracefmt::VERSION);
        prop_assert_eq!(r.records(), records.as_slice());
    }

    #[test]
    fn encoding_is_deterministic(
        seed in any::<u64>(),
        raw in prop::collection::vec(
            (any::<u64>(), any::<bool>(), 0u32..16, 0u64..1_000_000),
            1..32,
        ),
    ) {
        let records = to_records(raw);
        let encode = || {
            let mut w = TraceWriter::new(seed);
            w.extend(&records);
            w.finish()
        };
        prop_assert_eq!(encode(), encode());
    }

    #[test]
    fn dense_workload_encoding_is_compact(
        base in 0u64..(1 << 40),
        stride in 1u64..4096,
        n in 8usize..64,
    ) {
        // Striding streams with a monotone clock — the shape real
        // generators emit — must cost far less than the 21-byte naive
        // fixed encoding per record.
        let records: Vec<TraceRecord> = (0..n)
            .map(|i| {
                TraceRecord::new(
                    base + stride * i as u64,
                    if i % 3 == 0 { TraceOp::Write } else { TraceOp::Read },
                    (i % 4) as u32,
                    i as u64,
                )
            })
            .collect();
        let mut w = TraceWriter::new(1);
        w.extend(&records);
        let bytes = w.finish();
        let per_record = (bytes.len() - ia_tracefmt::HEADER_LEN - 10) as f64 / n as f64;
        prop_assert!(
            per_record <= 9.0,
            "delta encoding should stay small, got {per_record:.1} B/record"
        );
        let r = TraceReader::from_bytes(&bytes).expect("valid");
        prop_assert_eq!(r.records(), records.as_slice());
    }
}
