//! The malformed-input corpus: every corruption must surface as a
//! structured [`TraceError`] — never a panic, never a silent success.

use ia_tracefmt::{TraceError, TraceOp, TraceReader, TraceRecord, TraceWriter, HEADER_LEN};
use proptest::prelude::*;

fn valid_trace() -> Vec<u8> {
    let mut w = TraceWriter::new(0xDEAD_BEEF);
    w.extend(&[
        TraceRecord::new(0x1000, TraceOp::Read, 0, 1),
        TraceRecord::new(0x1040, TraceOp::Write, 1, 2),
        TraceRecord::new(0x2000, TraceOp::Read, 2, 3),
        TraceRecord::new(0x2040, TraceOp::Write, 3, 5),
    ]);
    w.finish()
}

#[test]
fn truncation_at_every_length_is_a_structured_error() {
    let bytes = valid_trace();
    for cut in 0..bytes.len() {
        let err = TraceReader::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes must not decode"));
        assert!(
            matches!(
                err,
                TraceError::Truncated(_)
                    | TraceError::BadMagic
                    | TraceError::CountMismatch { .. }
                    | TraceError::ChecksumMismatch { .. }
            ),
            "prefix of {cut} bytes gave unexpected error: {err}"
        );
    }
}

#[test]
fn flipped_magic_is_bad_magic() {
    let mut bytes = valid_trace();
    for i in 0..8 {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0xFF;
        assert_eq!(
            TraceReader::from_bytes(&mutated).expect_err("corrupt magic"),
            TraceError::BadMagic,
            "magic byte {i}"
        );
    }
    // Entirely different file type.
    bytes[..8].copy_from_slice(b"RIFF\0\0\0\0");
    assert_eq!(
        TraceReader::from_bytes(&bytes).expect_err("other format"),
        TraceError::BadMagic
    );
}

#[test]
fn unknown_version_is_rejected_with_the_version() {
    let mut bytes = valid_trace();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(
        TraceReader::from_bytes(&bytes).expect_err("future version"),
        TraceError::UnknownVersion(99)
    );
    bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
    assert_eq!(
        TraceReader::from_bytes(&bytes).expect_err("version zero"),
        TraceError::UnknownVersion(0)
    );
}

#[test]
fn flipped_checksum_is_a_checksum_mismatch() {
    let mut bytes = valid_trace();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        TraceReader::from_bytes(&bytes).expect_err("bad checksum"),
        TraceError::ChecksumMismatch { .. }
    ));
}

#[test]
fn corrupted_record_bytes_never_decode_silently() {
    // Flipping any single record-section byte must fail decode: either a
    // structural error, or — if the records still parse — the checksum
    // catches it. Nothing may decode to different records successfully.
    let bytes = valid_trace();
    let footer_start = bytes.len() - 1 - 8 - 1; // tag + count(1B here) + sum
    for i in HEADER_LEN..footer_start {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            assert!(
                TraceReader::from_bytes(&mutated).is_err(),
                "flipping bit {bit} of byte {i} decoded successfully"
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = valid_trace();
    bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
    assert_eq!(
        TraceReader::from_bytes(&bytes).expect_err("trailing bytes"),
        TraceError::TrailingBytes(3)
    );
}

#[test]
fn wrong_footer_count_is_a_count_mismatch() {
    let bytes = valid_trace();
    // Footer layout here: [tag 0x00][count varint 1B][checksum 8B].
    let count_at = bytes.len() - 8 - 1;
    let mut mutated = bytes.clone();
    mutated[count_at] = 7;
    assert_eq!(
        TraceReader::from_bytes(&mutated).expect_err("wrong count"),
        TraceError::CountMismatch {
            expected: 7,
            found: 4,
        }
    );
}

#[test]
fn reserved_flag_bits_and_bad_tags_are_rejected() {
    let bytes = valid_trace();
    // First record starts right after the header: [tag][flags]...
    let mut mutated = bytes.clone();
    mutated[HEADER_LEN + 1] |= 0x80;
    assert!(matches!(
        TraceReader::from_bytes(&mutated).expect_err("reserved flags"),
        TraceError::ReservedFlags(_) | TraceError::ChecksumMismatch { .. }
    ));
    let mut mutated = bytes;
    mutated[HEADER_LEN] = 0x7E;
    assert!(matches!(
        TraceReader::from_bytes(&mutated).expect_err("bad tag"),
        TraceError::BadTag(0x7E) | TraceError::ChecksumMismatch { .. }
    ));
}

#[test]
fn empty_and_tiny_inputs_are_truncation_errors() {
    assert!(TraceReader::from_bytes(&[]).is_err());
    let header: Vec<u8> = ia_tracefmt::MAGIC
        .iter()
        .copied()
        .chain(1u32.to_le_bytes())
        .chain(0u64.to_le_bytes())
        .collect();
    for n in 1..HEADER_LEN {
        assert!(
            TraceReader::from_bytes(&header[..n]).is_err(),
            "{n}-byte header prefix decoded"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The decoder's no-panic contract, checked the fuzzer's way: random
    // bytes and random single-byte mutations of a valid trace must always
    // return (Ok or structured Err) — the harness would abort the test
    // process on any panic.
    #[test]
    fn random_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = TraceReader::from_bytes(&data);
    }

    #[test]
    fn mutated_valid_traces_never_panic(
        offset in any::<prop::sample::Index>(),
        bit in 0u8..8,
        extra in 0usize..4,
    ) {
        let mut bytes = valid_trace();
        let i = offset.index(bytes.len());
        bytes[i] ^= 1 << bit;
        bytes.truncate(bytes.len() - extra);
        let _ = TraceReader::from_bytes(&bytes);
    }
}
