//! Synthetic genomics workload: reference genomes, error-bearing reads,
//! seed-location indexing, banded edit-distance verification, and the
//! GRIM-Filter bin bitvectors (Kim+, BMC Genomics 2018) that `ia-pum`
//! evaluates in DRAM.
//!
//! The paper's introduction uses genome analysis as the flagship
//! data-overwhelmed workload; this module provides the controlled
//! synthetic equivalent of sequencer output (substitution: real reads →
//! random reference + reads with a configurable error rate, which
//! preserves the k-mer statistics the filter depends on).

use rand::Rng;

use crate::WorkloadError;

/// A nucleotide encoded as 0..=3 (A, C, G, T).
pub type Base = u8;

/// A sequencing read with its ground-truth origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// The (possibly error-bearing) base sequence.
    pub seq: Vec<Base>,
    /// The reference position the read was sampled from.
    pub true_pos: usize,
}

/// Generates a uniform random genome of `len` bases.
pub fn random_genome<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<Base> {
    (0..len).map(|_| rng.gen_range(0..4u8)).collect()
}

/// Samples `count` reads of `read_len` bases with per-base substitution
/// probability `error_rate`.
///
/// # Errors
///
/// Returns [`WorkloadError`] if the genome is shorter than `read_len`,
/// `read_len == 0`, or `error_rate` is outside `[0, 1]`.
pub fn sample_reads<R: Rng + ?Sized>(
    genome: &[Base],
    count: usize,
    read_len: usize,
    error_rate: f64,
    rng: &mut R,
) -> Result<Vec<Read>, WorkloadError> {
    if read_len == 0 || genome.len() < read_len {
        return Err(WorkloadError::invalid("genome shorter than read length"));
    }
    if !(0.0..=1.0).contains(&error_rate) {
        return Err(WorkloadError::invalid("error_rate must be in [0, 1]"));
    }
    Ok((0..count)
        .map(|_| {
            let pos = rng.gen_range(0..=genome.len() - read_len);
            let mut seq = genome[pos..pos + read_len].to_vec();
            for b in &mut seq {
                if rng.gen::<f64>() < error_rate {
                    *b = (*b + rng.gen_range(1..4u8)) % 4;
                }
            }
            Read { seq, true_pos: pos }
        })
        .collect())
}

/// Packs a k-mer (k ≤ 32) into a `u64`, two bits per base.
///
/// # Panics
///
/// Panics if `kmer.len() > 32`.
#[must_use]
pub fn pack_kmer(kmer: &[Base]) -> u64 {
    assert!(kmer.len() <= 32, "k-mer too long to pack");
    kmer.iter()
        .fold(0u64, |acc, &b| (acc << 2) | u64::from(b & 3))
}

/// Banded edit distance (Ukkonen): returns `Some(d)` if the edit distance
/// between `a` and `b` is at most `band`, otherwise `None`.
///
/// This is the expensive verification step that pre-alignment filters
/// (Shouji, GateKeeper, GRIM-Filter) exist to avoid.
#[must_use]
pub fn edit_distance_banded(a: &[Base], b: &[Base], band: usize) -> Option<u32> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > band {
        return None;
    }
    let inf = u32::MAX / 2;
    // dp over a band of width 2*band+1 around the diagonal.
    let width = 2 * band + 1;
    let mut prev = vec![inf; width];
    let mut curr = vec![inf; width];
    // prev[j - i + band] = D(i, j)
    for (d, p) in prev.iter_mut().enumerate().take(width) {
        let j = d as isize - band as isize;
        if (0..=m as isize).contains(&j) {
            *p = j as u32;
        }
    }
    for i in 1..=n {
        for p in curr.iter_mut() {
            *p = inf;
        }
        for d in 0..width {
            let j = i as isize + d as isize - band as isize;
            if j < 0 || j > m as isize {
                continue;
            }
            let j = j as usize;
            let mut best = inf;
            if j > 0 {
                // Same diagonal offset in the previous row covers (i-1, j-1).
                let sub = prev[d].saturating_add(u32::from(a[i - 1] != b[j - 1]));
                best = best.min(sub);
                // Insertion: (i, j-1) is offset d-1 in the current row.
                if d > 0 {
                    best = best.min(curr[d - 1].saturating_add(1));
                }
            } else {
                best = best.min(i as u32);
            }
            // Deletion: (i-1, j) is offset d+1 in the previous row.
            if d + 1 < width {
                best = best.min(prev[d + 1].saturating_add(1));
            }
            curr[d] = best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = m as isize - n as isize + band as isize;
    if !(0..width as isize).contains(&d) {
        return None;
    }
    let dist = prev[d as usize];
    (dist as usize <= band).then_some(dist)
}

/// Exact-match seed index: k-mer → reference positions.
#[derive(Debug, Clone)]
pub struct SeedIndex {
    k: usize,
    map: std::collections::HashMap<u64, Vec<u32>>,
}

impl SeedIndex {
    /// Builds the index over `genome` with seed length `k`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `k == 0`, `k > 32`, or the genome is
    /// shorter than `k`.
    pub fn build(genome: &[Base], k: usize) -> Result<Self, WorkloadError> {
        if k == 0 || k > 32 || genome.len() < k {
            return Err(WorkloadError::invalid(
                "seed length must be in 1..=32 and fit the genome",
            ));
        }
        let mut map: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
        for pos in 0..=genome.len() - k {
            map.entry(pack_kmer(&genome[pos..pos + k]))
                .or_default()
                .push(pos as u32);
        }
        Ok(SeedIndex { k, map })
    }

    /// Seed length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reference positions whose k-mer equals the seed at `read[offset..]`.
    #[must_use]
    pub fn lookup(&self, read: &[Base], offset: usize) -> &[u32] {
        if offset + self.k > read.len() {
            return &[];
        }
        self.map
            .get(&pack_kmer(&read[offset..offset + self.k]))
            .map_or(&[], Vec::as_slice)
    }

    /// Candidate alignment positions for a read, from seeds at regular
    /// offsets (`seeds` of them), adjusted to read-start coordinates.
    #[must_use]
    pub fn candidates(&self, read: &[Base], seeds: usize) -> Vec<u32> {
        let mut out = Vec::new();
        let step = (read.len().saturating_sub(self.k)).max(1) / seeds.max(1);
        for s in 0..seeds {
            let offset = (s * step.max(1)).min(read.len().saturating_sub(self.k));
            for &p in self.lookup(read, offset) {
                let start = p as i64 - offset as i64;
                if start >= 0 {
                    out.push(start as u32);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// GRIM-Filter bin index: the genome is split into bins; each bin stores a
/// bitvector over the `4^t` token space recording which short tokens occur
/// in it. A read is a candidate for a bin only if enough of its tokens are
/// present — a test `ia-pum` evaluates with in-DRAM bulk bitwise AND.
#[derive(Debug, Clone)]
pub struct GrimIndex {
    token_len: usize,
    bin_size: usize,
    /// One bitvector of `4^token_len` bits per bin.
    bins: Vec<Vec<u64>>,
}

impl GrimIndex {
    /// Builds the index with `token_len`-base tokens (≤ 12) and bins of
    /// `bin_size` bases.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] on a zero/oversized token length or zero
    /// bin size.
    pub fn build(
        genome: &[Base],
        token_len: usize,
        bin_size: usize,
    ) -> Result<Self, WorkloadError> {
        if token_len == 0 || token_len > 12 {
            return Err(WorkloadError::invalid("token length must be in 1..=12"));
        }
        if bin_size < token_len {
            return Err(WorkloadError::invalid("bin size must be >= token length"));
        }
        let words = (1usize << (2 * token_len)).div_ceil(64);
        let bin_count = genome.len().div_ceil(bin_size).max(1);
        let mut bins = vec![vec![0u64; words]; bin_count];
        // Tokens overlapping a bin boundary are credited to both bins so a
        // read spanning the boundary is never falsely rejected.
        #[allow(clippy::needless_range_loop)] // `pos` derives both the token and its bins
        for pos in 0..genome.len().saturating_sub(token_len - 1) {
            let token = pack_kmer(&genome[pos..pos + token_len]) as usize;
            let first = pos / bin_size;
            let last = (pos + token_len - 1) / bin_size;
            for b in first..=last.min(bin_count - 1) {
                bins[b][token / 64] |= 1 << (token % 64);
            }
        }
        Ok(GrimIndex {
            token_len,
            bin_size,
            bins,
        })
    }

    /// Number of bins.
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Bin size in bases.
    #[must_use]
    pub fn bin_size(&self) -> usize {
        self.bin_size
    }

    /// The raw bitvector of a bin (consumed by the PUM engine).
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    #[must_use]
    pub fn bin_bitvector(&self, bin: usize) -> &[u64] {
        &self.bins[bin]
    }

    /// Builds the read's token bitvector (same layout as a bin).
    #[must_use]
    pub fn read_bitvector(&self, read: &[Base]) -> Vec<u64> {
        let words = (1usize << (2 * self.token_len)).div_ceil(64);
        let mut bv = vec![0u64; words];
        if read.len() >= self.token_len {
            for pos in 0..=read.len() - self.token_len {
                let token = pack_kmer(&read[pos..pos + self.token_len]) as usize;
                bv[token / 64] |= 1 << (token % 64);
            }
        }
        bv
    }

    /// Number of read tokens present in a bin (computed with bitwise AND +
    /// popcount — the operation the PUM engine performs in-DRAM).
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    #[must_use]
    pub fn match_count(&self, read_bv: &[u64], bin: usize) -> u32 {
        self.bins[bin]
            .iter()
            .zip(read_bv)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Whether `candidate_pos` survives the filter: the neighborhood of
    /// the bin containing it must share at least `threshold` tokens with
    /// the read. A read starting near the end of a bin spills its tokens
    /// forward into the next bin, so the check matches against the union
    /// of the two bins the read's span can overlap — the equivalent of
    /// GRIM-Filter's overlapping-bin layout.
    #[must_use]
    pub fn accepts(&self, read_bv: &[u64], candidate_pos: u32, threshold: u32) -> bool {
        let bin = (candidate_pos as usize / self.bin_size).min(self.bins.len() - 1);
        let empty: &[u64] = &[];
        let next = if bin + 1 < self.bins.len() {
            &self.bins[bin + 1][..]
        } else {
            empty
        };
        let matched: u32 = self.bins[bin]
            .iter()
            .zip(next.iter().chain(std::iter::repeat(&0)))
            .zip(read_bv)
            .map(|((a, b), r)| ((a | b) & r).count_ones())
            .sum();
        matched >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x6E0)
    }

    #[test]
    fn genome_and_reads_have_requested_shapes() {
        let mut r = rng();
        let g = random_genome(1000, &mut r);
        assert_eq!(g.len(), 1000);
        assert!(g.iter().all(|&b| b < 4));
        let reads = sample_reads(&g, 10, 100, 0.02, &mut r).unwrap();
        assert_eq!(reads.len(), 10);
        for read in &reads {
            assert_eq!(read.seq.len(), 100);
            assert!(read.true_pos + 100 <= 1000);
        }
    }

    #[test]
    fn sample_reads_validates() {
        let mut r = rng();
        let g = random_genome(50, &mut r);
        assert!(sample_reads(&g, 1, 100, 0.0, &mut r).is_err());
        assert!(sample_reads(&g, 1, 0, 0.0, &mut r).is_err());
        assert!(sample_reads(&g, 1, 10, 1.5, &mut r).is_err());
    }

    #[test]
    fn zero_error_reads_match_reference_exactly() {
        let mut r = rng();
        let g = random_genome(500, &mut r);
        for read in sample_reads(&g, 20, 50, 0.0, &mut r).unwrap() {
            assert_eq!(&read.seq[..], &g[read.true_pos..read.true_pos + 50]);
        }
    }

    #[test]
    fn pack_kmer_is_injective_for_short_kmers() {
        let a = pack_kmer(&[0, 1, 2, 3]);
        let b = pack_kmer(&[0, 1, 3, 2]);
        assert_ne!(a, b);
        assert_eq!(pack_kmer(&[0, 0]), 0);
        assert_eq!(pack_kmer(&[3, 3]), 0b1111);
    }

    #[test]
    fn edit_distance_identity_and_substitutions() {
        let a = vec![0, 1, 2, 3, 0, 1];
        assert_eq!(edit_distance_banded(&a, &a, 3), Some(0));
        let mut b = a.clone();
        b[2] = 3;
        assert_eq!(edit_distance_banded(&a, &b, 3), Some(1));
    }

    #[test]
    fn edit_distance_indels() {
        let a = vec![0, 1, 2, 3];
        let b = vec![0, 1, 1, 2, 3];
        assert_eq!(edit_distance_banded(&a, &b, 2), Some(1));
        assert_eq!(edit_distance_banded(&b, &a, 2), Some(1));
    }

    #[test]
    fn edit_distance_band_rejects_distant_pairs() {
        let a = vec![0u8; 20];
        let b = vec![3u8; 20];
        assert_eq!(edit_distance_banded(&a, &b, 3), None);
        // Length difference exceeding the band is an immediate reject.
        assert_eq!(edit_distance_banded(&a[..5], &b, 3), None);
    }

    #[test]
    fn seed_index_finds_true_position() {
        let mut r = rng();
        let g = random_genome(5000, &mut r);
        let idx = SeedIndex::build(&g, 12).unwrap();
        let reads = sample_reads(&g, 20, 80, 0.0, &mut r).unwrap();
        for read in &reads {
            let cands = idx.candidates(&read.seq, 4);
            assert!(
                cands.contains(&(read.true_pos as u32)),
                "true position {} missing from candidates",
                read.true_pos
            );
        }
    }

    #[test]
    fn seed_index_validates() {
        let g = vec![0u8; 10];
        assert!(SeedIndex::build(&g, 0).is_err());
        assert!(SeedIndex::build(&g, 33).is_err());
        assert!(SeedIndex::build(&g, 11).is_err());
    }

    #[test]
    fn grim_filter_accepts_true_bin_and_prunes_noise() {
        let mut r = rng();
        let g = random_genome(64 * 1024, &mut r);
        let grim = GrimIndex::build(&g, 6, 1024).unwrap();
        let reads = sample_reads(&g, 10, 100, 0.01, &mut r).unwrap();
        let threshold = 60; // of 95 tokens in a 100bp read
        let mut rejected_any = false;
        for read in &reads {
            let bv = grim.read_bitvector(&read.seq);
            assert!(
                grim.accepts(&bv, read.true_pos as u32, threshold),
                "true bin must pass the filter"
            );
            // Most random other bins should fail at this threshold.
            let rejects = (0..grim.bin_count())
                .filter(|&b| grim.match_count(&bv, b) < threshold)
                .count();
            if rejects > grim.bin_count() / 2 {
                rejected_any = true;
            }
        }
        assert!(rejected_any, "the filter must prune a majority of bins");
    }

    #[test]
    fn grim_index_validates() {
        let g = vec![0u8; 100];
        assert!(GrimIndex::build(&g, 0, 10).is_err());
        assert!(GrimIndex::build(&g, 13, 100).is_err());
        assert!(GrimIndex::build(&g, 6, 3).is_err());
    }

    #[test]
    fn grim_match_count_equals_shared_tokens() {
        // A genome of all-A has exactly one distinct token (AAAAAA).
        let g = vec![0u8; 256];
        let grim = GrimIndex::build(&g, 6, 256).unwrap();
        let read = vec![0u8; 20];
        let bv = grim.read_bitvector(&read);
        assert_eq!(grim.match_count(&bv, 0), 1);
        let other = vec![1u8; 20];
        let bv2 = grim.read_bitvector(&other);
        assert_eq!(grim.match_count(&bv2, 0), 0);
    }
}
