//! Synthetic graph generation and a CSR graph container, the input for the
//! Tesseract-style near-memory graph-processing experiments.

use rand::Rng;

use crate::WorkloadError;

/// An unweighted directed graph in compressed-sparse-row form.
///
/// # Examples
///
/// ```
/// use ia_workloads::Graph;
/// let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)])?;
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(1), &[2]);
/// # Ok::<(), ia_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    edges: Vec<u32>,
}

impl Graph {
    /// Builds a CSR graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `vertices == 0` or any endpoint is out
    /// of range.
    pub fn from_edges(vertices: u32, edges: &[(u32, u32)]) -> Result<Self, WorkloadError> {
        if vertices == 0 {
            return Err(WorkloadError::invalid("graph needs at least one vertex"));
        }
        for &(u, v) in edges {
            if u >= vertices || v >= vertices {
                return Err(WorkloadError::invalid("edge endpoint out of range"));
            }
        }
        let mut degree = vec![0usize; vertices as usize];
        for &(u, _) in edges {
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(vertices as usize + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0u32; edges.len()];
        for &(u, v) in edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        Ok(Graph {
            offsets,
            edges: adj,
        })
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn out_degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Generates a uniform random graph with `vertices` vertices and
    /// `edges` edges (Erdős–Rényi G(n, m), self-loops allowed).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `vertices == 0`.
    pub fn uniform_random<R: Rng + ?Sized>(
        vertices: u32,
        edges: usize,
        rng: &mut R,
    ) -> Result<Self, WorkloadError> {
        if vertices == 0 {
            return Err(WorkloadError::invalid("graph needs at least one vertex"));
        }
        let list: Vec<(u32, u32)> = (0..edges)
            .map(|_| (rng.gen_range(0..vertices), rng.gen_range(0..vertices)))
            .collect();
        Graph::from_edges(vertices, &list)
    }

    /// Generates an R-MAT power-law graph (a=0.57, b=c=0.19, d=0.05 — the
    /// Graph500 parameters), the degree-skewed shape of real social/web
    /// graphs that stresses near-memory graph engines.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `vertices` is zero or not a power of
    /// two.
    pub fn rmat<R: Rng + ?Sized>(
        vertices: u32,
        edges: usize,
        rng: &mut R,
    ) -> Result<Self, WorkloadError> {
        if vertices == 0 || !vertices.is_power_of_two() {
            return Err(WorkloadError::invalid(
                "rmat needs a power-of-two vertex count",
            ));
        }
        let levels = vertices.trailing_zeros();
        let list: Vec<(u32, u32)> = (0..edges)
            .map(|_| {
                let (mut u, mut v) = (0u32, 0u32);
                for _ in 0..levels {
                    u <<= 1;
                    v <<= 1;
                    let p: f64 = rng.gen();
                    // Quadrant probabilities (a, b, c, d).
                    if p < 0.57 {
                        // top-left: nothing set
                    } else if p < 0.76 {
                        v |= 1;
                    } else if p < 0.95 {
                        u |= 1;
                    } else {
                        u |= 1;
                        v |= 1;
                    }
                }
                (u, v)
            })
            .collect();
        Graph::from_edges(vertices, &list)
    }

    /// Reference PageRank on the host (power iteration with uniform
    /// teleport), used to validate the near-memory engine's results.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // `v` indexes rank, next, and the graph in lockstep
    pub fn pagerank(&self, damping: f64, iterations: usize) -> Vec<f64> {
        let n = self.vertex_count() as usize;
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for _ in 0..iterations {
            let base = (1.0 - damping) / n as f64;
            next.iter_mut().for_each(|x| *x = base);
            let mut dangling = 0.0;
            for v in 0..n {
                let d = self.out_degree(v as u32);
                if d == 0 {
                    dangling += rank[v];
                    continue;
                }
                let share = damping * rank[v] / d as f64;
                for &w in self.neighbors(v as u32) {
                    next[w as usize] += share;
                }
            }
            let dangling_share = damping * dangling / n as f64;
            next.iter_mut().for_each(|x| *x += dangling_share);
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    }

    /// Reference BFS distances from `source` (`u32::MAX` = unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn bfs(&self, source: u32) -> Vec<u32> {
        let n = self.vertex_count() as usize;
        let mut dist = vec![u32::MAX; n];
        let mut frontier = std::collections::VecDeque::new();
        dist[source as usize] = 0;
        frontier.push_back(source);
        while let Some(v) = frontier.pop_front() {
            let d = dist[v as usize];
            for &w in self.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d + 1;
                    frontier.push_back(w);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn csr_construction() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 0);
        assert_eq!(g.neighbors(2), &[3]);
    }

    #[test]
    fn from_edges_validates() {
        assert!(Graph::from_edges(0, &[]).is_err());
        assert!(Graph::from_edges(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn uniform_random_has_requested_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = Graph::uniform_random(100, 500, &mut rng).unwrap();
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 500);
    }

    #[test]
    fn rmat_is_degree_skewed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = Graph::rmat(1024, 16 * 1024, &mut rng).unwrap();
        let mut degrees: Vec<usize> = (0..1024).map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees[..10].iter().sum::<usize>();
        let avg10 = 10 * g.edge_count() / 1024;
        assert!(
            top > 4 * avg10,
            "top-10 vertices should be far above average: {top} vs {avg10}"
        );
    }

    #[test]
    fn rmat_validates_power_of_two() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(Graph::rmat(1000, 100, &mut rng).is_err());
        assert!(Graph::rmat(0, 100, &mut rng).is_err());
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_sinks() {
        // 0 -> 2, 1 -> 2: vertex 2 must outrank the others.
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let pr = g.pagerank(0.85, 50);
        let sum: f64 = pr.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "ranks must be a distribution, sum={sum}"
        );
        assert!(pr[2] > pr[0] && pr[2] > pr[1]);
    }

    #[test]
    fn bfs_distances() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = g.bfs(0);
        assert_eq!(d, vec![0, 1, 2, 3, u32::MAX]);
    }
}
